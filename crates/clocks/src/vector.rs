//! Vector clocks: the timestamp CATOCS causal multicast rides on.
//!
//! A vector clock over `n` processes characterizes happens-before exactly:
//! `VT(a) < VT(b)` iff event `a` causally precedes event `b`. The
//! `catocs::cbcast` protocol stamps every multicast with the sender's
//! vector time and delays delivery until the causal predecessors have been
//! delivered (the ISIS "lightweight causal multicast" rule).
//!
//! The paper's §3.4/§5 overhead argument is partly about these timestamps:
//! they grow linearly with group size and ride on *every* message. The
//! [`VectorClock::encode`]/[`VectorClock::encode_delta`] pair exists so
//! experiment T7 can measure exactly that growth, including the standard
//! delta-compression mitigation.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// Result of comparing two vector clocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClockOrd {
    /// Strictly causally before.
    Before,
    /// Strictly causally after.
    After,
    /// Identical.
    Equal,
    /// Neither precedes the other — the paper's "concurrent" messages.
    Concurrent,
}

/// A dense vector clock over processes `0..n`.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VectorClock {
    entries: Vec<u64>,
}

impl VectorClock {
    /// A zero clock for `n` processes.
    pub fn new(n: usize) -> Self {
        VectorClock {
            entries: vec![0; n],
        }
    }

    /// Builds a clock directly from entries (tests and decoding).
    pub fn from_entries(entries: Vec<u64>) -> Self {
        VectorClock { entries }
    }

    /// Number of processes the clock covers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the clock covers zero processes.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The component for process `i`.
    pub fn get(&self, i: usize) -> u64 {
        self.entries.get(i).copied().unwrap_or(0)
    }

    /// Sets the component for process `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: usize, v: u64) {
        self.entries[i] = v;
    }

    /// Increments own component `i` (send/local event rule) and returns
    /// the new value.
    pub fn tick(&mut self, i: usize) -> u64 {
        self.entries[i] += 1;
        self.entries[i]
    }

    /// Component-wise maximum (receive rule).
    pub fn merge(&mut self, other: &VectorClock) {
        if other.entries.len() > self.entries.len() {
            self.entries.resize(other.entries.len(), 0);
        }
        for (i, &v) in other.entries.iter().enumerate() {
            if v > self.entries[i] {
                self.entries[i] = v;
            }
        }
    }

    /// Compares two clocks under the causal partial order.
    pub fn compare(&self, other: &VectorClock) -> ClockOrd {
        let n = self.entries.len().max(other.entries.len());
        let mut less = false;
        let mut greater = false;
        for i in 0..n {
            match self.get(i).cmp(&other.get(i)) {
                Ordering::Less => less = true,
                Ordering::Greater => greater = true,
                Ordering::Equal => {}
            }
        }
        match (less, greater) {
            (false, false) => ClockOrd::Equal,
            (true, false) => ClockOrd::Before,
            (false, true) => ClockOrd::After,
            (true, true) => ClockOrd::Concurrent,
        }
    }

    /// `self` happens-before `other` (strictly).
    pub fn happens_before(&self, other: &VectorClock) -> bool {
        self.compare(other) == ClockOrd::Before
    }

    /// `self` and `other` are concurrent.
    pub fn concurrent_with(&self, other: &VectorClock) -> bool {
        self.compare(other) == ClockOrd::Concurrent
    }

    /// The ISIS cbcast deliverability test: a message stamped `msg_vt`
    /// from `sender` is deliverable at a process whose delivered-clock is
    /// `self` iff
    ///
    /// 1. `msg_vt[sender] == self[sender] + 1` (next message from sender),
    /// 2. `msg_vt[k] <= self[k]` for all `k != sender` (all causal
    ///    predecessors from other processes already delivered).
    pub fn deliverable(&self, msg_vt: &VectorClock, sender: usize) -> bool {
        if msg_vt.get(sender) != self.get(sender) + 1 {
            return false;
        }
        let n = self.entries.len().max(msg_vt.entries.len());
        for k in 0..n {
            if k != sender && msg_vt.get(k) > self.get(k) {
                return false;
            }
        }
        true
    }

    /// Full binary encoding: `n` little-endian `u64`s plus a 4-byte count.
    /// This is the per-message ordering overhead measured by T7.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 8 * self.entries.len());
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for &e in &self.entries {
            out.extend_from_slice(&e.to_le_bytes());
        }
        out
    }

    /// Decodes a full encoding.
    ///
    /// Returns `None` on malformed input.
    pub fn decode(buf: &[u8]) -> Option<Self> {
        if buf.len() < 4 {
            return None;
        }
        let n = u32::from_le_bytes(buf[0..4].try_into().ok()?) as usize;
        if buf.len() != 4 + 8 * n {
            return None;
        }
        let mut entries = Vec::with_capacity(n);
        for i in 0..n {
            let s = 4 + 8 * i;
            entries.push(u64::from_le_bytes(buf[s..s + 8].try_into().ok()?));
        }
        Some(VectorClock { entries })
    }

    /// Delta encoding relative to `base`: only changed components are sent
    /// as `(u32 index, u64 value)` pairs. This is the ablation in T7 —
    /// cheaper when few components change between consecutive messages,
    /// degrading to worse-than-full under all-to-all traffic.
    pub fn encode_delta(&self, base: &VectorClock) -> Vec<u8> {
        let mut pairs = Vec::new();
        let n = self.entries.len().max(base.entries.len());
        for i in 0..n {
            if self.get(i) != base.get(i) {
                pairs.push((i as u32, self.get(i)));
            }
        }
        let mut out = Vec::with_capacity(8 + 12 * pairs.len());
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
        for (i, v) in pairs {
            out.extend_from_slice(&i.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Widest clock [`VectorClock::decode_delta`] will materialize. The
    /// delta header declares the decoded width explicitly (the full
    /// encoding's width is bounded by the buffer itself), so without a
    /// cap a hostile 8-byte header with `k = 0` passes every structural
    /// check and demands an allocation of up to `u32::MAX` entries
    /// (~32 GiB) before a single pair is validated. Any group this
    /// codebase simulates is orders of magnitude below this bound.
    pub const MAX_DELTA_WIDTH: usize = 1 << 16;

    /// Decodes a delta encoding against `base`.
    ///
    /// Returns `None` on malformed input: short or trailing bytes, a
    /// declared width past [`VectorClock::MAX_DELTA_WIDTH`], more pairs
    /// than components (`k > n`), duplicate or non-increasing indices
    /// (the encoder emits them strictly increasing), or an index out of
    /// range.
    pub fn decode_delta(buf: &[u8], base: &VectorClock) -> Option<Self> {
        if buf.len() < 8 {
            return None;
        }
        let n = u32::from_le_bytes(buf[0..4].try_into().ok()?) as usize;
        let k = u32::from_le_bytes(buf[4..8].try_into().ok()?) as usize;
        if n > Self::MAX_DELTA_WIDTH || k > n {
            return None;
        }
        // `k <= n <= MAX_DELTA_WIDTH`, so this arithmetic cannot
        // overflow even on 32-bit targets.
        if buf.len() != 8 + 12 * k {
            return None;
        }
        let mut clock = base.clone();
        clock.entries.resize(n, 0);
        let mut prev: Option<usize> = None;
        for j in 0..k {
            let s = 8 + 12 * j;
            let i = u32::from_le_bytes(buf[s..s + 4].try_into().ok()?) as usize;
            let v = u64::from_le_bytes(buf[s + 4..s + 12].try_into().ok()?);
            if i >= n || prev.is_some_and(|p| i <= p) {
                return None;
            }
            prev = Some(i);
            clock.entries[i] = v;
        }
        Some(clock)
    }

    /// Sum of all components — a crude size of the causal past, used by
    /// the false-causality metrics.
    pub fn total_events(&self) -> u64 {
        self.entries.iter().sum()
    }
}

impl fmt::Debug for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VT{:?}", self.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn vc(e: &[u64]) -> VectorClock {
        VectorClock::from_entries(e.to_vec())
    }

    #[test]
    fn compare_basic() {
        assert_eq!(vc(&[1, 0]).compare(&vc(&[1, 0])), ClockOrd::Equal);
        assert_eq!(vc(&[1, 0]).compare(&vc(&[1, 1])), ClockOrd::Before);
        assert_eq!(vc(&[2, 1]).compare(&vc(&[1, 1])), ClockOrd::After);
        assert_eq!(vc(&[1, 0]).compare(&vc(&[0, 1])), ClockOrd::Concurrent);
    }

    #[test]
    fn merge_takes_componentwise_max() {
        let mut a = vc(&[1, 5, 0]);
        a.merge(&vc(&[3, 2, 0]));
        assert_eq!(a, vc(&[3, 5, 0]));
    }

    #[test]
    fn merge_handles_length_mismatch() {
        let mut a = vc(&[1]);
        a.merge(&vc(&[0, 7]));
        assert_eq!(a, vc(&[1, 7]));
    }

    #[test]
    fn deliverability_next_from_sender() {
        // Delivered state: seen 2 msgs from P0, 1 from P1.
        let state = vc(&[2, 1, 0]);
        // Next message from P0 is deliverable.
        assert!(state.deliverable(&vc(&[3, 1, 0]), 0));
        // A gap from the sender is not.
        assert!(!state.deliverable(&vc(&[4, 1, 0]), 0));
        // A causal dependency on an undelivered message is not.
        assert!(!state.deliverable(&vc(&[3, 2, 0]), 0));
        // A redelivery (old message) is not.
        assert!(!state.deliverable(&vc(&[2, 1, 0]), 0));
    }

    #[test]
    fn encode_roundtrip() {
        let c = vc(&[1, 2, 3, u64::MAX]);
        assert_eq!(VectorClock::decode(&c.encode()), Some(c.clone()));
        assert_eq!(c.encode().len(), 4 + 8 * 4);
    }

    #[test]
    fn decode_rejects_malformed() {
        assert_eq!(VectorClock::decode(&[]), None);
        assert_eq!(VectorClock::decode(&[9, 0, 0, 0]), None);
        let mut good = vc(&[1, 2]).encode();
        good.pop();
        assert_eq!(VectorClock::decode(&good), None);
    }

    #[test]
    fn delta_roundtrip_and_size() {
        let base = vc(&[5, 5, 5, 5, 5, 5, 5, 5]);
        let mut next = base.clone();
        next.tick(3);
        let delta = next.encode_delta(&base);
        assert_eq!(VectorClock::decode_delta(&delta, &base), Some(next.clone()));
        // One changed component: 8 header + 12 payload, vs 4 + 64 full.
        assert_eq!(delta.len(), 20);
        assert!(delta.len() < next.encode().len());
    }

    #[test]
    fn delta_decode_rejects_malformed() {
        let base = vc(&[1, 2]);
        assert_eq!(VectorClock::decode_delta(&[], &base), None);
        // Trailing garbage byte.
        let mut d = vc(&[1, 3]).encode_delta(&base);
        d.push(0);
        assert_eq!(VectorClock::decode_delta(&d, &base), None);
        // Truncated mid-pair.
        let mut d = vc(&[1, 3]).encode_delta(&base);
        d.truncate(d.len() - 5);
        assert_eq!(VectorClock::decode_delta(&d, &base), None);
        // Pair index out of declared range (n = 2, index = 2).
        let mut d = Vec::new();
        d.extend_from_slice(&2u32.to_le_bytes());
        d.extend_from_slice(&1u32.to_le_bytes());
        d.extend_from_slice(&2u32.to_le_bytes());
        d.extend_from_slice(&9u64.to_le_bytes());
        assert_eq!(VectorClock::decode_delta(&d, &base), None);
        // Duplicate index (encoder emits strictly increasing indices).
        let mut d = Vec::new();
        d.extend_from_slice(&2u32.to_le_bytes());
        d.extend_from_slice(&2u32.to_le_bytes());
        for _ in 0..2 {
            d.extend_from_slice(&0u32.to_le_bytes());
            d.extend_from_slice(&7u64.to_le_bytes());
        }
        assert_eq!(VectorClock::decode_delta(&d, &base), None);
        // More pairs than components (k > n) — also caps the resize
        // allocation a hostile length prefix could otherwise demand.
        let mut d = Vec::new();
        d.extend_from_slice(&1u32.to_le_bytes());
        d.extend_from_slice(&2u32.to_le_bytes());
        for i in 0..2u32 {
            d.extend_from_slice(&i.to_le_bytes());
            d.extend_from_slice(&7u64.to_le_bytes());
        }
        assert_eq!(VectorClock::decode_delta(&d, &base), None);
    }

    #[test]
    fn delta_decode_bounds_hostile_width() {
        let base = vc(&[1, 2]);
        // Regression: a bare 8-byte header declaring n = u32::MAX with
        // zero pairs passes the structural checks (`buf.len() == 8 + 12k`,
        // `k <= n`) and used to demand a ~32 GiB `resize` before any
        // further validation.
        let mut d = Vec::new();
        d.extend_from_slice(&u32::MAX.to_le_bytes());
        d.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(VectorClock::decode_delta(&d, &base), None);
        // One past the cap is rejected; the cap itself is representable.
        let mut d = Vec::new();
        d.extend_from_slice(&((VectorClock::MAX_DELTA_WIDTH + 1) as u32).to_le_bytes());
        d.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(VectorClock::decode_delta(&d, &base), None);
        let mut d = Vec::new();
        d.extend_from_slice(&(VectorClock::MAX_DELTA_WIDTH as u32).to_le_bytes());
        d.extend_from_slice(&0u32.to_le_bytes());
        let wide = VectorClock::decode_delta(&d, &base).expect("cap width decodes");
        assert_eq!(wide.len(), VectorClock::MAX_DELTA_WIDTH);
        assert_eq!(wide.get(1), 2);
        assert_eq!(wide.get(VectorClock::MAX_DELTA_WIDTH - 1), 0);
    }

    #[test]
    fn helpers() {
        assert!(vc(&[0, 1]).happens_before(&vc(&[1, 1])));
        assert!(vc(&[1, 0]).concurrent_with(&vc(&[0, 1])));
        assert_eq!(vc(&[2, 3]).total_events(), 5);
        assert!(!vc(&[1]).is_empty());
        assert!(VectorClock::new(0).is_empty());
    }

    fn arb_clock(n: usize) -> impl Strategy<Value = VectorClock> {
        proptest::collection::vec(0u64..50, n).prop_map(VectorClock::from_entries)
    }

    proptest! {
        /// Antisymmetry: a < b implies !(b < a).
        #[test]
        fn partial_order_antisymmetric(a in arb_clock(6), b in arb_clock(6)) {
            if a.happens_before(&b) {
                prop_assert!(!b.happens_before(&a));
                prop_assert_eq!(b.compare(&a), ClockOrd::After);
            }
        }

        /// Transitivity: a < b and b < c implies a < c.
        #[test]
        fn partial_order_transitive(a in arb_clock(5), b in arb_clock(5), c in arb_clock(5)) {
            if a.happens_before(&b) && b.happens_before(&c) {
                prop_assert!(a.happens_before(&c));
            }
        }

        /// Merge is an upper bound of both operands.
        #[test]
        fn merge_is_upper_bound(a in arb_clock(6), b in arb_clock(6)) {
            let mut m = a.clone();
            m.merge(&b);
            prop_assert!(matches!(a.compare(&m), ClockOrd::Before | ClockOrd::Equal));
            prop_assert!(matches!(b.compare(&m), ClockOrd::Before | ClockOrd::Equal));
        }

        /// Merge is commutative and idempotent.
        #[test]
        fn merge_lattice_laws(a in arb_clock(6), b in arb_clock(6)) {
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            prop_assert_eq!(&ab, &ba);
            let mut aa = a.clone();
            aa.merge(&a);
            prop_assert_eq!(aa, a);
        }

        /// Full encoding roundtrips for any clock.
        #[test]
        fn encode_roundtrip_prop(a in arb_clock(10)) {
            prop_assert_eq!(VectorClock::decode(&a.encode()), Some(a));
        }

        /// Delta encoding roundtrips against any base of equal length.
        #[test]
        fn delta_roundtrip_prop(a in arb_clock(10), b in arb_clock(10)) {
            let d = a.encode_delta(&b);
            prop_assert_eq!(VectorClock::decode_delta(&d, &b), Some(a));
        }

        /// Fuzz: `decode_delta` over arbitrary byte strings must never
        /// panic, overflow, or allocate past the width cap — it either
        /// rejects the input or produces a clock of the declared width
        /// extending `base`.
        #[test]
        fn delta_decode_survives_arbitrary_bytes(
            bytes in collection::vec(0u8..=255, 0..64),
            base in arb_clock(6),
        ) {
            if let Some(c) = VectorClock::decode_delta(&bytes, &base) {
                prop_assert!(c.len() <= VectorClock::MAX_DELTA_WIDTH);
                let declared = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
                prop_assert_eq!(c.len(), declared);
            }
        }

        /// Fuzz: corrupting a valid delta encoding (byte flips,
        /// truncation, appended garbage) never panics; the decoder
        /// either rejects it or returns some structurally sound clock.
        #[test]
        fn delta_decode_survives_corrupted_encodings(
            a in arb_clock(8),
            b in arb_clock(8),
            flip_at in 0usize..32,
            flip_to in 0u8..=255,
            cut in 0usize..32,
        ) {
            let mut d = a.encode_delta(&b);
            let len = d.len().max(1);
            if let Some(byte) = d.get_mut(flip_at % len) {
                *byte = flip_to;
            }
            let _ = VectorClock::decode_delta(&d, &b);
            d.truncate(cut.min(d.len()));
            let _ = VectorClock::decode_delta(&d, &b);
            d.extend_from_slice(&[flip_to; 3]);
            let _ = VectorClock::decode_delta(&d, &b);
        }

        /// Comparison is consistent with per-component dominance.
        #[test]
        fn compare_matches_dominance(a in arb_clock(6), b in arb_clock(6)) {
            let all_le = (0..6).all(|i| a.get(i) <= b.get(i));
            let all_ge = (0..6).all(|i| a.get(i) >= b.get(i));
            let expected = match (all_le, all_ge) {
                (true, true) => ClockOrd::Equal,
                (true, false) => ClockOrd::Before,
                (false, true) => ClockOrd::After,
                (false, false) => ClockOrd::Concurrent,
            };
            prop_assert_eq!(a.compare(&b), expected);
        }
    }
}
