//! Simulated synchronized real-time clocks with bounded skew and drift.
//!
//! The paper's §4.6 argues that for real-time systems, synchronized
//! real-time timestamps beat CATOCS: "a timestamp can have a granularity
//! in the microsecond range and an accuracy to less than one millisecond,
//! and yet the events in most real-time systems occur at the granularity
//! of tens of milliseconds or more". This module models exactly that: each
//! process owns a [`SyncClock`] whose reading is true simulated time plus
//! a bounded offset (static skew plus slow drift, re-zeroed by periodic
//! resynchronization). Experiment T13 uses it to order oven-sensor events
//! by temporal precedence.

use serde::{Deserialize, Serialize};
use simnet::time::{SimDuration, SimTime};

/// A per-process synchronized clock with bounded error.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SyncClock {
    /// Static offset from true time, signed microseconds.
    skew_us: i64,
    /// Drift rate in parts per million (microseconds gained per second).
    drift_ppm: i64,
    /// Last resynchronization instant (drift accumulates from here).
    synced_at: SimTime,
    /// Guaranteed bound on |reading - true time| between resyncs.
    error_bound: SimDuration,
}

impl SyncClock {
    /// Creates a clock with the given static skew and drift.
    ///
    /// `error_bound` is the advertised accuracy (the paper's "less than
    /// one millisecond"); [`SyncClock::read`] clamps to it, modeling a
    /// sync protocol that re-zeros the clock before the bound is exceeded.
    pub fn new(skew_us: i64, drift_ppm: i64, error_bound: SimDuration) -> Self {
        SyncClock {
            skew_us,
            drift_ppm,
            synced_at: SimTime::ZERO,
            error_bound,
        }
    }

    /// A perfectly synchronized clock.
    pub fn perfect() -> Self {
        SyncClock::new(0, 0, SimDuration::ZERO)
    }

    /// The advertised error bound.
    pub fn error_bound(&self) -> SimDuration {
        self.error_bound
    }

    /// Re-zeros accumulated drift at `now` (a sync-protocol round).
    pub fn resync(&mut self, now: SimTime) {
        self.synced_at = now;
    }

    /// Reads the clock at true time `now`.
    ///
    /// The reading is `now + skew + drift`, clamped to the error bound.
    pub fn read(&self, now: SimTime) -> SimTime {
        let elapsed_s = now.saturating_since(self.synced_at).as_secs_f64();
        let drift_us = (self.drift_ppm as f64 * elapsed_s).round() as i64;
        let mut offset = self.skew_us + drift_us;
        let bound = self.error_bound.as_micros() as i64;
        offset = offset.clamp(-bound, bound);
        if offset >= 0 {
            now + SimDuration::from_micros(offset as u64)
        } else {
            now - SimDuration::from_micros((-offset) as u64)
        }
    }

    /// A totally ordered timestamp: clock reading plus node tie-break.
    pub fn stamp(&self, now: SimTime, node: usize) -> RtStamp {
        RtStamp {
            time: self.read(now),
            node,
        }
    }
}

/// A real-time timestamp with node id tie-break — the paper's "temporal
/// precedence" ordering device (§4.6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RtStamp {
    /// The clock reading.
    pub time: SimTime,
    /// Node id tie-breaker.
    pub node: usize,
}

impl RtStamp {
    /// Whether this stamp *certainly* precedes `other` given both clocks'
    /// error bound `eps`: true temporal precedence requires the readings
    /// to differ by more than `2*eps`.
    pub fn certainly_before(&self, other: &RtStamp, eps: SimDuration) -> bool {
        other.time.saturating_since(self.time) > eps.saturating_mul(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_clock_reads_true_time() {
        let c = SyncClock::perfect();
        let t = SimTime::from_millis(123);
        assert_eq!(c.read(t), t);
    }

    #[test]
    fn skew_shifts_reading() {
        let c = SyncClock::new(500, 0, SimDuration::from_millis(1));
        assert_eq!(
            c.read(SimTime::from_millis(10)),
            SimTime::from_micros(10_500)
        );
        let neg = SyncClock::new(-500, 0, SimDuration::from_millis(1));
        assert_eq!(
            neg.read(SimTime::from_millis(10)),
            SimTime::from_micros(9_500)
        );
    }

    #[test]
    fn drift_accumulates_until_resync() {
        // 100 ppm = 100us per second.
        let mut c = SyncClock::new(0, 100, SimDuration::from_millis(10));
        let t = SimTime::from_secs(5);
        assert_eq!(c.read(t), t + SimDuration::from_micros(500));
        c.resync(t);
        assert_eq!(c.read(t), t);
    }

    #[test]
    fn error_is_clamped_to_bound() {
        let c = SyncClock::new(0, 1_000, SimDuration::from_micros(800));
        // After 10s, raw drift would be 10_000us; clamped to 800.
        let t = SimTime::from_secs(10);
        assert_eq!(t.since(SimTime::ZERO).as_micros(), 10_000_000);
        assert_eq!(c.read(t), t + SimDuration::from_micros(800));
    }

    #[test]
    fn stamps_totally_ordered() {
        let c = SyncClock::perfect();
        let s1 = c.stamp(SimTime::from_millis(1), 0);
        let s2 = c.stamp(SimTime::from_millis(1), 1);
        let s3 = c.stamp(SimTime::from_millis(2), 0);
        assert!(s1 < s2 && s2 < s3);
    }

    #[test]
    fn certainly_before_requires_2eps_gap() {
        let eps = SimDuration::from_millis(1);
        let a = RtStamp {
            time: SimTime::from_millis(10),
            node: 0,
        };
        let near = RtStamp {
            time: SimTime::from_millis(11),
            node: 1,
        };
        let far = RtStamp {
            time: SimTime::from_millis(13),
            node: 1,
        };
        assert!(!a.certainly_before(&near, eps));
        assert!(a.certainly_before(&far, eps));
    }

    proptest! {
        /// Reading error never exceeds the bound.
        #[test]
        fn error_bounded(
            skew in -5_000i64..5_000,
            drift in -500i64..500,
            t_ms in 0u64..100_000
        ) {
            let bound = SimDuration::from_millis(1);
            let c = SyncClock::new(skew, drift, bound);
            let now = SimTime::from_millis(t_ms);
            let r = c.read(now);
            let err = if r >= now { r.since(now) } else { now.since(r) };
            prop_assert!(err <= bound);
        }

        /// Readings are monotone in true time when drift is non-negative
        /// and skew is fixed (physical clocks don't run backwards between
        /// resyncs).
        #[test]
        fn monotone_reading(skew in -1_000i64..1_000, drift in 0i64..500, a in 0u64..10_000, b in 0u64..10_000) {
            let c = SyncClock::new(skew, drift, SimDuration::from_secs(1));
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(c.read(SimTime::from_millis(lo)) <= c.read(SimTime::from_millis(hi)));
        }
    }
}
