//! Lamport scalar logical clocks.
//!
//! The classic clock of \[Lamport '78\]: each process keeps a counter,
//! ticks it on every local event, stamps outgoing messages, and on receipt
//! advances to `max(local, received) + 1`. Scalar clocks are *consistent*
//! with happens-before (if `a → b` then `C(a) < C(b)`) but not
//! *characterizing* (the converse fails) — which is exactly why CATOCS
//! implementations need vector clocks, and why the paper's §4.3 can get
//! away with "local timestamp of the coordinator ... plus node id to break
//! ties" for optimistic transaction ordering: a total order is all that is
//! needed there, not causality detection.

use serde::{Deserialize, Serialize};

/// A Lamport scalar clock.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LamportClock {
    value: u64,
}

impl LamportClock {
    /// A clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current reading.
    pub fn read(&self) -> u64 {
        self.value
    }

    /// Advances for a local event and returns the new stamp.
    pub fn tick(&mut self) -> u64 {
        self.value += 1;
        self.value
    }

    /// Merges an incoming stamp (receive rule) and returns the new value.
    pub fn observe(&mut self, received: u64) -> u64 {
        self.value = self.value.max(received) + 1;
        self.value
    }

    /// A totally ordered stamp `(clock, node)` — the paper's §4.3 tie-break
    /// construction ("local timestamp of the coordinator at the initiation
    /// of the commit protocol, plus node id to break ties").
    pub fn total_stamp(&mut self, node: usize) -> TotalStamp {
        TotalStamp {
            time: self.tick(),
            node,
        }
    }
}

/// A totally ordered logical timestamp: Lamport time with node tie-break.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TotalStamp {
    /// Lamport time component (most significant in comparisons).
    pub time: u64,
    /// Node id tie-breaker.
    pub node: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn tick_is_monotone() {
        let mut c = LamportClock::new();
        let a = c.tick();
        let b = c.tick();
        assert!(b > a);
        assert_eq!(c.read(), 2);
    }

    #[test]
    fn observe_jumps_past_received() {
        let mut c = LamportClock::new();
        c.tick();
        let v = c.observe(100);
        assert_eq!(v, 101);
        // Observing an old stamp still advances.
        let v2 = c.observe(5);
        assert_eq!(v2, 102);
    }

    #[test]
    fn message_chain_is_ordered() {
        // Simulate a → b → c across three processes.
        let mut p = LamportClock::new();
        let mut q = LamportClock::new();
        let mut r = LamportClock::new();
        let a = p.tick(); // send at P
        let b = q.observe(a); // receive at Q
        let b2 = q.tick(); // send at Q
        let c = r.observe(b2); // receive at R
        assert!(a < b && b < b2 && b2 < c);
    }

    #[test]
    fn total_stamps_order_lexicographically() {
        let mut a = LamportClock::new();
        let mut b = LamportClock::new();
        let s1 = a.total_stamp(1);
        let s2 = b.total_stamp(2);
        // Same time → node breaks tie.
        assert!(s1 < s2);
        let s3 = a.total_stamp(1);
        assert!(s2 < s3);
    }

    proptest! {
        #[test]
        fn observe_result_exceeds_both(local in 0u64..1_000_000, recv in 0u64..1_000_000) {
            let mut c = LamportClock { value: local };
            let v = c.observe(recv);
            prop_assert!(v > local);
            prop_assert!(v > recv);
        }

        #[test]
        fn total_stamps_never_equal_across_nodes(t in 0u64..1000, n1 in 0usize..64, n2 in 0usize..64) {
            prop_assume!(n1 != n2);
            let s1 = TotalStamp { time: t, node: n1 };
            let s2 = TotalStamp { time: t, node: n2 };
            prop_assert!(s1 != s2);
            prop_assert!(s1 < s2 || s2 < s1);
        }
    }
}
