//! State-level version clocks: "clock ticks on the state".
//!
//! The paper's recurring alternative to CATOCS is *prescriptive ordering*
//! carried in the data itself: per-object version numbers (the shared
//! manufacturing database of §3.1), and dependency fields on computed data
//! ("each computed data object records the id and version number of its
//! base data object in a designated 'dependency' field", §4.1). This
//! module provides those primitives; `statelevel` builds the
//! order-preserving cache and dependency utilities on top of them.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies an application object (a security, a lot record, an article).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct ObjectId(pub u64);

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

/// A per-object version number — the state-level logical clock.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default, Debug,
)]
pub struct Version(pub u64);

impl Version {
    /// The version before any update.
    pub const INITIAL: Version = Version(0);

    /// The next version.
    pub fn next(self) -> Version {
        Version(self.0 + 1)
    }
}

/// A fully qualified object version: which object, at which version.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Debug)]
pub struct VersionedTag {
    /// The object.
    pub object: ObjectId,
    /// Its version.
    pub version: Version,
}

impl VersionedTag {
    /// Builds a tag.
    pub fn new(object: ObjectId, version: Version) -> Self {
        VersionedTag { object, version }
    }

    /// Whether this tag supersedes `other` (same object, later version).
    pub fn supersedes(&self, other: &VersionedTag) -> bool {
        self.object == other.object && self.version > other.version
    }
}

/// The "dependency field" of a computed data object (§4.1): the base
/// object version it was derived from, if any.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Debug, Default)]
pub struct DependencyStamp {
    /// The version of this datum itself.
    pub own: Option<VersionedTag>,
    /// The base datum this was computed from.
    pub depends_on: Option<VersionedTag>,
}

impl DependencyStamp {
    /// A stamp for a base (non-computed) datum.
    pub fn base(object: ObjectId, version: Version) -> Self {
        DependencyStamp {
            own: Some(VersionedTag::new(object, version)),
            depends_on: None,
        }
    }

    /// A stamp for a datum computed from `base`.
    pub fn derived(object: ObjectId, version: Version, base: VersionedTag) -> Self {
        DependencyStamp {
            own: Some(VersionedTag::new(object, version)),
            depends_on: Some(base),
        }
    }

    /// Whether this datum is *current* with respect to a known base
    /// version: a derived datum is stale if its recorded base version is
    /// older than the latest version of the base object.
    pub fn current_against(&self, latest_base: &VersionedTag) -> bool {
        match self.depends_on {
            None => true,
            Some(dep) => dep.object != latest_base.object || dep.version >= latest_base.version,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_next_increments() {
        assert_eq!(Version::INITIAL.next(), Version(1));
        assert_eq!(Version(41).next(), Version(42));
    }

    #[test]
    fn supersedes_same_object_only() {
        let a1 = VersionedTag::new(ObjectId(1), Version(1));
        let a2 = VersionedTag::new(ObjectId(1), Version(2));
        let b2 = VersionedTag::new(ObjectId(2), Version(2));
        assert!(a2.supersedes(&a1));
        assert!(!a1.supersedes(&a2));
        assert!(!b2.supersedes(&a1));
    }

    #[test]
    fn base_data_is_always_current() {
        let s = DependencyStamp::base(ObjectId(1), Version(3));
        let latest = VersionedTag::new(ObjectId(1), Version(99));
        assert!(s.current_against(&latest));
    }

    #[test]
    fn derived_data_staleness() {
        let base_v2 = VersionedTag::new(ObjectId(1), Version(2));
        let s = DependencyStamp::derived(ObjectId(7), Version(1), base_v2);
        // Latest base is v2 → current.
        assert!(s.current_against(&base_v2));
        // Latest base is v3 → stale (the Fig. 4 false crossing).
        let base_v3 = VersionedTag::new(ObjectId(1), Version(3));
        assert!(!s.current_against(&base_v3));
        // A different base object is irrelevant.
        let other = VersionedTag::new(ObjectId(2), Version(9));
        assert!(s.current_against(&other));
    }

    #[test]
    fn display_formats() {
        assert_eq!(ObjectId(5).to_string(), "obj#5");
        assert_eq!(format!("{:?}", ObjectId(5)), "obj#5");
    }
}
