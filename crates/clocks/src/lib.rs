//! # clocks — logical and physical clock substrate
//!
//! Every ordering mechanism discussed in the paper is built from a clock:
//!
//! - [`lamport`] — Lamport's scalar logical clocks \[Lamport '78\], the
//!   origin of the happens-before relation CATOCS enforces.
//! - [`vector`] — vector clocks, the timestamp carried by the ISIS-style
//!   causal multicast (`cbcast`) implemented in the `catocs` crate. Also
//!   provides the delta-compressed encoding used in the T7 overhead
//!   ablation.
//! - [`matrix`] — matrix clocks, which let a process compute which
//!   messages are *stable* (delivered everywhere) — the buffering
//!   garbage-collection problem of the paper's §5.
//! - [`realtime`] — a simulated synchronized real-time clock with bounded
//!   skew, the paper's preferred ordering device for real-time systems
//!   (§4.6: "a timestamp can have a granularity in the microsecond range
//!   and an accuracy to less than one millisecond").
//! - [`versions`] — state-level version clocks: per-object version
//!   numbers and dependency stamps, the paper's "clock ticks on the
//!   state" (§6) used by every state-level alternative.

pub mod lamport;
pub mod matrix;
pub mod realtime;
pub mod vector;
pub mod versions;

pub use lamport::LamportClock;
pub use matrix::MatrixClock;
pub use realtime::SyncClock;
pub use vector::{ClockOrd, VectorClock};
pub use versions::{DependencyStamp, ObjectId, Version, VersionedTag};
