//! Matrix clocks: each process's knowledge of every other process's
//! vector clock.
//!
//! Row `i` of the matrix at process `p` is `p`'s best knowledge of what
//! process `i` has delivered. The column-wise minimum therefore bounds
//! what *everyone* is known to have delivered — exactly the stability
//! ("delivered everywhere") test that CATOCS implementations use to
//! garbage-collect their message buffers. Section 5 of the paper argues
//! that this state is itself a scaling problem: the matrix is `N×N`, and
//! stale rows keep messages buffered. Experiment T5 measures both.

use crate::vector::VectorClock;
use serde::{Deserialize, Serialize};

/// An `n × n` matrix clock for a group of `n` processes.
///
/// Rows are allocated lazily: a row stays zero-width until something is
/// written to it, and a zero-width row reads as all-zeros (exactly what
/// an eagerly allocated fresh row would). This keeps a fresh matrix at
/// `O(n)` memory instead of `O(n²)` — material for the T7+ scaling runs,
/// where a mostly-idle group of 4096 would otherwise pay ~134 MB per
/// endpoint for state that is almost entirely zeros. The *wire* cost
/// ([`MatrixClock::encoded_len`]) stays the analytic dense size; laziness
/// is a memory representation, not a protocol change.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatrixClock {
    n: usize,
    /// `rows[i]` = best-known vector clock of process `i`'s deliveries.
    /// May be shorter than `n` (missing components read as 0).
    rows: Vec<VectorClock>,
}

impl MatrixClock {
    /// A zero matrix for `n` processes.
    pub fn new(n: usize) -> Self {
        MatrixClock {
            n,
            rows: vec![VectorClock::new(0); n],
        }
    }

    /// Widens row `i` to full width before an indexed write.
    fn widen_row(&mut self, i: usize) {
        if self.rows[i].len() < self.n {
            let mut wide = VectorClock::new(self.n);
            wide.merge(&self.rows[i]);
            self.rows[i] = wide;
        }
    }

    /// Group size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the group is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// This process's own row (its delivered clock).
    pub fn own_row(&self, me: usize) -> &VectorClock {
        &self.rows[me]
    }

    /// Records that `me` delivered the `seq`-th message from `sender`.
    /// Returns whether the row advanced (new delivery knowledge).
    pub fn record_delivery(&mut self, me: usize, sender: usize, seq: u64) -> bool {
        if self.rows[me].get(sender) < seq {
            self.widen_row(me);
            self.rows[me].set(sender, seq);
            true
        } else {
            false
        }
    }

    /// Incorporates a gossiped row: process `who` reports its delivered
    /// clock `row`. Returns whether any component advanced, so callers
    /// can skip frontier recomputation when the gossip was stale.
    pub fn update_row(&mut self, who: usize, row: &VectorClock) -> bool {
        let mine = &mut self.rows[who];
        let changed = (0..row.len()).any(|i| row.get(i) > mine.get(i));
        if changed {
            mine.merge(row);
        }
        changed
    }

    /// Incorporates an entire matrix received from a peer.
    pub fn merge(&mut self, other: &MatrixClock) {
        for i in 0..self.n.min(other.n) {
            self.rows[i].merge(&other.rows[i]);
        }
    }

    /// The stability frontier: component `s` is the highest sequence
    /// number `k` such that *every* process is known to have delivered
    /// messages `1..=k` from sender `s`. Messages at or below the frontier
    /// may be garbage-collected.
    pub fn stable_frontier(&self) -> VectorClock {
        // Any never-written (zero-width) row reads as all-zeros and pins
        // the componentwise min at zero everywhere, so the O(n²) sweep
        // can be skipped. This is what makes per-delivery GC checks
        // affordable at N=4096, where most members never speak.
        if self.rows.iter().any(|r| r.is_empty()) {
            return VectorClock::new(self.n);
        }
        let mut frontier = VectorClock::new(self.n);
        for s in 0..self.n {
            let min = (0..self.n).map(|i| self.rows[i].get(s)).min().unwrap_or(0);
            frontier.set(s, min);
        }
        frontier
    }

    /// Whether the `seq`-th message from `sender` is stable (known
    /// delivered everywhere).
    pub fn is_stable(&self, sender: usize, seq: u64) -> bool {
        (0..self.n).all(|i| self.rows[i].get(sender) >= seq)
    }

    /// Bytes needed to ship this matrix (the §5 gossip overhead).
    pub fn encoded_len(&self) -> usize {
        4 + self.n * (4 + 8 * self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fresh_matrix_has_zero_frontier() {
        let m = MatrixClock::new(3);
        assert_eq!(m.stable_frontier(), VectorClock::new(3));
        assert!(!m.is_empty());
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn stability_requires_everyone() {
        let mut m = MatrixClock::new(3);
        // P0 and P1 delivered msg 1 from sender 0; P2 has not.
        m.record_delivery(0, 0, 1);
        m.record_delivery(1, 0, 1);
        assert!(!m.is_stable(0, 1));
        m.record_delivery(2, 0, 1);
        assert!(m.is_stable(0, 1));
        assert_eq!(m.stable_frontier().get(0), 1);
    }

    #[test]
    fn record_delivery_is_monotone() {
        let mut m = MatrixClock::new(2);
        m.record_delivery(0, 1, 5);
        m.record_delivery(0, 1, 3); // late, lower — ignored
        assert_eq!(m.own_row(0).get(1), 5);
    }

    #[test]
    fn merge_spreads_knowledge() {
        let mut a = MatrixClock::new(2);
        let mut b = MatrixClock::new(2);
        a.record_delivery(0, 1, 4);
        b.record_delivery(1, 0, 7);
        a.merge(&b);
        assert_eq!(a.own_row(1).get(0), 7);
        assert_eq!(a.own_row(0).get(1), 4);
    }

    #[test]
    fn update_row_merges() {
        let mut m = MatrixClock::new(3);
        m.update_row(2, &VectorClock::from_entries(vec![1, 2, 3]));
        assert_eq!(m.own_row(2).get(2), 3);
    }

    #[test]
    fn fresh_rows_stay_narrow_until_written() {
        // Lazy allocation: a fresh matrix holds zero-width rows, and only
        // the rows that are actually written widen. Semantics must match
        // the dense representation throughout.
        let mut m = MatrixClock::new(4096);
        assert!(m.rows.iter().all(|r| r.is_empty()));
        m.record_delivery(7, 3, 1);
        assert_eq!(m.rows[7].len(), 4096);
        assert!(m
            .rows
            .iter()
            .enumerate()
            .all(|(i, r)| i == 7 || r.is_empty()));
        assert_eq!(m.own_row(7).get(3), 1);
        assert_eq!(m.own_row(0).get(3), 0);
        assert_eq!(m.stable_frontier(), VectorClock::new(4096));
        // update_row widens through VectorClock::merge's resize.
        m.update_row(9, &VectorClock::from_entries(vec![0, 2]));
        assert_eq!(m.own_row(9).get(1), 2);
        // Wire size is unchanged by the in-memory representation.
        assert_eq!(m.encoded_len(), MatrixClock::new(4096).encoded_len());
    }

    #[test]
    fn encoded_len_is_quadratic() {
        let m4 = MatrixClock::new(4).encoded_len();
        let m8 = MatrixClock::new(8).encoded_len();
        let m16 = MatrixClock::new(16).encoded_len();
        // Doubling n should roughly quadruple the size.
        assert!(m8 > 3 * m4 && m8 < 5 * m4, "m4={m4} m8={m8}");
        assert!(m16 > 3 * m8 && m16 < 5 * m8);
    }

    proptest! {
        /// The stable frontier never exceeds any process's row.
        #[test]
        fn frontier_is_lower_bound(
            deliveries in proptest::collection::vec((0usize..4, 0usize..4, 1u64..20), 0..50)
        ) {
            let mut m = MatrixClock::new(4);
            for (me, sender, seq) in deliveries {
                m.record_delivery(me, sender, seq);
            }
            let f = m.stable_frontier();
            for i in 0..4 {
                for s in 0..4 {
                    prop_assert!(f.get(s) <= m.own_row(i).get(s));
                }
            }
        }

        /// Merging never lowers the frontier.
        #[test]
        fn merge_monotone(
            d1 in proptest::collection::vec((0usize..3, 0usize..3, 1u64..10), 0..30),
            d2 in proptest::collection::vec((0usize..3, 0usize..3, 1u64..10), 0..30)
        ) {
            let mut a = MatrixClock::new(3);
            for (me, s, q) in d1 { a.record_delivery(me, s, q); }
            let mut b = MatrixClock::new(3);
            for (me, s, q) in d2 { b.record_delivery(me, s, q); }
            let before = a.stable_frontier();
            a.merge(&b);
            let after = a.stable_frontier();
            for s in 0..3 {
                prop_assert!(after.get(s) >= before.get(s));
            }
        }
    }
}
