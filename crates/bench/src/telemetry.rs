//! BENCH_*.json performance snapshots and the regression gate.
//!
//! `experiments bench` collects a fixed set of quantitative metrics from
//! the hot-path and campaign workloads — throughput, bytes/msg, holdback
//! work, hold-time quantiles, time-series peaks — into a schema-versioned
//! [`BenchSnapshot`]. The encoding is hand-rolled (the offline serde
//! stand-in has no serializer) and validated against [`simnet::json`]'s
//! parser; metric names are emitted sorted, so a snapshot of the same
//! seed is byte-identical across reruns.
//!
//! Metrics carry two axes of metadata the differ needs:
//!
//! - **direction** — whether lower or higher is better, so a delta can
//!   be classified as regression or improvement;
//! - **determinism** — virtual-time metrics (`det: true`) are exactly
//!   reproducible and may be gated in CI; wall-clock metrics
//!   (`det: false`) vary with the host and are informational only.
//!
//! `experiments benchdiff OLD.json NEW.json [--gate PCT]` prints the
//! per-metric delta table and exits nonzero when any gated deterministic
//! metric regresses past the threshold.

use crate::table::Table;
use simnet::json::{escape, JsonValue};

/// Schema tag emitted in every snapshot; bump on incompatible change.
pub const SCHEMA: &str = "catocs-bench/1";

/// Which way a metric is supposed to move.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Smaller is better (latency, bytes, work).
    LowerIsBetter,
    /// Larger is better (throughput, deliveries).
    HigherIsBetter,
}

impl Direction {
    fn as_str(self) -> &'static str {
        match self {
            Direction::LowerIsBetter => "lower",
            Direction::HigherIsBetter => "higher",
        }
    }

    fn parse(s: &str) -> Option<Direction> {
        match s {
            "lower" => Some(Direction::LowerIsBetter),
            "higher" => Some(Direction::HigherIsBetter),
            _ => None,
        }
    }
}

/// One measured metric.
#[derive(Clone, Debug)]
pub struct BenchMetric {
    /// Dotted name, e.g. `t7plus.n64.indexed.delta.bytes_per_msg`.
    pub name: String,
    /// The measurement.
    pub value: f64,
    /// Unit label for reports (`B/msg`, `ev/vsec`, `ms`, …).
    pub unit: String,
    /// Which way improvement points.
    pub dir: Direction,
    /// Virtual-time deterministic (gateable) vs wall-clock informational.
    pub det: bool,
}

/// A full performance snapshot.
#[derive(Clone, Debug)]
pub struct BenchSnapshot {
    /// Schema tag ([`SCHEMA`]).
    pub schema: String,
    /// Seed the deterministic workloads ran under.
    pub seed: u64,
    /// The metrics, sorted by name.
    pub metrics: Vec<BenchMetric>,
}

impl BenchSnapshot {
    /// Creates an empty snapshot for `seed`.
    pub fn new(seed: u64) -> Self {
        BenchSnapshot {
            schema: SCHEMA.to_string(),
            seed,
            metrics: Vec::new(),
        }
    }

    /// Adds a metric.
    pub fn push(
        &mut self,
        name: impl Into<String>,
        value: f64,
        unit: impl Into<String>,
        dir: Direction,
        det: bool,
    ) {
        self.metrics.push(BenchMetric {
            name: name.into(),
            value,
            unit: unit.into(),
            dir,
            det,
        });
    }

    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<&BenchMetric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Serializes to JSON: metrics sorted by name, one per line, so
    /// same-seed reruns are byte-identical and diffs stay readable.
    ///
    /// # Panics
    ///
    /// Panics if two metrics share a name — a snapshot is a map.
    pub fn to_json(&self) -> String {
        let mut ms: Vec<&BenchMetric> = self.metrics.iter().collect();
        ms.sort_by(|a, b| a.name.cmp(&b.name));
        for w in ms.windows(2) {
            assert!(w[0].name != w[1].name, "duplicate metric {}", w[0].name);
        }
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"schema\": \"{}\",\n  \"seed\": {},\n  \"metrics\": [",
            escape(&self.schema),
            self.seed
        ));
        for (i, m) in ms.iter().enumerate() {
            assert!(
                m.value.is_finite(),
                "metric {} is not finite: {}",
                m.name,
                m.value
            );
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"value\": {}, \"unit\": \"{}\", \
                 \"dir\": \"{}\", \"det\": {}}}",
                escape(&m.name),
                fmt_f64(m.value),
                escape(&m.unit),
                m.dir.as_str(),
                m.det
            ));
        }
        out.push_str("\n  ]\n}\n");
        debug_assert!(JsonValue::parse(&out).is_some(), "emitted invalid JSON");
        out
    }

    /// Parses a snapshot, validating the schema tag and every field.
    pub fn parse(s: &str) -> Result<BenchSnapshot, String> {
        let doc = JsonValue::parse(s).ok_or("malformed JSON")?;
        let schema = doc
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or("missing schema")?;
        if schema != SCHEMA {
            return Err(format!("unsupported schema {schema:?} (want {SCHEMA:?})"));
        }
        let seed = doc
            .get("seed")
            .and_then(JsonValue::as_u64)
            .ok_or("missing seed")?;
        let mut snap = BenchSnapshot::new(seed);
        for (i, m) in doc
            .get("metrics")
            .and_then(JsonValue::as_arr)
            .ok_or("missing metrics array")?
            .iter()
            .enumerate()
        {
            let field = |k: &str| m.get(k).ok_or(format!("metric #{i}: missing {k}"));
            let name = field("name")?.as_str().ok_or("name must be a string")?;
            let value = field("value")?.as_f64().ok_or("value must be a number")?;
            let unit = field("unit")?.as_str().ok_or("unit must be a string")?;
            let dir = field("dir")?
                .as_str()
                .and_then(Direction::parse)
                .ok_or(format!("metric {name}: dir must be lower|higher"))?;
            let det = field("det")?.as_bool().ok_or("det must be a bool")?;
            if snap.get(name).is_some() {
                return Err(format!("duplicate metric {name}"));
            }
            snap.push(name, value, unit, dir, det);
        }
        Ok(snap)
    }
}

/// Formats an f64 the way the snapshot stores it: integral values without
/// a fraction, everything else via shortest-round-trip `Display` (which
/// is deterministic for a given value).
fn fmt_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// One row of a snapshot comparison.
#[derive(Clone, Debug)]
pub struct DiffRow {
    /// Metric name.
    pub name: String,
    /// Baseline value (`None` if the metric is new).
    pub old: Option<f64>,
    /// Current value (`None` if the metric disappeared).
    pub new: Option<f64>,
    /// Signed percentage change, when both sides are present and the
    /// baseline is nonzero.
    pub delta_pct: Option<f64>,
    /// Deterministic in both snapshots (only these can be gated).
    pub det: bool,
    /// Past the gate threshold in the *worse* direction.
    pub regressed: bool,
}

/// The outcome of comparing two snapshots.
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// Per-metric rows, baseline order (sorted by name).
    pub rows: Vec<DiffRow>,
    /// Gate threshold applied, percent.
    pub gate_pct: f64,
    /// Names of gated metrics that regressed past the threshold.
    pub regressions: Vec<String>,
}

/// Gate threshold used when `--gate` is given without a value.
pub const DEFAULT_GATE_PCT: f64 = 10.0;

/// Compares `new` against the `old` baseline. Only metrics deterministic
/// in *both* snapshots are gated; wall-clock metrics always pass (they
/// are host noise). A metric present on one side only is reported but
/// never fails the gate — adding or retiring metrics is not a
/// performance regression.
pub fn diff(old: &BenchSnapshot, new: &BenchSnapshot, gate_pct: f64) -> DiffReport {
    let mut names: Vec<&str> = old
        .metrics
        .iter()
        .chain(new.metrics.iter())
        .map(|m| m.name.as_str())
        .collect();
    names.sort_unstable();
    names.dedup();

    let mut rows = Vec::new();
    let mut regressions = Vec::new();
    for name in names {
        let o = old.get(name);
        let n = new.get(name);
        let (mut delta_pct, mut det, mut regressed) = (None, false, false);
        if let (Some(o), Some(n)) = (o, n) {
            det = o.det && n.det;
            if o.value != 0.0 {
                let pct = (n.value - o.value) / o.value.abs() * 100.0;
                delta_pct = Some(pct);
                let worse = match n.dir {
                    Direction::LowerIsBetter => pct,
                    Direction::HigherIsBetter => -pct,
                };
                regressed = det && worse > gate_pct;
            } else if n.value != 0.0 {
                // From zero: direction decides; any growth of a
                // lower-is-better metric from a zero baseline is suspect.
                regressed = det && n.dir == Direction::LowerIsBetter;
            }
        }
        if regressed {
            regressions.push(name.to_string());
        }
        rows.push(DiffRow {
            name: name.to_string(),
            old: o.map(|m| m.value),
            new: n.map(|m| m.value),
            delta_pct,
            det,
            regressed,
        });
    }
    DiffReport {
        rows,
        gate_pct,
        regressions,
    }
}

/// Renders a diff report as a [`Table`].
pub fn render_diff(report: &DiffReport, old_label: &str, new_label: &str) -> Table {
    let mut t = Table::new(
        format!(
            "BENCHDIFF — {old_label} vs {new_label} (gate ±{}%)",
            report.gate_pct
        ),
        &["metric", "old", "new", "delta", "gated", "verdict"],
    );
    for r in &report.rows {
        let fmt_side = |v: Option<f64>| match v {
            Some(v) => fmt_f64(v),
            None => "—".to_string(),
        };
        let delta = match r.delta_pct {
            Some(pct) => format!("{pct:+.2}%"),
            None if r.old.is_none() => "new".to_string(),
            None if r.new.is_none() => "gone".to_string(),
            None => "n/a".to_string(),
        };
        let verdict = if r.regressed {
            "REGRESSED"
        } else if matches!(r.delta_pct, Some(p) if p != 0.0) {
            "ok"
        } else {
            ""
        };
        t.row(vec![
            r.name.clone().into(),
            fmt_side(r.old).into(),
            fmt_side(r.new).into(),
            delta.into(),
            if r.det { "yes" } else { "no" }.into(),
            verdict.into(),
        ]);
    }
    t.note("gated: deterministic (virtual-time) in both snapshots; wall-clock");
    t.note("metrics are informational and never fail the gate. A metric only");
    t.note("present on one side is reported but not gated.");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchSnapshot {
        let mut s = BenchSnapshot::new(42);
        s.push(
            "b.throughput",
            1000.0,
            "ev/vsec",
            Direction::HigherIsBetter,
            true,
        );
        s.push("a.bytes", 24.5, "B/msg", Direction::LowerIsBetter, true);
        s.push("c.wall", 0.123, "s", Direction::LowerIsBetter, false);
        s
    }

    #[test]
    fn json_roundtrips_through_parser() {
        let s = sample();
        let json = s.to_json();
        let back = BenchSnapshot::parse(&json).expect("parses");
        assert_eq!(back.seed, 42);
        assert_eq!(back.metrics.len(), 3);
        let a = back.get("a.bytes").unwrap();
        assert_eq!(a.value, 24.5);
        assert_eq!(a.unit, "B/msg");
        assert_eq!(a.dir, Direction::LowerIsBetter);
        assert!(a.det);
        // Serialization is canonical: parse → re-emit is byte-identical.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn emission_is_sorted_and_deterministic() {
        let s = sample();
        let a = s.to_json();
        let b = sample().to_json();
        assert_eq!(a, b);
        let first = a.find("a.bytes").unwrap();
        let second = a.find("b.throughput").unwrap();
        assert!(first < second, "metrics must be name-sorted");
    }

    #[test]
    fn parse_rejects_bad_documents() {
        assert!(BenchSnapshot::parse("{").is_err());
        assert!(BenchSnapshot::parse("{}").is_err());
        assert!(BenchSnapshot::parse(r#"{"schema":"other/9","seed":1,"metrics":[]}"#).is_err());
        let dup = r#"{"schema":"catocs-bench/1","seed":1,"metrics":[
            {"name":"x","value":1,"unit":"","dir":"lower","det":true},
            {"name":"x","value":2,"unit":"","dir":"lower","det":true}]}"#;
        assert!(BenchSnapshot::parse(dup).is_err());
        let baddir = r#"{"schema":"catocs-bench/1","seed":1,"metrics":[
            {"name":"x","value":1,"unit":"","dir":"sideways","det":true}]}"#;
        assert!(BenchSnapshot::parse(baddir).is_err());
    }

    #[test]
    fn self_diff_is_clean() {
        let s = sample();
        let report = diff(&s, &s, DEFAULT_GATE_PCT);
        assert!(report.regressions.is_empty(), "{:?}", report.regressions);
        assert!(report.rows.iter().all(|r| r.delta_pct == Some(0.0)));
    }

    #[test]
    fn injected_regression_is_flagged_and_direction_aware() {
        let old = sample();
        let mut worse = sample();
        // lower-is-better grows 50% → regression.
        worse.metrics[1].value *= 1.5;
        let report = diff(&old, &worse, 10.0);
        assert_eq!(report.regressions, vec!["a.bytes".to_string()]);

        // higher-is-better grows 50% → improvement, not regression.
        let mut better = sample();
        better.metrics[0].value *= 1.5;
        let report = diff(&old, &better, 10.0);
        assert!(report.regressions.is_empty(), "{:?}", report.regressions);

        // higher-is-better drops 50% → regression.
        let mut slower = sample();
        slower.metrics[0].value *= 0.5;
        let report = diff(&old, &slower, 10.0);
        assert_eq!(report.regressions, vec!["b.throughput".to_string()]);
    }

    #[test]
    fn wall_metrics_are_never_gated() {
        let old = sample();
        let mut worse = sample();
        worse.metrics[2].value *= 100.0; // c.wall, det: false
        let report = diff(&old, &worse, 10.0);
        assert!(report.regressions.is_empty(), "{:?}", report.regressions);
        // ...but the delta is still reported.
        let row = report.rows.iter().find(|r| r.name == "c.wall").unwrap();
        assert!(row.delta_pct.unwrap() > 1000.0);
    }

    #[test]
    fn added_and_removed_metrics_do_not_gate() {
        let old = sample();
        let mut new = sample();
        new.metrics.remove(0);
        new.push("d.fresh", 5.0, "x", Direction::LowerIsBetter, true);
        let report = diff(&old, &new, 10.0);
        assert!(report.regressions.is_empty());
        let gone = report
            .rows
            .iter()
            .find(|r| r.name == "b.throughput")
            .unwrap();
        assert!(gone.new.is_none() && !gone.regressed);
        let fresh = report.rows.iter().find(|r| r.name == "d.fresh").unwrap();
        assert!(fresh.old.is_none() && !fresh.regressed);
    }

    #[test]
    fn small_wobble_passes_the_gate() {
        let old = sample();
        let mut new = sample();
        new.metrics[1].value *= 1.05; // +5% under a 10% gate
        let report = diff(&old, &new, 10.0);
        assert!(report.regressions.is_empty());
    }

    #[test]
    fn render_diff_mentions_regressions() {
        let old = sample();
        let mut worse = sample();
        worse.metrics[1].value *= 2.0;
        let report = diff(&old, &worse, 10.0);
        let table = render_diff(&report, "OLD", "NEW").to_string();
        assert!(table.contains("REGRESSED"), "{table}");
        assert!(table.contains("a.bytes"), "{table}");
    }
}
