//! # bench — the experiment harness
//!
//! One module per figure/table of the paper (see DESIGN.md §3 for the
//! index). Each experiment is a plain function returning a [`table::Table`]
//! (plus any artifacts like event diagrams), so the integration tests can
//! assert the *shape* of every result — who wins, by roughly what factor —
//! and the `experiments` binary just prints them.
//!
//! Run everything with:
//!
//! ```text
//! cargo run -p bench --bin experiments -- all
//! ```

pub mod experiments;
pub mod table;
pub mod telemetry;

pub use table::Table;
