//! T8 — §4.3/§4.4: replicated update, CATOCS versus optimized
//! transactions.
//!
//! Three write paths over 5 replicas on the same lossy LAN:
//!
//! - **cbcast + write-safety level k** (Deceit, §4.4): the primary
//!   multicasts each update and waits until `k` members are known to
//!   have delivered it. `k = 0` is asynchronous but loses data on a
//!   single failure; `k ≥ 2` waits on real acknowledgements.
//! - **2PC transactions**: prepare/vote/decide with durable logging.
//! - **read-any/write-all-available** (HARP-style): synchronous write to
//!   every available replica, availability list dropped on failure.
//!
//! The failure columns replay the paper's §2 durability point: the
//! primary is partitioned away right after issuing a write and then
//! crashes. Under `k = 0` the update was applied locally and is lost
//! (replica divergence); the transactional paths simply never commit it,
//! leaving the replicas consistent.

use crate::table::Table;
use catocs::cbcast::CbcastEndpoint;
use catocs::group::GroupConfig;
use catocs::safety::SafetyTracker;
use catocs::wire::{Dest, Out, Wire};
use simnet::net::NetConfig;
use simnet::process::{Ctx, Process, ProcessId, TimerId};
use simnet::sim::SimBuilder;
use simnet::time::{SimDuration, SimTime};
use txn::replication::{ReplWire, ReplicatedStore, WriteCoordinator, WriteOutcome};
use txn::twopc::{Coordinator, Participant, TxnWire};

/// Replicas in every configuration.
const REPLICAS: usize = 5;
/// Writes issued per run.
const WRITES: u32 = 25;
/// Write issue period.
const PERIOD: SimDuration = SimDuration::from_millis(25);

fn net() -> NetConfig {
    NetConfig::lossy_lan(0.02)
}

// ---------------------------------------------------------------------
// Path 1: cbcast with write-safety level k.
// ---------------------------------------------------------------------

const TICK: TimerId = TimerId(0);
const WRITE_TICK: TimerId = TimerId(1);

fn route_cb(ctx: &mut Ctx<'_, Wire<u64>>, me: usize, n: usize, out: Vec<Out<u64>>) {
    for (dest, w) in out {
        match dest {
            Dest::All => {
                for k in 0..n {
                    if k != me {
                        ctx.send(ProcessId(k), w.clone());
                    }
                }
            }
            Dest::One(k) => ctx.send(ProcessId(k), w),
        }
    }
}

struct CbPrimary {
    endpoint: CbcastEndpoint<u64>,
    tracker: SafetyTracker,
    writes_left: u32,
    next_val: u64,
    /// Locally applied values (self-deliveries).
    applied: Vec<u64>,
    /// (id, time-to-safety) recorded by the tracker.
    done: u32,
}

impl Process<Wire<u64>> for CbPrimary {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Wire<u64>>) {
        ctx.set_timer(TICK, SimDuration::from_millis(10));
        ctx.set_timer(WRITE_TICK, PERIOD);
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_, Wire<u64>>, _f: ProcessId, m: Wire<u64>) {
        let (_d, out) = self.endpoint.on_wire(ctx.now(), m);
        route_cb(ctx, 0, REPLICAS, out);
        let ready = self.tracker.advance(self.endpoint.stability(), ctx.now());
        self.done += ready.len() as u32;
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Wire<u64>>, t: TimerId) {
        match t {
            TICK => {
                let out = self.endpoint.on_tick(ctx.now());
                route_cb(ctx, 0, REPLICAS, out);
                let ready = self.tracker.advance(self.endpoint.stability(), ctx.now());
                self.done += ready.len() as u32;
                ctx.set_timer(TICK, SimDuration::from_millis(10));
            }
            WRITE_TICK if self.writes_left > 0 => {
                self.writes_left -= 1;
                self.next_val += 1;
                let (d, out) = self.endpoint.multicast(ctx.now(), self.next_val);
                self.applied.push(self.next_val);
                self.tracker.register(d.id, ctx.now());
                route_cb(ctx, 0, REPLICAS, out);
                ctx.set_timer(WRITE_TICK, PERIOD);
            }
            _ => {}
        }
    }
}

struct CbReplica {
    me: usize,
    endpoint: CbcastEndpoint<u64>,
    applied: Vec<u64>,
}

impl Process<Wire<u64>> for CbReplica {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Wire<u64>>) {
        ctx.set_timer(TICK, SimDuration::from_millis(10));
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_, Wire<u64>>, _f: ProcessId, m: Wire<u64>) {
        let (dels, out) = self.endpoint.on_wire(ctx.now(), m);
        for d in dels {
            self.applied.push(d.payload);
        }
        route_cb(ctx, self.me, REPLICAS, out);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Wire<u64>>, _t: TimerId) {
        let out = self.endpoint.on_tick(ctx.now());
        route_cb(ctx, self.me, REPLICAS, out);
        ctx.set_timer(TICK, SimDuration::from_millis(10));
    }
}

/// Result of one cbcast k-safety run.
#[derive(Clone, Debug)]
pub struct CbRun {
    /// Mean time from multicast to k-safety, ms.
    pub mean_safety_ms: f64,
    /// Writes that reached safety.
    pub safe: usize,
    /// Writes still pending safety at the end.
    pub stalled: usize,
    /// Updates applied at the primary but missing from some replica.
    pub lost: usize,
}

/// Runs the cbcast path with safety level `k`; optionally fail the
/// primary after `fail_after` writes.
pub fn run_cbcast_path(seed: u64, k: usize, fail_after: Option<u32>) -> CbRun {
    let mut sim = SimBuilder::new(seed).net(net()).build::<Wire<u64>>();
    let cfg = GroupConfig::default();
    sim.add_process(CbPrimary {
        endpoint: CbcastEndpoint::new(0, REPLICAS, cfg.clone()),
        tracker: SafetyTracker::new(k),
        writes_left: WRITES,
        next_val: 0,
        applied: Vec::new(),
        done: 0,
    });
    for me in 1..REPLICAS {
        sim.add_process(CbReplica {
            me,
            endpoint: CbcastEndpoint::new(me, REPLICAS, cfg.clone()),
            applied: Vec::new(),
        });
    }
    if let Some(after) = fail_after {
        // Partition the primary just as it issues write `after`+1, then
        // crash it: the update is applied locally, never transmitted.
        let t_fail = SimTime::ZERO + PERIOD.saturating_mul(after as u64 + 1);
        let others: Vec<ProcessId> = (1..REPLICAS).map(ProcessId).collect();
        sim.partition_at(&[ProcessId(0)], &others, t_fail);
        sim.crash_at(ProcessId(0), t_fail + PERIOD.saturating_mul(2));
    }
    sim.run_until(SimTime::from_secs(8));

    let primary: &CbPrimary = sim.process(ProcessId(0)).expect("primary");
    let completed = primary.tracker.completed();
    let mean_us = if completed.is_empty() {
        0.0
    } else {
        completed
            .iter()
            .map(|(_, d)| d.as_micros() as f64)
            .sum::<f64>()
            / completed.len() as f64
    };
    // Divergence: anything the primary applied that some live replica
    // never did.
    let mut lost = 0;
    for v in &primary.applied {
        for r in 1..REPLICAS {
            let rep: &CbReplica = sim.process(ProcessId(r)).expect("replica");
            if !rep.applied.contains(v) {
                lost += 1;
                break;
            }
        }
    }
    CbRun {
        mean_safety_ms: mean_us / 1000.0,
        safe: completed.len(),
        stalled: primary.tracker.pending_len(),
        lost,
    }
}

// ---------------------------------------------------------------------
// Path 2: 2PC transactions.
// ---------------------------------------------------------------------

/// Wire messages for the 2PC path.
#[derive(Clone, Debug)]
pub enum TpcNet {
    /// Protocol message.
    P(TxnWire),
}

struct TpcCoordinator {
    writes_left: u32,
    next_tx: u64,
    current: Option<Coordinator>,
    issued_at: SimTime,
    latencies_us: Vec<u64>,
    aborted: u32,
}

impl TpcCoordinator {
    fn issue(&mut self, ctx: &mut Ctx<'_, TpcNet>) {
        if self.writes_left == 0 || self.current.is_some() {
            return;
        }
        self.writes_left -= 1;
        self.next_tx += 1;
        let writes: Vec<(usize, Vec<(u64, i64)>)> = (0..REPLICAS)
            .map(|p| (p, vec![(self.next_tx, self.next_tx as i64)]))
            .collect();
        let (coord, msgs) = Coordinator::begin(txn::lock::TxId(self.next_tx), writes);
        self.current = Some(coord);
        self.issued_at = ctx.now();
        for (p, m) in msgs {
            ctx.send(ProcessId(1 + p), TpcNet::P(m));
        }
    }
}

impl Process<TpcNet> for TpcCoordinator {
    fn on_start(&mut self, ctx: &mut Ctx<'_, TpcNet>) {
        ctx.set_timer(WRITE_TICK, PERIOD);
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_, TpcNet>, _f: ProcessId, m: TpcNet) {
        let TpcNet::P(w) = m;
        let Some(coord) = &mut self.current else {
            return;
        };
        match w {
            TxnWire::Vote { from, yes, .. } => {
                if let Some((decision, msgs)) = coord.on_vote(from, yes) {
                    self.latencies_us
                        .push(ctx.now().saturating_since(self.issued_at).as_micros());
                    if decision == txn::twopc::TxnDecision::Abort {
                        self.aborted += 1;
                    }
                    for (p, m) in msgs {
                        ctx.send(ProcessId(1 + p), TpcNet::P(m));
                    }
                    self.current = None;
                }
            }
            TxnWire::Ack { .. } => {}
            _ => {}
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, TpcNet>, _t: TimerId) {
        // A pending transaction that outlived a period: abort on timeout.
        if let Some(coord) = &mut self.current {
            if let Some((_, msgs)) = coord.on_timeout() {
                self.aborted += 1;
                for (p, m) in msgs {
                    ctx.send(ProcessId(1 + p), TpcNet::P(m));
                }
            }
            self.current = None;
        }
        self.issue(ctx);
        if self.writes_left > 0 {
            ctx.set_timer(WRITE_TICK, PERIOD);
        }
    }
}

struct TpcParticipant {
    inner: Participant,
}

impl Process<TpcNet> for TpcParticipant {
    fn on_message(&mut self, ctx: &mut Ctx<'_, TpcNet>, from: ProcessId, m: TpcNet) {
        let TpcNet::P(w) = m;
        if let Some(reply) = self.inner.on_wire(&w) {
            ctx.send(from, TpcNet::P(reply));
        }
    }
}

/// Result of one 2PC run.
#[derive(Clone, Debug)]
pub struct TpcRun {
    /// Mean decision latency, ms.
    pub mean_commit_ms: f64,
    /// Transactions decided.
    pub decided: usize,
    /// Aborts (vote-no or timeout).
    pub aborted: u32,
    /// Committed values present on some but not all replicas.
    pub lost: usize,
}

/// Runs the 2PC path; optionally partition+crash the coordinator after
/// `fail_after` writes.
pub fn run_twopc_path(seed: u64, fail_after: Option<u32>) -> TpcRun {
    let mut sim = SimBuilder::new(seed).net(net()).build::<TpcNet>();
    sim.add_process(TpcCoordinator {
        writes_left: WRITES,
        next_tx: 0,
        current: None,
        issued_at: SimTime::ZERO,
        latencies_us: Vec::new(),
        aborted: 0,
    });
    for p in 0..REPLICAS {
        sim.add_process(TpcParticipant {
            inner: Participant::new(p, 10_000),
        });
    }
    if let Some(after) = fail_after {
        let t_fail = SimTime::ZERO + PERIOD.saturating_mul(after as u64 + 1);
        let others: Vec<ProcessId> = (1..=REPLICAS).map(ProcessId).collect();
        sim.partition_at(&[ProcessId(0)], &others, t_fail);
        sim.crash_at(ProcessId(0), t_fail + PERIOD.saturating_mul(2));
    }
    sim.run_until(SimTime::from_secs(8));
    // Cooperative termination: an in-doubt participant asks its peers for
    // the outcome (any durable Commit/Abort record resolves it).
    let mut outcomes: std::collections::BTreeMap<txn::lock::TxId, bool> = Default::default();
    for p in 0..REPLICAS {
        let part: &TpcParticipant = sim.process(ProcessId(1 + p)).expect("participant");
        let rec = part.inner.wal().recover();
        for tx in rec.committed {
            outcomes.insert(tx, true);
        }
        for tx in rec.aborted {
            outcomes.entry(tx).or_insert(false);
        }
    }
    for p in 0..REPLICAS {
        let part: &mut TpcParticipant = sim.process_mut(ProcessId(1 + p)).expect("participant");
        for tx in part.inner.in_doubt_txs() {
            if let Some(&commit) = outcomes.get(&tx) {
                part.inner.resolve(tx, commit);
            }
        }
    }
    let coord: &TpcCoordinator = sim.process(ProcessId(0)).expect("coordinator");
    let mean_us = if coord.latencies_us.is_empty() {
        0.0
    } else {
        coord.latencies_us.iter().sum::<u64>() as f64 / coord.latencies_us.len() as f64
    };
    // Divergence check: a key committed at one replica but absent at
    // another (2PC's all-or-nothing should prevent persistent divergence
    // for decided transactions).
    let mut lost = 0;
    for key in 1..=(WRITES as u64) {
        let have: Vec<bool> = (0..REPLICAS)
            .map(|p| {
                let part: &TpcParticipant = sim.process(ProcessId(1 + p)).expect("participant");
                part.inner.get(key).is_some()
            })
            .collect();
        if have.iter().any(|&h| h) && !have.iter().all(|&h| h) {
            lost += 1;
        }
    }
    TpcRun {
        mean_commit_ms: mean_us / 1000.0,
        decided: coord.latencies_us.len(),
        aborted: coord.aborted,
        lost,
    }
}

// ---------------------------------------------------------------------
// Path 3: read-any / write-all-available.
// ---------------------------------------------------------------------

struct WaaCoordinator {
    inner: WriteCoordinator,
    writes_left: u32,
    next: u64,
    issued: std::collections::BTreeMap<u64, SimTime>,
    latencies_us: Vec<u64>,
    aborted: u32,
}

impl Process<ReplWire> for WaaCoordinator {
    fn on_start(&mut self, ctx: &mut Ctx<'_, ReplWire>) {
        ctx.set_timer(WRITE_TICK, PERIOD);
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_, ReplWire>, _f: ProcessId, m: ReplWire) {
        if let ReplWire::WriteAck { wid, from } = m {
            if let Some(WriteOutcome::Committed { latency, .. }) =
                self.inner.on_ack(wid, from, ctx.now())
            {
                self.latencies_us.push(latency.as_micros());
            }
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, ReplWire>, _t: TimerId) {
        if self.writes_left > 0 {
            self.writes_left -= 1;
            self.next += 1;
            let msgs =
                self.inner
                    .begin_write(self.next, self.next, self.next as i64, None, ctx.now());
            self.issued.insert(self.next, ctx.now());
            for (r, m) in msgs {
                ctx.send(ProcessId(1 + r), m);
            }
        }
        // Writes (or their acks) may have been lost: retransmit.
        for (r, m) in self.inner.retry_msgs() {
            ctx.send(ProcessId(1 + r), m);
        }
        if self.writes_left > 0 || self.inner.pending_len() > 0 {
            ctx.set_timer(WRITE_TICK, PERIOD);
        }
    }
}

struct WaaReplica {
    me: usize,
    inner: ReplicatedStore,
}

impl Process<ReplWire> for WaaReplica {
    fn on_message(&mut self, ctx: &mut Ctx<'_, ReplWire>, from: ProcessId, m: ReplWire) {
        if let Some(reply) = self.inner.on_wire(self.me, &m) {
            ctx.send(from, reply);
        }
    }
}

/// Result of one WAA run.
#[derive(Clone, Debug)]
pub struct WaaRun {
    /// Mean commit latency, ms.
    pub mean_commit_ms: f64,
    /// Writes committed.
    pub committed: usize,
    /// Writes aborted.
    pub aborted: u64,
}

/// Runs the write-all-available path; optionally fail replica 1 midway
/// (dropped from the availability list; later writes go to survivors).
pub fn run_waa_path(seed: u64, fail_replica: bool) -> WaaRun {
    let mut sim = SimBuilder::new(seed).net(net()).build::<ReplWire>();
    sim.add_process(WaaCoordinator {
        inner: WriteCoordinator::new(REPLICAS),
        writes_left: WRITES,
        next: 0,
        issued: Default::default(),
        latencies_us: Vec::new(),
        aborted: 0,
    });
    for me in 0..REPLICAS {
        sim.add_process(WaaReplica {
            me,
            inner: ReplicatedStore::new(),
        });
    }
    if fail_replica {
        let t_fail = SimTime::ZERO + PERIOD.saturating_mul(8);
        sim.crash_at(ProcessId(1 + 1), t_fail);
        // The coordinator notices and drops replica 1 a beat later.
        // (Modelled outside the sim loop: see below.)
    }
    // Drive the failure handling deterministically: run to the failure
    // point, drop the replica, continue.
    if fail_replica {
        sim.run_until(SimTime::ZERO + PERIOD.saturating_mul(10));
        let now = sim.now();
        let coord: &mut WaaCoordinator = sim.process_mut(ProcessId(0)).expect("coordinator");
        for o in coord.inner.on_failure(1, now) {
            match o {
                WriteOutcome::Committed { latency, .. } => {
                    coord.latencies_us.push(latency.as_micros())
                }
                WriteOutcome::Aborted { .. } => coord.aborted += 1,
            }
        }
    }
    sim.run_until(SimTime::from_secs(8));
    let coord: &WaaCoordinator = sim.process(ProcessId(0)).expect("coordinator");
    let (committed, aborted) = coord.inner.totals();
    let mean_us = if coord.latencies_us.is_empty() {
        0.0
    } else {
        coord.latencies_us.iter().sum::<u64>() as f64 / coord.latencies_us.len() as f64
    };
    WaaRun {
        mean_commit_ms: mean_us / 1000.0,
        committed: committed as usize,
        aborted: aborted + coord.aborted as u64,
    }
}

/// Runs the full comparison table.
pub fn run() -> Table {
    let mut t = Table::new(
        format!("T8 — §4.3/4.4 replicated update: {REPLICAS} replicas, {WRITES} writes, 2% loss"),
        &[
            "path",
            "mean write latency ms",
            "completed",
            "stalled/aborted",
            "lost updates",
        ],
    );
    for k in [0usize, 2, 3, REPLICAS] {
        let r = run_cbcast_path(1, k, None);
        t.row(vec![
            format!("cbcast k={k}").into(),
            r.mean_safety_ms.into(),
            r.safe.into(),
            r.stalled.into(),
            r.lost.into(),
        ]);
    }
    let r = run_twopc_path(1, None);
    t.row(vec![
        "2PC transaction".into(),
        r.mean_commit_ms.into(),
        r.decided.into(),
        (r.aborted as usize).into(),
        r.lost.into(),
    ]);
    let r = run_waa_path(1, false);
    t.row(vec![
        "write-all-available".into(),
        r.mean_commit_ms.into(),
        r.committed.into(),
        (r.aborted as usize).into(),
        0usize.into(),
    ]);
    // Failure rows.
    let r = run_cbcast_path(1, 0, Some(8));
    t.row(vec![
        "cbcast k=0 + primary crash".into(),
        r.mean_safety_ms.into(),
        r.safe.into(),
        r.stalled.into(),
        r.lost.into(),
    ]);
    let r = run_twopc_path(1, Some(8));
    t.row(vec![
        "2PC + coordinator crash".into(),
        r.mean_commit_ms.into(),
        r.decided.into(),
        (r.aborted as usize).into(),
        r.lost.into(),
    ]);
    let r = run_waa_path(1, true);
    t.row(vec![
        "WAA + replica crash".into(),
        r.mean_commit_ms.into(),
        r.committed.into(),
        (r.aborted as usize).into(),
        0usize.into(),
    ]);
    t.note("k=0 is 'asynchronous' but loses locally-applied updates on a crash");
    t.note("(non-durable atomicity, §2); k≥2 is synchronous — comparable to the");
    t.note("transactional paths, which add grouping, durable commit and aborts.");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k0_is_fast_k_full_is_synchronous() {
        let k0 = run_cbcast_path(1, 0, None);
        let kf = run_cbcast_path(1, REPLICAS, None);
        assert_eq!(k0.mean_safety_ms, 0.0);
        assert!(kf.mean_safety_ms > 0.5, "full safety waits on the net");
        assert_eq!(k0.lost, 0);
    }

    #[test]
    fn primary_crash_loses_updates_only_at_k0() {
        let r = run_cbcast_path(1, 0, Some(8));
        assert!(r.lost > 0, "asynchronous write lost on crash");
    }

    #[test]
    fn twopc_never_diverges() {
        let healthy = run_twopc_path(1, None);
        assert_eq!(healthy.lost, 0);
        assert!(healthy.decided > 0);
        let crashed = run_twopc_path(1, Some(8));
        assert_eq!(crashed.lost, 0, "2PC leaves replicas consistent");
    }

    #[test]
    fn waa_commits_and_survives_replica_failure() {
        let healthy = run_waa_path(1, false);
        assert_eq!(healthy.committed, WRITES as usize);
        let failed = run_waa_path(1, true);
        assert!(
            failed.committed + failed.aborted as usize >= (WRITES - 1) as usize,
            "writes keep completing with the shrunk availability list"
        );
    }

    #[test]
    fn comparable_latency_for_synchronous_paths() {
        // The paper: k-safety writes end up as synchronous as transactions.
        let cb = run_cbcast_path(1, REPLICAS, None);
        let tp = run_twopc_path(1, None);
        assert!(cb.mean_safety_ms > 0.0 && tp.mean_commit_ms > 0.0);
        let ratio = cb.mean_safety_ms / tp.mean_commit_ms;
        assert!(
            (0.1..10.0).contains(&ratio),
            "same order of magnitude, got ratio {ratio}"
        );
    }
}
