//! Chaos — deterministic fault-injection campaigns over the
//! virtual-synchrony stack (§5).
//!
//! Each seed derives a fault schedule (partitions, heals, crashes,
//! recoveries, loss/duplication/delay episodes) and a full simulation
//! run; afterwards every process's event log is replayed through the
//! `catocs::vsync` invariant checker. The sweep crosses the two holdback
//! implementations with the two timestamp encodings, so a bug in either
//! optimisation shows up as a violation in exactly those columns.
//!
//! `experiments chaos` runs the sweep; `experiments chaos --seed N`
//! replays one schedule verbatim and prints the plan, the per-process
//! outcome and any violations (exit code 1 if there are any).

use crate::table::Table;
use catocs::group::GroupConfig;
use catocs::vsync::{run_campaign, BugKnobs, CampaignConfig, CampaignResult};

/// Group sizes the sweep cycles through, by seed.
const SIZES: [usize; 3] = [3, 5, 7];

/// The campaign configuration for one cell of the sweep.
pub fn campaign_config(n: usize, indexed: bool, delta: bool, knobs: BugKnobs) -> CampaignConfig {
    let mut cfg = CampaignConfig::default();
    cfg.n = n;
    cfg.group = GroupConfig {
        indexed_holdback: indexed,
        delta_timestamps: delta,
        ..GroupConfig::default()
    };
    cfg.knobs = knobs;
    cfg
}

/// Runs one seeded campaign in the given sweep cell.
pub fn run_seed(seed: u64, indexed: bool, delta: bool, knobs: BugKnobs) -> CampaignResult {
    let n = SIZES[(seed % SIZES.len() as u64) as usize];
    run_campaign(seed, &campaign_config(n, indexed, delta, knobs))
}

/// Runs `seeds` campaigns in each of the four sweep cells. Returns the
/// table and the total violation count (the CLI turns nonzero into exit
/// code 1, so CI fails on any invariant breach).
pub fn run(seeds: u64) -> (Table, u64) {
    let mut t = Table::new(
        "CHAOS — §5: seeded fault campaigns with virtual-synchrony checking",
        &[
            "holdback",
            "timestamps",
            "runs",
            "views",
            "evicted live",
            "crashed at end",
            "delivered",
            "blocked",
            "violations",
            "replay stable",
        ],
    );
    let mut total_violations = 0u64;
    for (indexed, delta) in [(false, false), (false, true), (true, false), (true, true)] {
        let mut views = 0u64;
        let mut evicted = 0u64;
        let mut crashed = 0u64;
        let mut delivered = 0u64;
        let mut blocked = 0u64;
        let mut violations = 0u64;
        let mut stable = true;
        for seed in 0..seeds {
            let r = run_seed(seed, indexed, delta, BugKnobs::default());
            views += r.views_installed;
            evicted += r.evicted_live.len() as u64;
            crashed += r.plan.crashed_at_horizon().len() as u64;
            delivered += r.delivered_total;
            blocked += r.blocked as u64;
            if !r.violations.is_empty() {
                violations += r.violations.len() as u64;
                eprintln!(
                    "chaos: seed {seed} ({}, {}) violated:",
                    if indexed { "indexed" } else { "scan" },
                    if delta { "delta" } else { "full" },
                );
                for v in &r.violations {
                    eprintln!("  {v}");
                }
            }
            // Replay determinism: the first seed of every cell runs twice
            // and must produce bit-identical logs.
            if seed == 0 {
                let again = run_seed(seed, indexed, delta, BugKnobs::default());
                stable &= again.digest == r.digest;
            }
        }
        t.row(vec![
            if indexed { "indexed" } else { "scan" }.into(),
            if delta { "delta" } else { "full" }.into(),
            seeds.into(),
            views.into(),
            evicted.into(),
            crashed.into(),
            delivered.into(),
            blocked.into(),
            violations.into(),
            if stable { "yes" } else { "NO" }.into(),
        ]);
        total_violations += violations;
    }
    t.note("each run: seed-derived partitions/heals/crashes/recoveries/degrade episodes,");
    t.note("then every process log replayed through the vsync invariant checker;");
    t.note("`experiments chaos --seed N` replays one schedule and prints the plan.");
    (t, total_violations)
}

/// Replays one seed across all four sweep cells, printing the schedule
/// and any violations. Returns the total violation count (the CLI turns
/// nonzero into exit code 1).
pub fn replay(seed: u64) -> usize {
    let n = SIZES[(seed % SIZES.len() as u64) as usize];
    println!(
        "{}",
        run_campaign(seed, &campaign_config(n, true, false, BugKnobs::default())).plan
    );
    let mut total = 0;
    for (indexed, delta) in [(false, false), (false, true), (true, false), (true, true)] {
        let r = run_seed(seed, indexed, delta, BugKnobs::default());
        println!(
            "[{} holdback, {} timestamps] views={} survivors={:?} evicted_live={:?} \
             delivered={} digest={:016x}",
            if indexed { "indexed" } else { "scan" },
            if delta { "delta" } else { "full" },
            r.views_installed,
            r.survivors,
            r.evicted_live,
            r.delivered_total,
            r.digest,
        );
        if r.blocked {
            println!("  primary-partition block: survivors short of a majority of the final view");
        }
        if r.violations.is_empty() {
            println!("  invariants: OK");
        } else {
            for v in &r.violations {
                println!("  VIOLATION: {v}");
            }
            total += r.violations.len();
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_is_clean() {
        // A small cut of the full 200-run campaign, kept fast for CI.
        for (indexed, delta) in [(true, false), (true, true)] {
            for seed in 0..6 {
                let r = run_seed(seed, indexed, delta, BugKnobs::default());
                assert!(
                    r.violations.is_empty(),
                    "seed {seed} indexed={indexed} delta={delta}: {:?}\n{}",
                    r.violations,
                    r.plan
                );
            }
        }
    }

    /// S2 regression: without the flush retransmit/backoff path, a
    /// single lost Flush or FlushOk wedges the view change and the
    /// survivors never reconverge.
    #[test]
    fn flush_retry_bug_is_caught() {
        let vanilla = run_seed(2, true, true, BugKnobs::default());
        assert!(vanilla.violations.is_empty(), "{:?}", vanilla.violations);
        let buggy = run_seed(
            2,
            true,
            true,
            BugKnobs {
                no_flush_retry: true,
                ..BugKnobs::default()
            },
        );
        assert!(
            !buggy.violations.is_empty(),
            "seed 2 must violate without flush retries"
        );
    }

    /// S3 regression: without resetting delta-timestamp decode chains at
    /// view install, a message referencing pre-view state parks forever.
    #[test]
    fn chain_reset_bug_is_caught() {
        let vanilla = run_seed(137, true, true, BugKnobs::default());
        assert!(vanilla.violations.is_empty(), "{:?}", vanilla.violations);
        let buggy = run_seed(
            137,
            true,
            true,
            BugKnobs {
                no_chain_reset: true,
                ..BugKnobs::default()
            },
        );
        assert!(
            !buggy.violations.is_empty(),
            "seed 137 must violate without chain reset at install"
        );
    }

    /// S1 regression: without resetting the failure detector on recover,
    /// cold-start staleness misattributes liveness and the campaign
    /// evicts a different set of live members than the vanilla run.
    #[test]
    fn detector_reset_bug_changes_evictions() {
        let vanilla = run_seed(23, true, true, BugKnobs::default());
        assert!(vanilla.violations.is_empty(), "{:?}", vanilla.violations);
        let buggy = run_seed(
            23,
            true,
            true,
            BugKnobs {
                no_detector_reset: true,
                ..BugKnobs::default()
            },
        );
        assert_ne!(
            buggy.evicted_live, vanilla.evicted_live,
            "seed 23 must evict a different live set without detector reset"
        );
    }

    #[test]
    #[ignore = "post-mortem scratch"]
    fn debug_seed() {
        use catocs::vsync::NodeEvent;
        let seed: u64 = std::env::var("CHAOS_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(197);
        let delta = std::env::var("CHAOS_DELTA").is_ok();
        let r = run_seed(seed, true, delta, BugKnobs::default());
        println!("{}", r.plan);
        for log in &r.logs {
            let installs: Vec<String> = log
                .events
                .iter()
                .filter_map(|ev| match ev {
                    NodeEvent::Install { id, members, .. } => {
                        Some(format!("v{id}{members:?}"))
                    }
                    _ => None,
                })
                .collect();
            println!(
                "p{} alive={} frozen={} clock={:?} installs: {}",
                log.who,
                log.alive_at_end,
                log.frozen,
                (0..log.final_clock.len())
                    .map(|i| log.final_clock.get(i))
                    .collect::<Vec<_>>(),
                installs.join(" -> ")
            );
        }
        for v in &r.violations {
            println!("VIOLATION: {v}");
        }
    }

    #[test]
    #[ignore = "seed hunting scratch"]
    fn hunt_knob_seeds() {
        for seed in 0..600u64 {
            let clean = run_seed(seed, true, true, BugKnobs::default());
            if !clean.violations.is_empty() {
                println!("seed {seed}: VANILLA VIOLATES {:?}", clean.violations);
                continue;
            }
            let retry = run_seed(
                seed,
                true,
                true,
                BugKnobs {
                    no_flush_retry: true,
                    ..BugKnobs::default()
                },
            );
            if !retry.violations.is_empty() {
                println!(
                    "seed {seed}: no_flush_retry -> {:?}",
                    retry.violations.iter().take(2).collect::<Vec<_>>()
                );
            }
            let chain = run_seed(
                seed,
                true,
                true,
                BugKnobs {
                    no_chain_reset: true,
                    ..BugKnobs::default()
                },
            );
            if !chain.violations.is_empty() {
                println!(
                    "seed {seed}: no_chain_reset -> {:?}",
                    chain.violations.iter().take(2).collect::<Vec<_>>()
                );
            }
            let det = run_seed(
                seed,
                true,
                true,
                BugKnobs {
                    no_detector_reset: true,
                    ..BugKnobs::default()
                },
            );
            if !det.violations.is_empty() || det.evicted_live != clean.evicted_live {
                println!(
                    "seed {seed}: no_detector_reset -> evicted {:?} (vanilla {:?}) viol {:?}",
                    det.evicted_live,
                    clean.evicted_live,
                    det.violations.iter().take(2).collect::<Vec<_>>()
                );
            }
        }
    }
}
