//! Chaos — deterministic fault-injection campaigns over the
//! virtual-synchrony stack (§5).
//!
//! Each seed derives a fault schedule (partitions, heals, crashes,
//! recoveries, loss/duplication/delay episodes) and a full simulation
//! run; afterwards every process's event log is replayed through the
//! `catocs::vsync` invariant checker. The sweep crosses the two holdback
//! implementations with the two timestamp encodings, so a bug in either
//! optimisation shows up as a violation in exactly those columns.
//!
//! `experiments chaos` runs the sweep; `experiments chaos --seed N`
//! replays one schedule verbatim and prints the plan, the per-process
//! outcome and any violations (exit code 1 if there are any).

use crate::table::Table;
use catocs::group::{CausalDiscipline, GroupConfig};
use catocs::vsync::{
    run_campaign, run_campaign_with, BugKnobs, CampaignConfig, CampaignResult, Violation,
};
use simnet::obs::{ProbeHandle, SpanId};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Group sizes the sweep cycles through, by seed.
const SIZES: [usize; 3] = [3, 5, 7];

/// Flight-recorder ring capacity used for post-mortem re-runs: deep
/// enough to keep the tail of every process's message lifecycle.
const RECORDER_CAP: usize = 512;

/// The group size a given seed runs with (shared with `explain`).
pub fn size_for_seed(seed: u64) -> usize {
    SIZES[(seed % SIZES.len() as u64) as usize]
}

/// Parses an injected-bug knob name (`--bug` on the CLI).
pub fn parse_bug(name: &str) -> Option<BugKnobs> {
    let off = BugKnobs::default();
    match name {
        "no-detector-reset" => Some(BugKnobs {
            no_detector_reset: true,
            ..off
        }),
        // "wedged_flush" is the operator-facing alias: the symptom (a
        // flush barrier that never completes) rather than the mechanism.
        "no-flush-retry" | "wedged-flush" | "wedged_flush" => Some(BugKnobs {
            no_flush_retry: true,
            ..off
        }),
        "no-chain-reset" => Some(BugKnobs {
            no_chain_reset: true,
            ..off
        }),
        _ => None,
    }
}

/// Names of the knobs set in `knobs`, for dump headers.
fn knob_names(knobs: &BugKnobs) -> Vec<&'static str> {
    let mut v = Vec::new();
    if knobs.no_detector_reset {
        v.push("no-detector-reset");
    }
    if knobs.no_flush_retry {
        v.push("no-flush-retry");
    }
    if knobs.no_chain_reset {
        v.push("no-chain-reset");
    }
    v
}

/// Where incident dumps land: `CHAOS_INCIDENT_DIR` overrides the
/// default `target/chaos-incidents`.
pub fn incident_dir() -> PathBuf {
    std::env::var_os("CHAOS_INCIDENT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/chaos-incidents"))
}

/// Re-runs a violating cell with the flight recorder attached and writes
/// the post-mortem: `seed-N-<cell>.txt` (fault plan, violations,
/// per-process outcome, holdback wait-graphs, event diagram of the
/// recorded tail) plus `seed-N-<cell>.jsonl` (the raw span/phase events,
/// one JSON object per line). Returns the paths written.
pub fn dump_incident_to(
    dir: &Path,
    seed: u64,
    indexed: bool,
    delta: bool,
    knobs: BugKnobs,
) -> std::io::Result<Vec<PathBuf>> {
    let n = size_for_seed(seed);
    let cfg = campaign_config(n, indexed, delta, knobs);
    let (probe, rec) = ProbeHandle::recorder(RECORDER_CAP);
    let r = run_campaign_with(seed, &cfg, probe);
    let rec = rec.borrow();

    let hold = if indexed { "indexed" } else { "scan" };
    let ts = if delta { "delta" } else { "full" };
    let mut text = String::new();
    let _ = writeln!(
        text,
        "CHAOS INCIDENT — seed {seed}, n={n}, {hold} holdback, {ts} timestamps"
    );
    let injected = knob_names(&knobs);
    if !injected.is_empty() {
        let _ = writeln!(text, "injected bug knobs: {}", injected.join(", "));
    }
    let _ = writeln!(text, "\n{}", r.plan);
    let _ = writeln!(text, "violations ({}):", r.violations.len());
    for v in &r.violations {
        let _ = writeln!(text, "  {v}");
    }
    let _ = writeln!(text, "\nprocess outcomes:");
    for log in &r.logs {
        let _ = writeln!(
            text,
            "  P{}: alive={} frozen={} clock={:?}",
            log.who, log.alive_at_end, log.frozen, log.final_clock
        );
    }
    if !r.blocked_reports.is_empty() {
        let _ = writeln!(text, "\nblocked messages at the horizon:");
        for (who, reports) in &r.blocked_reports {
            let frozen = r.logs.iter().any(|l| l.who == *who && l.frozen);
            crate::experiments::explain::render_reports(&mut text, *who, reports, frozen, None);
        }
    }
    if !r.stalls.stalls.is_empty() {
        let _ = writeln!(
            text,
            "\nranked stalls at the horizon (wait-graph analytics, most severe first):"
        );
        for (i, s) in r.stalls.stalls.iter().enumerate() {
            let _ = writeln!(text, "  #{} {}", i + 1, s.summary());
            let _ = writeln!(text, "     path: {}", s.render_path());
        }
    }
    // Per-message latency provenance for the messages implicated in the
    // incident: the ledger entry of every violating message, plus (for
    // process-level violations like a frozen survivor) the worst open
    // entry at that process. Capped like the blocked reports above.
    const MAX_LEDGER_LINES: usize = 8;
    let mut implicated: Vec<&catocs::ledger::LedgerEntry> = Vec::new();
    for v in &r.violations {
        match v {
            Violation::DuplicateDelivery { who, id }
            | Violation::FifoGap { who, id, .. }
            | Violation::CausalOrder { who, id, .. }
            | Violation::BeyondCutDelivery { who, id, .. }
            | Violation::UnknownMessage { who, id } => {
                let span = SpanId {
                    origin: id.sender,
                    seq: id.seq,
                };
                if let Some(e) = r.latency.entry(*who, span) {
                    implicated.push(e);
                }
            }
            Violation::FrozenAtEnd { who } | Violation::ParkedAtEnd { who, .. } => {
                // No single message named: show the process's worst wedge.
                if let Some(e) = r
                    .latency
                    .entries
                    .iter()
                    .filter(|e| e.receiver == *who && e.open)
                    .max_by(|a, b| a.latency().cmp(&b.latency()).then(b.span.cmp(&a.span)))
                {
                    implicated.push(e);
                }
            }
            _ => {}
        }
    }
    implicated.sort_by_key(|e| (e.receiver, e.span));
    implicated.dedup_by_key(|e| (e.receiver, e.span));
    if !implicated.is_empty() {
        let _ = writeln!(
            text,
            "\nlatency ledger for implicated messages (phase-attributed send->deliver time):"
        );
        for e in implicated.iter().take(MAX_LEDGER_LINES) {
            crate::experiments::latency::render_entry(&mut text, e);
        }
        if implicated.len() > MAX_LEDGER_LINES {
            let _ = writeln!(
                text,
                "  ... and {} more implicated messages",
                implicated.len() - MAX_LEDGER_LINES
            );
        }
    }

    let names: Vec<String> = (0..n).map(|p| format!("P{p}")).collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let _ = writeln!(
        text,
        "\nrecorded event tail ({} events/process ring):\n{}",
        RECORDER_CAP,
        rec.render_ascii(&refs)
    );

    std::fs::create_dir_all(dir)?;
    let stem = format!("seed-{seed}-{hold}-{ts}");
    let txt_path = dir.join(format!("{stem}.txt"));
    let jsonl_path = dir.join(format!("{stem}.jsonl"));
    std::fs::write(&txt_path, text)?;
    std::fs::write(&jsonl_path, rec.to_json_lines())?;
    Ok(vec![txt_path, jsonl_path])
}

/// Dumps to the default incident directory, reporting (but swallowing)
/// IO errors so a full-disk CI box still gets the violation exit code.
fn dump_incident(seed: u64, indexed: bool, delta: bool, knobs: BugKnobs) {
    match dump_incident_to(&incident_dir(), seed, indexed, delta, knobs) {
        Ok(paths) => {
            for p in paths {
                eprintln!("chaos: post-mortem dump written to {}", p.display());
            }
        }
        Err(e) => eprintln!("chaos: could not write post-mortem dump: {e}"),
    }
}

/// The campaign configuration for one cell of the sweep (cbcast).
pub fn campaign_config(n: usize, indexed: bool, delta: bool, knobs: BugKnobs) -> CampaignConfig {
    campaign_config_d(n, indexed, delta, knobs, CausalDiscipline::Cbcast)
}

/// The campaign configuration for one cell of the sweep, in the given
/// causal discipline. For pccast the `delta` knob is inert (its data
/// messages carry no vectors to delta-encode) but is kept in the sweep so
/// both disciplines cross the same cells.
pub fn campaign_config_d(
    n: usize,
    indexed: bool,
    delta: bool,
    knobs: BugKnobs,
    discipline: CausalDiscipline,
) -> CampaignConfig {
    CampaignConfig {
        n,
        group: GroupConfig {
            indexed_holdback: indexed,
            delta_timestamps: delta,
            discipline,
            ..GroupConfig::default()
        },
        knobs,
        ..CampaignConfig::default()
    }
}

/// Runs one seeded campaign in the given sweep cell (cbcast).
pub fn run_seed(seed: u64, indexed: bool, delta: bool, knobs: BugKnobs) -> CampaignResult {
    run_seed_d(seed, indexed, delta, knobs, CausalDiscipline::Cbcast)
}

/// Runs one seeded campaign in the given sweep cell and discipline. The
/// fault schedule depends only on the seed, so cbcast and pccast face
/// identical partitions/crashes/degrade episodes — what differs is the
/// delivery machinery under test.
pub fn run_seed_d(
    seed: u64,
    indexed: bool,
    delta: bool,
    knobs: BugKnobs,
    discipline: CausalDiscipline,
) -> CampaignResult {
    let n = SIZES[(seed % SIZES.len() as u64) as usize];
    run_campaign(
        seed,
        &campaign_config_d(n, indexed, delta, knobs, discipline),
    )
}

/// Runs `seeds` campaigns in each of the four sweep cells. Returns the
/// table and the total violation count (the CLI turns nonzero into exit
/// code 1, so CI fails on any invariant breach).
pub fn run(seeds: u64) -> (Table, u64) {
    run_discipline(seeds, CausalDiscipline::Cbcast)
}

/// [`run`], in the given causal discipline (`experiments chaos
/// --discipline pccast` on the CLI).
pub fn run_discipline(seeds: u64, discipline: CausalDiscipline) -> (Table, u64) {
    let title = format!(
        "CHAOS — §5: seeded fault campaigns with virtual-synchrony checking ({})",
        discipline.name()
    );
    let mut t = Table::new(
        &title,
        &[
            "holdback",
            "timestamps",
            "runs",
            "views",
            "evicted live",
            "crashed at end",
            "delivered",
            "blocked",
            "hold p50 ms",
            "hold p99 ms",
            "wait p50 ms",
            "wait p99 ms",
            "violations",
            "replay stable",
        ],
    );
    let mut total_violations = 0u64;
    let mut dumped = false;
    for (indexed, delta) in [(false, false), (false, true), (true, false), (true, true)] {
        let mut views = 0u64;
        let mut evicted = 0u64;
        let mut crashed = 0u64;
        let mut delivered = 0u64;
        let mut blocked = 0u64;
        let mut violations = 0u64;
        let mut stable = true;
        let mut hold_hist = simnet::metrics::Histogram::new();
        let mut wait_hist = simnet::metrics::Histogram::new();
        for seed in 0..seeds {
            let r = run_seed_d(seed, indexed, delta, BugKnobs::default(), discipline);
            views += r.views_installed;
            evicted += r.evicted_live.len() as u64;
            crashed += r.plan.crashed_at_horizon().len() as u64;
            delivered += r.delivered_total;
            blocked += r.blocked as u64;
            hold_hist.merge(&r.hold_hist);
            wait_hist.merge(&r.wait_hist);
            // A clean campaign must end free of persistent wait cycles:
            // wedging behind a partition is legitimate, deadlock is not.
            if r.violations.is_empty() && r.stalls.persistent_cycles() > 0 {
                violations += 1;
                eprintln!(
                    "chaos: seed {seed} ({}, {}) clean run ended with a persistent wait cycle:",
                    if indexed { "indexed" } else { "scan" },
                    if delta { "delta" } else { "full" },
                );
                for s in r.stalls.persistent().filter(|s| s.is_cycle) {
                    eprintln!("  {}", s.summary());
                }
            }
            if !r.violations.is_empty() {
                violations += r.violations.len() as u64;
                eprintln!(
                    "chaos: seed {seed} ({}, {}) violated:",
                    if indexed { "indexed" } else { "scan" },
                    if delta { "delta" } else { "full" },
                );
                for v in &r.violations {
                    eprintln!("  {v}");
                }
                // First violation of the sweep: re-run with the flight
                // recorder attached and dump the post-mortem.
                if !dumped {
                    dumped = true;
                    dump_incident(seed, indexed, delta, BugKnobs::default());
                }
            }
            // Replay determinism: the first seed of every cell runs twice
            // and must produce bit-identical logs.
            if seed == 0 {
                let again = run_seed_d(seed, indexed, delta, BugKnobs::default(), discipline);
                stable &= again.digest == r.digest;
            }
        }
        t.row(vec![
            if indexed { "indexed" } else { "scan" }.into(),
            if delta { "delta" } else { "full" }.into(),
            seeds.into(),
            views.into(),
            evicted.into(),
            crashed.into(),
            delivered.into(),
            blocked.into(),
            hold_hist.quantile(0.50).as_millis_f64().into(),
            hold_hist.quantile(0.99).as_millis_f64().into(),
            wait_hist.quantile(0.50).as_millis_f64().into(),
            wait_hist.quantile(0.99).as_millis_f64().into(),
            violations.into(),
            if stable { "yes" } else { "NO" }.into(),
        ]);
        total_violations += violations;
    }
    t.note("each run: seed-derived partitions/heals/crashes/recoveries/degrade episodes,");
    t.note("then every process log replayed through the vsync invariant checker;");
    t.note("hold p50/p99: holdback wait of held deliveries, merged across the cell;");
    t.note("wait p50/p99: blocked-edge ages sampled by the wait-graph every 50 ms;");
    t.note("`experiments chaos --seed N` replays one schedule and prints the plan.");
    (t, total_violations)
}

/// Replays one seed across all four sweep cells, printing the schedule
/// and any violations; `knobs` lets the CLI (`chaos --seed N --bug K`)
/// re-inject a known bug. The first violating cell gets a flight-recorder
/// post-mortem dump. Returns the total violation count (the CLI turns
/// nonzero into exit code 1).
pub fn replay(seed: u64, knobs: BugKnobs, discipline: CausalDiscipline) -> usize {
    let n = size_for_seed(seed);
    println!(
        "{}",
        run_campaign(seed, &campaign_config_d(n, true, false, knobs, discipline)).plan
    );
    let injected = knob_names(&knobs);
    if !injected.is_empty() {
        println!("injected bug knobs: {}", injected.join(", "));
    }
    let mut total = 0;
    let mut dumped = false;
    for (indexed, delta) in [(false, false), (false, true), (true, false), (true, true)] {
        let r = run_seed_d(seed, indexed, delta, knobs, discipline);
        println!(
            "[{} holdback, {} timestamps] views={} survivors={:?} evicted_live={:?} \
             delivered={} digest={:016x}",
            if indexed { "indexed" } else { "scan" },
            if delta { "delta" } else { "full" },
            r.views_installed,
            r.survivors,
            r.evicted_live,
            r.delivered_total,
            r.digest,
        );
        if r.blocked {
            println!("  primary-partition block: survivors short of a majority of the final view");
        }
        if let Some(top) = r.stalls.stalls.first() {
            println!("  top stall: {}", top.summary());
            println!("    path: {}", top.render_path());
        }
        if r.violations.is_empty() {
            println!("  invariants: OK");
        } else {
            for v in &r.violations {
                println!("  VIOLATION: {v}");
            }
            total += r.violations.len();
            if !dumped {
                dumped = true;
                dump_incident(seed, indexed, delta, knobs);
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_is_clean() {
        // A small cut of the full 200-run campaign, kept fast for CI.
        for (indexed, delta) in [(true, false), (true, true)] {
            for seed in 0..6 {
                let r = run_seed(seed, indexed, delta, BugKnobs::default());
                assert!(
                    r.violations.is_empty(),
                    "seed {seed} indexed={indexed} delta={delta}: {:?}\n{}",
                    r.violations,
                    r.plan
                );
            }
        }
    }

    /// The constant-metadata discipline passes the same independent
    /// invariant checker under the same fault schedules — the checker
    /// only sees event logs, so nothing about it is cbcast-shaped.
    #[test]
    fn pccast_smoke_sweep_is_clean() {
        for seed in 0..6 {
            let r = run_seed_d(
                seed,
                true,
                false,
                BugKnobs::default(),
                CausalDiscipline::Pccast,
            );
            assert!(
                r.violations.is_empty(),
                "pccast seed {seed}: {:?}\n{}",
                r.violations,
                r.plan
            );
        }
    }

    /// Same-seed pccast reruns are bit-identical (replay determinism is
    /// discipline-independent).
    #[test]
    fn pccast_replay_is_deterministic() {
        let a = run_seed_d(
            1,
            true,
            false,
            BugKnobs::default(),
            CausalDiscipline::Pccast,
        );
        let b = run_seed_d(
            1,
            true,
            false,
            BugKnobs::default(),
            CausalDiscipline::Pccast,
        );
        assert_eq!(a.digest, b.digest);
    }

    /// S2 regression: without the flush retransmit/backoff path, a
    /// single lost Flush or FlushOk wedges the view change and the
    /// survivors never reconverge.
    #[test]
    fn flush_retry_bug_is_caught() {
        let vanilla = run_seed(2, true, true, BugKnobs::default());
        assert!(vanilla.violations.is_empty(), "{:?}", vanilla.violations);
        let buggy = run_seed(
            2,
            true,
            true,
            BugKnobs {
                no_flush_retry: true,
                ..BugKnobs::default()
            },
        );
        assert!(
            !buggy.violations.is_empty(),
            "seed 2 must violate without flush retries"
        );
    }

    /// S3 regression: without resetting delta-timestamp decode chains at
    /// view install, a message referencing pre-view state parks forever.
    #[test]
    fn chain_reset_bug_is_caught() {
        let vanilla = run_seed(137, true, true, BugKnobs::default());
        assert!(vanilla.violations.is_empty(), "{:?}", vanilla.violations);
        let buggy = run_seed(
            137,
            true,
            true,
            BugKnobs {
                no_chain_reset: true,
                ..BugKnobs::default()
            },
        );
        assert!(
            !buggy.violations.is_empty(),
            "seed 137 must violate without chain reset at install"
        );
    }

    /// S1 regression: without resetting the failure detector on recover,
    /// cold-start staleness misattributes liveness and the campaign
    /// evicts a different set of live members than the vanilla run.
    #[test]
    fn detector_reset_bug_changes_evictions() {
        let vanilla = run_seed(23, true, true, BugKnobs::default());
        assert!(vanilla.violations.is_empty(), "{:?}", vanilla.violations);
        let buggy = run_seed(
            23,
            true,
            true,
            BugKnobs {
                no_detector_reset: true,
                ..BugKnobs::default()
            },
        );
        assert_ne!(
            buggy.evicted_live, vanilla.evicted_live,
            "seed 23 must evict a different live set without detector reset"
        );
    }

    /// The S2 injected bug must auto-produce a usable flight-recorder
    /// post-mortem: violations, per-process outcomes and the recorded
    /// span tail, plus machine-readable JSON lines.
    #[test]
    fn injected_bug_replay_produces_incident_dump() {
        let dir = std::env::temp_dir().join("catocs-chaos-incident-test");
        let _ = std::fs::remove_dir_all(&dir);
        let knobs = BugKnobs {
            no_flush_retry: true,
            ..BugKnobs::default()
        };
        let paths = dump_incident_to(&dir, 2, true, true, knobs).expect("dump written");
        assert_eq!(paths.len(), 2);
        let txt = std::fs::read_to_string(&paths[0]).expect("txt dump");
        assert!(txt.contains("CHAOS INCIDENT — seed 2"), "{txt}");
        assert!(txt.contains("injected bug knobs: no-flush-retry"), "{txt}");
        // The dump names violations and per-process outcomes.
        assert!(!txt.contains("violations (0)"), "{txt}");
        assert!(txt.contains("P0:"), "{txt}");
        // The wedged flush shows up as a ranked stall whose cycle path
        // names the flush phase of the suspected coordinator.
        assert!(txt.contains("ranked stalls at the horizon"), "{txt}");
        assert!(txt.contains("flush@P"), "{txt}");
        // The latency ledger attributes the implicated message's wedged
        // time, phase by phase, with the flush barrier on the critical
        // path.
        assert!(
            txt.contains("latency ledger for implicated messages"),
            "{txt}"
        );
        assert!(txt.contains("OPEN at horizon"), "{txt}");
        assert!(txt.contains("[  flush]"), "{txt}");
        assert!(txt.contains("critical path: flush"), "{txt}");
        // The machine-readable dump parses line by line.
        let jsonl = std::fs::read_to_string(&paths[1]).expect("jsonl dump");
        assert!(!jsonl.trim().is_empty());
        for line in jsonl.lines() {
            simnet::json::JsonValue::parse(line).expect("valid JSON line");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bug_knob_names_parse() {
        assert!(parse_bug("no-detector-reset").unwrap().no_detector_reset);
        assert!(parse_bug("no-flush-retry").unwrap().no_flush_retry);
        // The symptom-named alias used by `experiments latency`.
        assert!(parse_bug("wedged-flush").unwrap().no_flush_retry);
        assert!(parse_bug("wedged_flush").unwrap().no_flush_retry);
        assert!(parse_bug("no-chain-reset").unwrap().no_chain_reset);
        assert!(parse_bug("frobnicate").is_none());
    }

    #[test]
    #[ignore = "post-mortem scratch"]
    fn debug_seed() {
        use catocs::vsync::NodeEvent;
        let seed: u64 = std::env::var("CHAOS_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(197);
        let delta = std::env::var("CHAOS_DELTA").is_ok();
        let r = run_seed(seed, true, delta, BugKnobs::default());
        println!("{}", r.plan);
        for log in &r.logs {
            let installs: Vec<String> = log
                .events
                .iter()
                .filter_map(|ev| match ev {
                    NodeEvent::Install { id, members, .. } => Some(format!("v{id}{members:?}")),
                    _ => None,
                })
                .collect();
            println!(
                "p{} alive={} frozen={} clock={:?} installs: {}",
                log.who,
                log.alive_at_end,
                log.frozen,
                (0..log.final_clock.len())
                    .map(|i| log.final_clock.get(i))
                    .collect::<Vec<_>>(),
                installs.join(" -> ")
            );
        }
        for v in &r.violations {
            println!("VIOLATION: {v}");
        }
    }

    #[test]
    #[ignore = "seed hunting scratch"]
    fn hunt_knob_seeds() {
        for seed in 0..600u64 {
            let clean = run_seed(seed, true, true, BugKnobs::default());
            if !clean.violations.is_empty() {
                println!("seed {seed}: VANILLA VIOLATES {:?}", clean.violations);
                continue;
            }
            let retry = run_seed(
                seed,
                true,
                true,
                BugKnobs {
                    no_flush_retry: true,
                    ..BugKnobs::default()
                },
            );
            if !retry.violations.is_empty() {
                println!(
                    "seed {seed}: no_flush_retry -> {:?}",
                    retry.violations.iter().take(2).collect::<Vec<_>>()
                );
            }
            let chain = run_seed(
                seed,
                true,
                true,
                BugKnobs {
                    no_chain_reset: true,
                    ..BugKnobs::default()
                },
            );
            if !chain.violations.is_empty() {
                println!(
                    "seed {seed}: no_chain_reset -> {:?}",
                    chain.violations.iter().take(2).collect::<Vec<_>>()
                );
            }
            let det = run_seed(
                seed,
                true,
                true,
                BugKnobs {
                    no_detector_reset: true,
                    ..BugKnobs::default()
                },
            );
            if !det.violations.is_empty() || det.evicted_live != clean.evicted_live {
                println!(
                    "seed {seed}: no_detector_reset -> evicted {:?} (vanilla {:?}) viol {:?}",
                    det.evicted_live,
                    clean.evicted_live,
                    det.violations.iter().take(2).collect::<Vec<_>>()
                );
            }
        }
    }
}
