//! `experiments latency` — the latency-provenance report.
//!
//! For every message a run delivered, the ledger (see `catocs::ledger`)
//! decomposes send→deliver virtual time into attributed phases: wire
//! transit, NACK repair, causal/FIFO holdback, pccast link-reorder wait,
//! abcast order-watermark wait, token hold/rotation wait, and the
//! view-change flush barrier. This module renders the aggregate — a
//! per-phase table plus the headline **ordering tax** (delivered latency
//! minus the FIFO-only floor for the same arrivals) — and, with `--msg`,
//! a per-receiver drill-down of one message's exact phase tiling.
//!
//! The causal disciplines (`cbcast`, `pccast`) replay a chaos campaign
//! seed, so `--bug` knobs apply and wedged flushes show up as open
//! entries charged to the flush barrier. The remaining disciplines
//! (`abcast`, `token`, `fifo`) run a deterministic group workload on the
//! harness — no fault plan, so `--bug` is inert there and the report says
//! so. `--compare` runs cbcast, pccast and abcast side by side at N=64
//! and tabulates what each ordering guarantee costs over FIFO.

use crate::experiments::chaos;
use crate::table::Table;
use catocs::endpoint::Discipline;
use catocs::group::{CausalDiscipline, GroupConfig, MsgId};
use catocs::harness::{spawn_group_with_probe, GroupApp, GroupCtx};
use catocs::ledger::{LatencySummary, LedgerEntry, LedgerProbe, PhaseId};
use catocs::vsync::BugKnobs;
use catocs::wire::{Delivery, Wire};
use simnet::net::NetConfig;
use simnet::obs::{Probe, ProbeHandle, SpanId};
use simnet::sim::SimBuilder;
use simnet::time::{SimDuration, SimTime};
use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;

/// Caps that keep a large ledger readable, mirroring the explainer's:
/// a run delivers thousands of messages; the report summarizes rather
/// than enumerates.
const MAX_OPEN_SHOWN: usize = 8;
const MAX_RECEIVERS_PER_MSG: usize = 8;
const MAX_SEGMENTS_PER_ENTRY: usize = 10;

/// Horizon of the harness-group workloads (abcast/token/fifo).
pub(crate) const GROUP_HORIZON: SimTime = SimTime::from_secs(5);
/// Messages each member multicasts in those workloads.
const GROUP_MSGS: u32 = 20;
/// Loss rate of those workloads (enough to exercise repair phases).
pub(crate) const GROUP_DROP: f64 = 0.02;

/// The five disciplines the report covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LatencyDiscipline {
    /// Vector-timestamp causal broadcast (chaos campaign replay).
    Cbcast,
    /// Constant-metadata causal broadcast (chaos campaign replay).
    Pccast,
    /// Fixed-sequencer total order (harness group).
    Abcast,
    /// Token-ring total order (harness group).
    Token,
    /// FIFO-only baseline (harness group).
    Fifo,
}

impl LatencyDiscipline {
    /// Parses the CLI `--discipline` value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "cbcast" => Some(LatencyDiscipline::Cbcast),
            "pccast" => Some(LatencyDiscipline::Pccast),
            "abcast" => Some(LatencyDiscipline::Abcast),
            "token" => Some(LatencyDiscipline::Token),
            "fifo" => Some(LatencyDiscipline::Fifo),
            _ => None,
        }
    }

    /// Stable lowercase name, used in headers and BENCH metric names.
    pub fn name(self) -> &'static str {
        match self {
            LatencyDiscipline::Cbcast => "cbcast",
            LatencyDiscipline::Pccast => "pccast",
            LatencyDiscipline::Abcast => "abcast",
            LatencyDiscipline::Token => "token",
            LatencyDiscipline::Fifo => "fifo",
        }
    }

    /// Whether this discipline replays a chaos campaign (where `--bug`
    /// fault knobs apply) rather than a plain harness group.
    pub fn is_chaos(self) -> bool {
        matches!(self, LatencyDiscipline::Cbcast | LatencyDiscipline::Pccast)
    }

    /// The phase that is this discipline's ordering signature — the one
    /// its guarantee uniquely charges latency to.
    pub fn signature_phase(self) -> PhaseId {
        match self {
            LatencyDiscipline::Cbcast => PhaseId::Causal,
            LatencyDiscipline::Pccast => PhaseId::Reorder,
            LatencyDiscipline::Abcast => PhaseId::Order,
            LatencyDiscipline::Token => PhaseId::Token,
            LatencyDiscipline::Fifo => PhaseId::Fifo,
        }
    }
}

/// Each member multicasts `remaining` messages in bursts of
/// [`BURST`] per app tick. Bursts matter: consecutive sequence numbers
/// land closer together than the NACK timeout, so a dropped message
/// actually holds its successors back (a FIFO gap / ordering wait)
/// instead of being repaired before the next send.
pub(crate) struct Chatter {
    remaining: u32,
}

impl Chatter {
    /// A chatter with the standard workload size.
    pub(crate) fn standard() -> Self {
        Chatter {
            remaining: GROUP_MSGS,
        }
    }
}

/// Messages per tick.
const BURST: u32 = 4;

impl GroupApp<u64> for Chatter {
    fn on_tick(&mut self, ctx: &mut GroupCtx<'_>) -> Vec<u64> {
        let k = self.remaining.min(BURST);
        self.remaining -= k;
        (0..k).map(|_| ctx.me as u64).collect()
    }
    fn on_deliver(&mut self, _ctx: &mut GroupCtx<'_>, _d: &Delivery<u64>) -> Vec<u64> {
        Vec::new()
    }
}

/// Runs a deterministic harness-group workload under `discipline` with a
/// ledger probe cloned onto every member, and finalizes the ledger at
/// the horizon. This is how the non-chaos disciplines (abcast, token,
/// fifo) get their provenance, and how BENCH collects its `latency.*`
/// rows for them.
pub fn run_group_ledger(seed: u64, n: usize, discipline: Discipline) -> LatencySummary {
    let mut sim = SimBuilder::new(seed)
        .net(NetConfig::lossy_lan(GROUP_DROP))
        .build::<Wire<u64>>();
    let ledger = Rc::new(RefCell::new(LedgerProbe::new()));
    let probe = ProbeHandle::new(Rc::clone(&ledger) as Rc<RefCell<dyn Probe>>);
    spawn_group_with_probe(
        &mut sim,
        n,
        discipline,
        GroupConfig::default(),
        Some(SimDuration::from_millis(20)),
        probe,
        |_| Chatter::standard(),
    );
    sim.run_until(GROUP_HORIZON);
    let summary = ledger.borrow().finalize(GROUP_HORIZON);
    summary
}

/// The ledger for one seed in one discipline: chaos replay for the
/// causal disciplines, harness group for the rest.
pub fn summary_for(seed: u64, knobs: BugKnobs, d: LatencyDiscipline) -> LatencySummary {
    match d {
        LatencyDiscipline::Cbcast => {
            chaos::run_seed_d(seed, true, true, knobs, CausalDiscipline::Cbcast).latency
        }
        LatencyDiscipline::Pccast => {
            chaos::run_seed_d(seed, true, true, knobs, CausalDiscipline::Pccast).latency
        }
        LatencyDiscipline::Abcast => run_group_ledger(
            seed,
            chaos::size_for_seed(seed),
            Discipline::Total { sequencer: 0 },
        ),
        LatencyDiscipline::Token => {
            run_group_ledger(seed, chaos::size_for_seed(seed), Discipline::TotalToken)
        }
        LatencyDiscipline::Fifo => {
            run_group_ledger(seed, chaos::size_for_seed(seed), Discipline::Fifo)
        }
    }
}

fn ms(d: SimDuration) -> f64 {
    d.as_millis_f64()
}

/// The share of `e`'s latency spent in `phase`, in `[0, 1]`.
fn phase_share(e: &LedgerEntry, phase: PhaseId) -> f64 {
    let spent = e
        .phase_totals()
        .get(&phase)
        .copied()
        .unwrap_or(SimDuration::ZERO);
    spent.as_micros() as f64 / e.latency().as_micros().max(1) as f64
}

/// Renders one ledger entry's full phase tiling — the drill-down line
/// format shared by `--msg` and the chaos incident dump.
pub(crate) fn render_entry(out: &mut String, e: &LedgerEntry) {
    let state = if e.open {
        "OPEN at horizon"
    } else {
        "delivered"
    };
    let _ = writeln!(
        out,
        "  P{} {} {}: sent {}us, end {}us, latency {} (tax {})",
        e.receiver,
        state,
        e.span,
        e.send_at.as_micros(),
        e.end.as_micros(),
        e.latency(),
        e.tax,
    );
    for s in e.segments.iter().take(MAX_SEGMENTS_PER_ENTRY) {
        let blocker = match s.blocker {
            Some(b) => format!(" on {b}"),
            None => String::new(),
        };
        let note = if s.note.is_empty() {
            String::new()
        } else {
            format!(" — {}", s.note)
        };
        let _ = writeln!(
            out,
            "    [{:>7}] {:>10} ({:5.1}%){}{}",
            s.phase.name(),
            s.dur().to_string(),
            100.0 * s.dur().as_micros() as f64 / e.latency().as_micros().max(1) as f64,
            blocker,
            note,
        );
    }
    if e.segments.len() > MAX_SEGMENTS_PER_ENTRY {
        let _ = writeln!(
            out,
            "    ... and {} more segments",
            e.segments.len() - MAX_SEGMENTS_PER_ENTRY
        );
    }
    if let Some(p) = e.critical_path() {
        let _ = writeln!(
            out,
            "    critical path: {} ({:.1}% of the latency)",
            p,
            100.0 * phase_share(e, p)
        );
    }
}

/// Builds the latency-provenance report for one seed. `msg` drills into
/// a single message across receivers; `knobs` re-injects a bug for the
/// chaos-replay disciplines.
pub fn run(seed: u64, msg: Option<MsgId>, knobs: BugKnobs, d: LatencyDiscipline) -> String {
    let s = summary_for(seed, knobs, d);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "LATENCY — per-message ordering-tax attribution, seed {seed} ({})",
        d.name()
    );
    if !d.is_chaos() {
        let _ = writeln!(
            out,
            "harness group (n={}, no fault plan; --bug knobs apply only to cbcast/pccast)",
            chaos::size_for_seed(seed)
        );
    }
    let delivered = s.entries.iter().filter(|e| !e.open).count();
    let _ = writeln!(
        out,
        "entries: {} delivered, {} open at the horizon",
        delivered, s.open
    );
    let _ = writeln!(
        out,
        "delivered latency: p50 {} p99 {}; ordering tax: mean {:.0}us p99 {}",
        s.latency.quantile(0.50),
        s.latency.quantile(0.99),
        s.tax_mean_us(),
        s.tax.quantile(0.99),
    );

    let mut t = Table::new(
        "where the time went (delivered entries)",
        &[
            "phase",
            "entries",
            "total ms",
            "p50 ms",
            "p99 ms",
            "critical path of",
        ],
    );
    for phase in PhaseId::ALL {
        let Some(h) = s.per_phase.get(&phase) else {
            continue;
        };
        t.row(vec![
            phase.name().into(),
            h.count().into(),
            (h.sum_micros() as f64 / 1_000.0).into(),
            ms(h.quantile(0.50)).into(),
            ms(h.quantile(0.99)).into(),
            s.critical.get(&phase).copied().unwrap_or(0).into(),
        ]);
    }
    t.note("phases tile each message's send->deliver time exactly (no gaps,");
    t.note("no double-counting); the ordering tax is delivered latency minus");
    t.note("the FIFO-only floor for the same arrival order.");
    let _ = writeln!(out, "\n{t}");

    // Open entries are where a wedge shows: report the worst, with the
    // phase holding them.
    let mut open: Vec<&LedgerEntry> = s.entries.iter().filter(|e| e.open).collect();
    open.sort_by(|a, b| {
        b.latency()
            .cmp(&a.latency())
            .then(a.span.cmp(&b.span))
            .then(a.receiver.cmp(&b.receiver))
    });
    if !open.is_empty() {
        let _ = writeln!(out, "undelivered at the horizon (worst first):");
        for e in open.iter().take(MAX_OPEN_SHOWN) {
            let critical = e.critical_path();
            let _ = writeln!(
                out,
                "  P{} {}: open for {}, critical path {} ({:.1}% of its latency)",
                e.receiver,
                e.span,
                e.latency(),
                critical.map(|p| p.name()).unwrap_or("-"),
                100.0 * critical.map(|p| phase_share(e, p)).unwrap_or(0.0),
            );
        }
        if open.len() > MAX_OPEN_SHOWN {
            let _ = writeln!(
                out,
                "  ... and {} more open entries",
                open.len() - MAX_OPEN_SHOWN
            );
        }
        // The wedge itself: the open entry most of whose latency is the
        // flush barrier. When a view change cannot finish (e.g. the
        // injected wedged_flush bug), this is the message that names it.
        let wedged = open.iter().copied().max_by(|a, b| {
            phase_share(a, PhaseId::Flush)
                .total_cmp(&phase_share(b, PhaseId::Flush))
                .then(b.span.cmp(&a.span))
                .then(b.receiver.cmp(&a.receiver))
        });
        if let Some(e) = wedged {
            let share = phase_share(e, PhaseId::Flush);
            if share > 0.0 {
                let _ = writeln!(
                    out,
                    "\nwedged on the flush barrier (largest flush share among open entries):"
                );
                let _ = writeln!(
                    out,
                    "  P{} {}: {:.1}% of its {} latency is the flush barrier",
                    e.receiver,
                    e.span,
                    100.0 * share,
                    e.latency()
                );
                render_entry(&mut out, e);
            }
        }
    }

    if let Some(want) = msg {
        let span = SpanId {
            origin: want.sender,
            seq: want.seq,
        };
        let entries: Vec<&LedgerEntry> = s.for_span(span).collect();
        let _ = writeln!(out, "\ndrill-down m{}.{}:", want.sender, want.seq);
        if entries.is_empty() {
            let _ = writeln!(out, "  no ledger entry — never sent, or delivered nowhere");
        }
        for e in entries.iter().take(MAX_RECEIVERS_PER_MSG) {
            render_entry(&mut out, e);
        }
        if entries.len() > MAX_RECEIVERS_PER_MSG {
            let _ = writeln!(
                out,
                "  ... and {} more receivers",
                entries.len() - MAX_RECEIVERS_PER_MSG
            );
        }
    }
    out
}

/// Group size for the `--compare` sweep — large enough that the ordering
/// disciplines' extra hops separate cleanly from wire transit.
pub const COMPARE_N: usize = 64;

/// `experiments latency --compare`: cbcast vs pccast vs abcast (plus the
/// fifo floor) on the same workload at N=64 — what each ordering
/// guarantee costs per delivery over FIFO. This is the worked table in
/// EXPERIMENTS.md §"Latency provenance".
pub fn compare(seed: u64) -> Table {
    let mut t = Table::new(
        format!("LATENCY — ordering tax by discipline (N={COMPARE_N}, seed {seed})"),
        &[
            "discipline",
            "delivered",
            "e2e p50 ms",
            "e2e p99 ms",
            "tax mean us",
            "tax p99 ms",
            "signature phase",
            "sig p99 ms",
        ],
    );
    for (name, discipline, sig) in [
        ("fifo", Discipline::Fifo, PhaseId::Fifo),
        (
            "cbcast",
            Discipline::Causal,
            LatencyDiscipline::Cbcast.signature_phase(),
        ),
        (
            "abcast",
            Discipline::Total { sequencer: 0 },
            LatencyDiscipline::Abcast.signature_phase(),
        ),
    ] {
        let s = run_group_ledger(seed, COMPARE_N, discipline);
        push_compare_row(&mut t, name, &s, sig);
    }
    // pccast shares Discipline::Causal; select it through the group
    // config instead.
    let s = run_group_ledger_pccast(seed, COMPARE_N);
    push_compare_row(
        &mut t,
        "pccast",
        &s,
        LatencyDiscipline::Pccast.signature_phase(),
    );
    t.note("same seed, workload and loss rate for every row; the tax is the");
    t.note("per-delivery cost of the ordering guarantee over per-sender FIFO.");
    t
}

fn run_group_ledger_pccast(seed: u64, n: usize) -> LatencySummary {
    let mut sim = SimBuilder::new(seed)
        .net(NetConfig::lossy_lan(GROUP_DROP))
        .build::<Wire<u64>>();
    let ledger = Rc::new(RefCell::new(LedgerProbe::new()));
    let probe = ProbeHandle::new(Rc::clone(&ledger) as Rc<RefCell<dyn Probe>>);
    spawn_group_with_probe(
        &mut sim,
        n,
        Discipline::Causal,
        GroupConfig {
            discipline: CausalDiscipline::Pccast,
            ..GroupConfig::default()
        },
        Some(SimDuration::from_millis(20)),
        probe,
        |_| Chatter::standard(),
    );
    sim.run_until(GROUP_HORIZON);
    let summary = ledger.borrow().finalize(GROUP_HORIZON);
    summary
}

fn push_compare_row(t: &mut Table, name: &str, s: &LatencySummary, sig: PhaseId) {
    let delivered = s.entries.iter().filter(|e| !e.open).count() as u64;
    t.row(vec![
        name.into(),
        delivered.into(),
        ms(s.latency.quantile(0.50)).into(),
        ms(s.latency.quantile(0.99)).into(),
        s.tax_mean_us().into(),
        ms(s.tax.quantile(0.99)).into(),
        sig.name().into(),
        s.per_phase
            .get(&sig)
            .map(|h| ms(h.quantile(0.99)))
            .unwrap_or(0.0)
            .into(),
    ]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discipline_names_parse() {
        for n in ["cbcast", "pccast", "abcast", "token", "fifo"] {
            assert_eq!(LatencyDiscipline::parse(n).unwrap().name(), n);
        }
        assert!(LatencyDiscipline::parse("isis").is_none());
    }

    #[test]
    fn output_is_deterministic_across_reruns() {
        let knobs = BugKnobs::default();
        assert_eq!(
            run(0, None, knobs, LatencyDiscipline::Cbcast),
            run(0, None, knobs, LatencyDiscipline::Cbcast)
        );
    }

    /// The acceptance check: seed 2 with the wedged flush injected must
    /// attribute >=90% of the wedged message's latency to the flush
    /// barrier and name it as the critical path.
    #[test]
    fn wedged_flush_attributes_to_the_flush_barrier() {
        let knobs = BugKnobs {
            no_flush_retry: true,
            ..BugKnobs::default()
        };
        let out = run(2, None, knobs, LatencyDiscipline::Cbcast);
        assert!(out.contains("undelivered at the horizon"), "{out}");
        assert!(out.contains("wedged on the flush barrier"), "{out}");
        // The highlighted message carries >=90% flush attribution and
        // names the flush barrier as its critical path.
        let share = out
            .lines()
            .find(|l| l.contains("% of its") && l.contains("is the flush barrier"))
            .and_then(|l| l.split_whitespace().find(|w| w.ends_with('%')))
            .and_then(|w| w.trim_end_matches('%').parse::<f64>().ok())
            .expect("no wedged-share line");
        assert!(share >= 90.0, "flush share {share} < 90:\n{out}");
        let tail = out
            .split("wedged on the flush barrier")
            .nth(1)
            .expect("no wedged section");
        assert!(tail.contains("critical path: flush"), "{out}");
    }

    /// Every discipline's report covers its signature phase: the
    /// guarantee being paid for shows up as an attributed phase row.
    #[test]
    fn signature_phases_appear_per_discipline() {
        for d in [
            LatencyDiscipline::Abcast,
            LatencyDiscipline::Token,
            LatencyDiscipline::Fifo,
        ] {
            let s = summary_for(0, BugKnobs::default(), d);
            assert!(!s.entries.is_empty(), "{}: empty ledger", d.name());
            assert!(
                s.per_phase.contains_key(&PhaseId::Wire),
                "{}: no wire phase",
                d.name()
            );
            assert!(
                s.per_phase.contains_key(&d.signature_phase()),
                "{}: signature phase {} never attributed",
                d.name(),
                d.signature_phase()
            );
        }
    }

    #[test]
    fn drilldown_renders_phase_tiling() {
        let out = run(
            0,
            Some(MsgId { sender: 0, seq: 1 }),
            BugKnobs::default(),
            LatencyDiscipline::Cbcast,
        );
        assert!(out.contains("drill-down m0.1:"), "{out}");
        assert!(out.contains("[   wire]"), "{out}");
        assert!(out.contains("critical path:"), "{out}");
    }

    #[test]
    fn compare_covers_all_four_disciplines() {
        let t = compare(0).to_string();
        for d in ["fifo", "cbcast", "pccast", "abcast"] {
            assert!(t.contains(d), "missing {d} in\n{t}");
        }
    }
}
