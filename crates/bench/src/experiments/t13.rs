//! T13 — §4.6: real-time monitoring staleness.
//!
//! Oven sensors stream samples under increasing loss; the monitor's
//! correctness is the freshness of its stored value ("sufficient
//! consistency"). CATOCS recovers lost old samples (NACK + retransmit)
//! and holds successors meanwhile; the state-level path just takes the
//! newest sample and drops stale ones.

use crate::table::Table;
use apps::oven::{run_oven_catocs, run_oven_state};
use simnet::net::{LatencyModel, NetConfig};
use simnet::time::SimDuration;

fn net(drop: f64) -> NetConfig {
    NetConfig {
        latency: LatencyModel::Uniform {
            min: SimDuration::from_micros(500),
            max: SimDuration::from_millis(6),
        },
        drop_probability: drop,
        ..NetConfig::default()
    }
}

/// Runs the loss sweep.
pub fn run(losses: &[f64]) -> Table {
    let mut t = Table::new(
        "T13 — §4.6 oven monitoring: staleness of the monitor's value (3 sensors, 10ms period)",
        &[
            "loss",
            "catocs mean ms",
            "catocs max ms",
            "state mean ms",
            "state max ms",
            "catocs msgs",
            "state msgs",
        ],
    );
    for &loss in losses {
        let mut c_mean = 0.0;
        let mut c_max = 0.0f64;
        let mut s_mean = 0.0;
        let mut s_max = 0.0f64;
        let mut c_msgs = 0;
        let mut s_msgs = 0;
        const SEEDS: u64 = 3;
        for seed in 0..SEEDS {
            let c = run_oven_catocs(seed, 3, 80, SimDuration::from_millis(10), net(loss));
            let s = run_oven_state(seed, 3, 80, SimDuration::from_millis(10), net(loss));
            c_mean += c.mean_staleness.as_micros() as f64 / 1000.0 / SEEDS as f64;
            s_mean += s.mean_staleness.as_micros() as f64 / 1000.0 / SEEDS as f64;
            c_max = c_max.max(c.max_staleness.as_micros() as f64 / 1000.0);
            s_max = s_max.max(s.max_staleness.as_micros() as f64 / 1000.0);
            c_msgs += c.net_sent;
            s_msgs += s.net_sent;
        }
        t.row(vec![
            format!("{:.0}%", loss * 100.0).into(),
            c_mean.into(),
            c_max.into(),
            s_mean.into(),
            s_max.into(),
            c_msgs.into(),
            s_msgs.into(),
        ]);
    }
    t.note("\"Update messages delayed by CATOCS reduce consistency with the");
    t.note("monitored system and therefore detract from the correctness of");
    t.note("operation\" — and the ordered path also costs far more messages.");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_path_stays_fresh_under_loss() {
        let t = run(&[0.15]);
        let c_mean = t.get_f64(0, 1);
        let s_mean = t.get_f64(0, 3);
        assert!(s_mean <= c_mean, "state {s_mean} !<= catocs {c_mean}");
        let c_msgs = t.get_f64(0, 5);
        let s_msgs = t.get_f64(0, 6);
        assert!(s_msgs < c_msgs);
    }
}
