//! T7+ — measured hot-path scaling: holdback indexing × timestamp wire
//! encoding.
//!
//! T7 computes the *analytic* size of the ordering header. This sweep
//! drives real `CbcastEndpoint`s and measures the two §3.4 overheads the
//! implementation can actually do something about:
//!
//! - **bytes/msg** — ordering bytes on each data message as sent, with
//!   full vs delta-encoded vector timestamps (delta falls back to full
//!   whenever it would not be smaller, and for every retransmission);
//! - **work/event** — holdback-queue structural work per wire event at a
//!   receiver under worst-case arrival order (the entire stream
//!   reversed), comparing the linear-scan queue against the indexed
//!   wait-count/ready-queue one.
//!
//! Only a few members are active senders (`ACTIVE_CAP`), the sparse
//! regime where delta encoding pays off; the observer is a silent member
//! whose NACKs are served from a message store, standing in for the
//! buffer-retransmission machinery of a full group.
//!
//! The sweep also measures the constant-metadata discipline
//! ([`measure_pccast`]): the same sparse workload over pccast's overlay
//! links, where every data copy carries a fixed 33-byte tag regardless
//! of N — the contrast row for the vector-timestamp scaling columns.

use crate::table::Table;
use catocs::cbcast::CbcastEndpoint;
use catocs::group::{CausalDiscipline, GroupConfig};
use catocs::pccast::PccastEndpoint;
use catocs::wire::{Dest, Wire};
use simnet::metrics::{Histogram, Metrics};
use simnet::obs::{perfetto_json, ProbeHandle};
use simnet::time::SimTime;
use std::collections::{HashMap, VecDeque};

/// Senders stay capped so per-message deltas remain sparse as N grows —
/// the regime the paper concedes delta compression targets.
const ACTIVE_CAP: usize = 4;

/// Message-count ceiling: above this, more traffic only repeats the
/// steady state while the N=4096 full-timestamp cells grow quadratically
/// expensive. Sizes up to 1024 are below the cap, so their measurements
/// are unchanged by it.
const TOTAL_CAP: usize = 1024;

/// One measured configuration.
#[derive(Clone, Debug)]
pub struct HotPathPoint {
    /// Group size.
    pub n: usize,
    /// Indexed holdback queue (vs linear scan).
    pub indexed: bool,
    /// Delta-encoded timestamps (vs always full).
    pub delta: bool,
    /// Ordering overhead bytes per original data message, sender side.
    pub bytes_per_msg: f64,
    /// Fraction of data messages that went out delta-encoded.
    pub delta_share: f64,
    /// Observer holdback structural work per wire event.
    pub work_per_event: f64,
    /// Observer holdback high-water mark.
    pub holdback_peak: u64,
    /// Observer peak of parked (undecodable-yet) delta messages.
    pub parked_peak: u64,
    /// Messages multicast.
    pub sent: u64,
    /// Messages the observer delivered (must equal `sent`).
    pub delivered: u64,
    /// Wire events the observer processed (stream + retransmissions).
    pub wire_events: u64,
    /// Virtual time elapsed over the whole run, µs.
    pub virtual_elapsed_us: u64,
    /// Median observer hold time, ms (reversed arrival holds everything).
    pub hold_p50_ms: f64,
    /// 99th-percentile observer hold time, ms.
    pub hold_p99_ms: f64,
}

/// Runs one configuration and returns its measurements. The observer
/// receives the entire stream in reverse arrival order, maximizing
/// holdback (and, under delta, parking) pressure.
pub fn measure(n: usize, indexed: bool, delta: bool) -> HotPathPoint {
    measure_with_probe(n, indexed, delta, ProbeHandle::none())
}

/// Like [`measure`], with an observability probe attached to every
/// endpoint. Probes are read-only: the measurements are identical to an
/// unprobed run.
pub fn measure_with_probe(
    n: usize,
    indexed: bool,
    delta: bool,
    probe: ProbeHandle,
) -> HotPathPoint {
    assert!(n >= 2, "need at least a sender and an observer");
    let active = ACTIVE_CAP.min(n - 1);
    let total = n.clamp(32, TOTAL_CAP);
    let cfg = GroupConfig {
        indexed_holdback: indexed,
        delta_timestamps: delta,
        ..GroupConfig::default()
    };
    let mut metrics = Metrics::new();

    // Active senders multicast round-robin; each message is relayed to
    // the other senders immediately, so every message causally references
    // the whole prefix (one global chain).
    let mut senders: Vec<CbcastEndpoint<u64>> = (0..active)
        .map(|i| {
            let mut e = CbcastEndpoint::new(i, n, cfg.clone());
            e.set_probe(probe.clone());
            e
        })
        .collect();
    let mut wires = Vec::new();
    for step in 0..total {
        let s = step % active;
        let at = SimTime::from_millis(step as u64);
        let (_, out) = senders[s].multicast(at, step as u64);
        let w = out
            .iter()
            .find_map(|(d, w)| match (d, w) {
                (Dest::All, Wire::Data(_)) => Some(w.clone()),
                _ => None,
            })
            .expect("broadcast data message");
        for (r, other) in senders.iter_mut().enumerate() {
            if r != s {
                other.on_wire(at, w.clone());
            }
        }
        metrics.incr("t7p.sent", 1);
        wires.push(w);
    }

    let mut store = HashMap::new();
    for w in &wires {
        if let Wire::Data(d) = w {
            store.insert(d.id, d.clone());
        }
    }

    // The observer sees the stream fully reversed. Its NACKs are served
    // from the store with full-encoded retransmit copies — required for
    // completeness under delta (a full encoding that jumps the decode
    // chain drops the parked deltas behind it).
    let mut observer = CbcastEndpoint::<u64>::new(n - 1, n, cfg);
    observer.set_probe(probe);
    let mut inbox: VecDeque<Wire<u64>> = wires.iter().rev().cloned().collect();
    let mut at = total as u64;
    let mut hold_hist = Histogram::new();
    let mut wire_events = 0u64;
    while let Some(w) = inbox.pop_front() {
        let (dels, outs) = observer.on_wire(SimTime::from_millis(at), w);
        at += 1;
        wire_events += 1;
        for d in &dels {
            if d.was_held() {
                hold_hist.record(d.hold_time());
            }
        }
        metrics.incr("t7p.delivered", dels.len() as u64);
        metrics.gauge_max("t7p.holdback_peak", observer.holdback_len() as f64);
        metrics.gauge_max("t7p.parked_peak", observer.parked_len() as f64);
        for (_, ow) in outs {
            if let Wire::Nack { want, .. } = ow {
                for id in want {
                    let mut copy = store[&id].clone();
                    copy.retransmit = true;
                    copy.make_full();
                    inbox.push_back(Wire::Data(copy));
                }
            }
        }
    }

    let mut overhead = 0u64;
    let mut sent = 0u64;
    let mut delta_sent = 0u64;
    for s in &senders {
        overhead += s.stats().data_overhead_bytes;
        sent += s.stats().sent;
        delta_sent += s.stats().ts_delta_sent;
    }
    metrics.incr("t7p.header_bytes", overhead);
    let ostats = observer.stats();
    metrics.incr("t7p.holdback_work", ostats.holdback_work);
    metrics.incr("t7p.holdback_events", ostats.holdback_events);

    HotPathPoint {
        n,
        indexed,
        delta,
        bytes_per_msg: metrics.counter("t7p.header_bytes") as f64
            / metrics.counter("t7p.sent") as f64,
        delta_share: delta_sent as f64 / sent as f64,
        work_per_event: ostats.holdback_work_per_event(),
        holdback_peak: ostats.holdback_peak,
        parked_peak: metrics.gauge("t7p.parked_peak") as u64,
        sent: metrics.counter("t7p.sent"),
        delivered: metrics.counter("t7p.delivered"),
        wire_events,
        virtual_elapsed_us: SimTime::from_millis(at).as_micros(),
        hold_p50_ms: hold_hist.quantile(0.50).as_millis_f64(),
        hold_p99_ms: hold_hist.quantile(0.99).as_millis_f64(),
    }
}

/// One measured pccast configuration. The discipline has no holdback
/// scan/index or full/delta axes — ordering metadata is a constant tag —
/// so a single point per N suffices.
#[derive(Clone, Debug)]
pub struct PcPoint {
    /// Group size.
    pub n: usize,
    /// Ordering overhead bytes per original data message, sender side.
    /// Constant by construction: 12 (id) + 20 (link tag) + 1 (flag).
    pub bytes_per_msg: f64,
    /// Dissemination cost (relay copies of others' messages) per
    /// original message, summed over the senders.
    pub control_bytes_per_msg: f64,
    /// Observer peak of copies parked in per-link reorder buffers.
    pub linkbuf_peak: u64,
    /// Messages multicast.
    pub sent: u64,
    /// Messages the observer delivered (must equal `sent`).
    pub delivered: u64,
    /// Wire events the observer processed.
    pub wire_events: u64,
    /// Virtual time elapsed over the whole run, µs.
    pub virtual_elapsed_us: u64,
    /// Median observer hold time, ms (reversed links hold everything).
    pub hold_p50_ms: f64,
    /// 99th-percentile observer hold time, ms.
    pub hold_p99_ms: f64,
}

/// Runs the same sparse workload under the constant-metadata discipline.
///
/// Only the active senders and the observer are instantiated; the idle
/// members exist in the membership map but never touch a wire, so ring
/// links addressed to them evaporate. What remains of the overlay is the
/// chain `observer ↔ 0 ↔ 1 ↔ … ↔ active-1`: every delivery still floods
/// down every live link, and the observer receives the whole stream
/// through its link from member 0 (plus, at small N, the wrap-around
/// link). The observer's link streams are fed fully reversed —
/// the per-link analogue of the cbcast observer's reversed arrival —
/// so every copy sits in a reorder buffer before the cursor sweeps it.
pub fn measure_pccast(n: usize) -> PcPoint {
    measure_pccast_with_probe(n, ProbeHandle::none())
}

/// Like [`measure_pccast`], with an observability probe attached to
/// every endpoint. Probes are read-only: a probed run measures exactly
/// like an unprobed run.
pub fn measure_pccast_with_probe(n: usize, probe: ProbeHandle) -> PcPoint {
    assert!(n >= 2, "need at least a sender and an observer");
    let active = ACTIVE_CAP.min(n - 1);
    let total = n.clamp(32, TOTAL_CAP);
    let cfg = GroupConfig {
        discipline: CausalDiscipline::Pccast,
        ..GroupConfig::default()
    };
    let observer_id = n - 1;

    let mut senders: Vec<PccastEndpoint<u64>> = (0..active)
        .map(|i| PccastEndpoint::new(i, n, cfg.clone()))
        .collect();
    for s in &mut senders {
        s.set_probe(probe.clone());
    }

    // Phase 1: round-robin multicasts, relayed to quiescence among the
    // senders before the next send (one global causal chain, as in the
    // cbcast harness). Copies addressed to the observer are stashed;
    // copies addressed to idle members are dropped on the floor.
    let mut obs_stream: Vec<Wire<u64>> = Vec::new();
    let mut queue: VecDeque<(usize, Wire<u64>)> = VecDeque::new();
    let route = |out: Vec<(Dest, Wire<u64>)>,
                 queue: &mut VecDeque<(usize, Wire<u64>)>,
                 obs_stream: &mut Vec<Wire<u64>>| {
        for (d, w) in out {
            match d {
                Dest::One(p) if p == observer_id => obs_stream.push(w),
                Dest::One(p) if p < active => queue.push_back((p, w)),
                // Idle member: the link copy evaporates unacknowledged.
                _ => {}
            }
        }
    };
    for step in 0..total {
        let s = step % active;
        let at = SimTime::from_millis(step as u64);
        let (_, out) = senders[s].multicast(at, step as u64);
        route(out, &mut queue, &mut obs_stream);
        while let Some((p, w)) = queue.pop_front() {
            let (_, out) = senders[p].on_wire(at, w);
            route(out, &mut queue, &mut obs_stream);
        }
    }

    // Phase 2: the observer consumes its link streams fully reversed.
    // The stream is complete (no loss), so no NACK service is needed:
    // every stalled link head resolves when the earlier positions land.
    let mut observer = PccastEndpoint::<u64>::new(observer_id, n, cfg);
    observer.set_probe(probe);
    let mut at = total as u64;
    let mut hold_hist = Histogram::new();
    let mut wire_events = 0u64;
    let mut linkbuf_peak = 0usize;
    let mut delivered = 0u64;
    for w in obs_stream.into_iter().rev() {
        let (dels, _outs) = observer.on_wire(SimTime::from_millis(at), w);
        at += 1;
        wire_events += 1;
        delivered += dels.len() as u64;
        for d in &dels {
            if d.was_held() {
                hold_hist.record(d.hold_time());
            }
        }
        linkbuf_peak = linkbuf_peak.max(observer.link_buffered_len());
    }

    let mut overhead = 0u64;
    let mut control = 0u64;
    let mut sent = 0u64;
    for s in &senders {
        overhead += s.stats().data_overhead_bytes;
        control += s.stats().control_bytes;
        sent += s.stats().sent;
    }
    PcPoint {
        n,
        bytes_per_msg: overhead as f64 / sent as f64,
        control_bytes_per_msg: control as f64 / sent as f64,
        linkbuf_peak: linkbuf_peak as u64,
        sent,
        delivered,
        wire_events,
        virtual_elapsed_us: SimTime::from_millis(at).as_micros(),
        hold_p50_ms: hold_hist.quantile(0.50).as_millis_f64(),
        hold_p99_ms: hold_hist.quantile(0.99).as_millis_f64(),
    }
}

/// Runs one configuration with the flight recorder attached and exports
/// the recorded spans and phases as Chrome trace-event JSON (load in
/// Perfetto / `chrome://tracing`): one track group per process, spans
/// on tid 1, protocol phases on tid 2, flow arrows from each send to
/// its wire arrival.
pub fn perfetto(n: usize, indexed: bool, delta: bool) -> String {
    let (probe, rec) = ProbeHandle::recorder(8192);
    measure_with_probe(n, indexed, delta, probe);
    let active = ACTIVE_CAP.min(n - 1);
    let names: Vec<String> = (0..n)
        .map(|p| {
            if p == n - 1 {
                "observer".to_string()
            } else if p < active {
                format!("sender{p}")
            } else {
                "idle".to_string()
            }
        })
        .collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let rec = rec.borrow();
    perfetto_json(None, Some(&rec), n, &refs)
}

/// [`perfetto`] for the constant-metadata discipline: the same sparse
/// workload over pccast's overlay links, with reorder-buffer residence
/// as held slices, link ack/skip/repair phases, and send→wire flow
/// arrows — trace parity with the cbcast export.
pub fn perfetto_pccast(n: usize) -> String {
    let (probe, rec) = ProbeHandle::recorder(8192);
    measure_pccast_with_probe(n, probe);
    let active = ACTIVE_CAP.min(n - 1);
    let names: Vec<String> = (0..n)
        .map(|p| {
            if p == n - 1 {
                "observer".to_string()
            } else if p < active {
                format!("sender{p}")
            } else {
                "idle".to_string()
            }
        })
        .collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let rec = rec.borrow();
    perfetto_json(None, Some(&rec), n, &refs)
}

/// Runs the full sweep: sizes × {scan, indexed} × {full, delta}.
pub fn run(sizes: &[usize]) -> Table {
    let mut t = Table::new(
        format!(
            "T7+ — measured hot path: holdback impl × timestamp encoding \
             ({ACTIVE_CAP} active senders, reversed arrival at observer)"
        ),
        &[
            "N",
            "holdback",
            "timestamps",
            "bytes/msg",
            "delta share",
            "work/event",
            "holdback peak",
            "parked peak",
            "hold p50 ms",
            "hold p99 ms",
            "delivered/sent",
        ],
    );
    for &n in sizes {
        for (indexed, delta) in [(false, false), (false, true), (true, false), (true, true)] {
            // The scan queue's quadratic per-event work is established by
            // N≤256; at N≥1024 those cells only burn minutes re-proving
            // it, so the large sizes run the indexed configurations only.
            if n >= 1024 && !indexed {
                continue;
            }
            let p = measure(n, indexed, delta);
            t.row(vec![
                p.n.into(),
                if p.indexed { "indexed" } else { "scan" }.into(),
                if p.delta { "delta" } else { "full" }.into(),
                p.bytes_per_msg.into(),
                format!("{:.0}%", 100.0 * p.delta_share).into(),
                p.work_per_event.into(),
                p.holdback_peak.into(),
                p.parked_peak.into(),
                p.hold_p50_ms.into(),
                p.hold_p99_ms.into(),
                format!("{}/{}", p.delivered, p.sent).into(),
            ]);
        }
        let p = measure_pccast(n);
        t.row(vec![
            p.n.into(),
            "links".into(),
            "pc".into(),
            p.bytes_per_msg.into(),
            "—".into(),
            0.0.into(),
            p.linkbuf_peak.into(),
            0u64.into(),
            p.hold_p50_ms.into(),
            p.hold_p99_ms.into(),
            format!("{}/{}", p.delivered, p.sent).into(),
        ]);
    }
    t.note("bytes/msg: delta undercuts full once N dwarfs the active-sender");
    t.note("count; at small N it falls back to full (delta share 0%).");
    t.note("work/event: the scan queue's per-event work grows with the");
    t.note("holdback high-water mark; the indexed queue's stays flat.");
    t.note("hold p50/p99: observer hold times under reversed arrival —");
    t.note("identical across holdback impls (ordering is fixed by the");
    t.note("protocol), so they isolate structural work from wait time.");
    t.note("links/pc rows: the constant-metadata discipline (pccast); its");
    t.note("bytes/msg is the fixed 33-byte link tag at every N, and the");
    t.note("holdback-peak column reports its per-link reorder-buffer peak");
    t.note("under fully reversed link streams. Scan cells stop at N=256.");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_configuration_delivers_everything() {
        for (indexed, delta) in [(false, false), (false, true), (true, false), (true, true)] {
            let p = measure(16, indexed, delta);
            assert_eq!(
                p.delivered, p.sent,
                "indexed={indexed} delta={delta}: observer must deliver all"
            );
        }
    }

    #[test]
    fn delta_reduces_bytes_per_msg_at_scale() {
        let full = measure(256, true, false);
        let delta = measure(256, true, true);
        assert!(
            delta.bytes_per_msg < full.bytes_per_msg / 4.0,
            "delta {} vs full {} bytes/msg",
            delta.bytes_per_msg,
            full.bytes_per_msg
        );
        assert!(delta.delta_share > 0.9, "share {}", delta.delta_share);
    }

    #[test]
    fn indexed_work_per_event_stays_flat() {
        let scan_small = measure(16, false, false);
        let scan_large = measure(256, false, false);
        let idx_small = measure(16, true, false);
        let idx_large = measure(256, true, false);
        // The scan queue's per-event work tracks the holdback size...
        assert!(
            scan_large.work_per_event > 4.0 * scan_small.work_per_event,
            "scan work/event {} -> {}",
            scan_small.work_per_event,
            scan_large.work_per_event
        );
        // ...the indexed queue's does not (registrations are bounded by
        // the active-sender count, not the queue length).
        assert!(
            idx_large.work_per_event < 4.0 * idx_small.work_per_event.max(1.0),
            "indexed work/event {} -> {}",
            idx_small.work_per_event,
            idx_large.work_per_event
        );
        assert!(
            idx_large.work_per_event < scan_large.work_per_event / 4.0,
            "indexed {} vs scan {} at N=256",
            idx_large.work_per_event,
            scan_large.work_per_event
        );
    }

    #[test]
    fn table_has_full_grid() {
        // Four cbcast cells plus one pccast row per size.
        let t = run(&[4, 16]);
        assert_eq!(t.rows.len(), 10);
    }

    #[test]
    fn pccast_tag_is_constant_across_group_sizes() {
        let small = measure_pccast(16);
        let large = measure_pccast(4096);
        // 12 (id) + 20 (link tag) + 1 (flag) at every N — the discipline's
        // whole point. Compare against cbcast's growth at the same sizes.
        assert_eq!(small.bytes_per_msg, 33.0);
        assert_eq!(large.bytes_per_msg, 33.0);
        assert_eq!(small.delivered, small.sent);
        assert_eq!(large.delivered, large.sent);
        // Message volume is capped: N=4096 still sends TOTAL_CAP messages.
        assert_eq!(large.sent, TOTAL_CAP as u64);
    }

    #[test]
    fn pccast_reversed_links_hold_and_then_deliver_everything() {
        let p = measure_pccast(64);
        assert_eq!(p.delivered, p.sent);
        assert!(p.linkbuf_peak > 0, "reversed links must buffer");
        assert!(p.hold_p50_ms > 0.0, "p50 {}", p.hold_p50_ms);
        assert!(p.hold_p99_ms >= p.hold_p50_ms);
        assert!(p.wire_events >= p.sent);
        // Relaying down the sender chain costs more than the origin tag,
        // but it is dissemination, not per-message ordering metadata.
        assert!(p.control_bytes_per_msg > p.bytes_per_msg);
    }

    #[test]
    fn message_volume_cap_leaves_smaller_sizes_unchanged() {
        // The cap binds only above N=1024, so the long-standing N≤1024
        // measurements are identical with or without it.
        let p = measure(1024, true, true);
        assert_eq!(p.sent, 1024);
        let q = measure_pccast(1024);
        assert_eq!(q.sent, 1024);
    }

    #[test]
    fn hold_quantiles_are_populated_and_ordered() {
        let p = measure(16, true, false);
        // Reversed arrival holds nearly everything, so both quantiles
        // must be positive and ordered.
        assert!(p.hold_p50_ms > 0.0, "p50 {}", p.hold_p50_ms);
        assert!(p.hold_p99_ms >= p.hold_p50_ms);
        assert!(p.wire_events >= p.sent);
        assert!(p.virtual_elapsed_us > 0);
    }

    #[test]
    fn probed_measurement_is_identical() {
        let plain = measure(16, true, true);
        let (probe, _rec) = ProbeHandle::recorder(256);
        let probed = measure_with_probe(16, true, true, probe);
        assert_eq!(format!("{plain:?}"), format!("{probed:?}"));
    }

    #[test]
    fn perfetto_export_is_structurally_valid() {
        use simnet::json::JsonValue;
        let out = perfetto(8, true, true);
        let doc = JsonValue::parse(&out).expect("perfetto output parses");
        let events = doc
            .get("traceEvents")
            .and_then(JsonValue::as_arr)
            .expect("traceEvents array");
        assert!(!events.is_empty());
        let mut pids = std::collections::BTreeSet::new();
        for ev in events {
            let ph = ev.get("ph").and_then(JsonValue::as_str).expect("ph");
            assert!(
                ["M", "X", "B", "E", "s", "f", "i"].contains(&ph),
                "unexpected phase {ph}"
            );
            pids.insert(ev.get("pid").and_then(JsonValue::as_u64).expect("pid"));
            if ph != "M" {
                assert!(ev.get("ts").and_then(JsonValue::as_u64).is_some());
            }
        }
        // The observer and at least one sender left events.
        assert!(pids.contains(&7), "observer track missing: {pids:?}");
        assert!(pids.contains(&0), "sender track missing: {pids:?}");
    }

    #[test]
    fn probed_pccast_measurement_is_identical() {
        let plain = measure_pccast(16);
        let (probe, _rec) = ProbeHandle::recorder(256);
        let probed = measure_pccast_with_probe(16, probe);
        assert_eq!(format!("{plain:?}"), format!("{probed:?}"));
    }

    /// Trace parity for the constant-metadata discipline: the export
    /// parses, carries reorder-buffer residence slices from the reversed
    /// observer links, and flow arrows from each send to its wire
    /// arrival.
    #[test]
    fn pccast_perfetto_export_is_structurally_valid() {
        use simnet::json::JsonValue;
        let out = perfetto_pccast(8);
        let doc = JsonValue::parse(&out).expect("pccast perfetto output parses");
        let events = doc
            .get("traceEvents")
            .and_then(JsonValue::as_arr)
            .expect("traceEvents array");
        assert!(!events.is_empty());
        let mut reorder_slices = 0u64;
        let mut flow_starts = 0u64;
        let mut flow_ends = 0u64;
        for ev in events {
            let ph = ev.get("ph").and_then(JsonValue::as_str).expect("ph");
            assert!(
                ["M", "X", "B", "E", "s", "f", "i"].contains(&ph),
                "unexpected phase {ph}"
            );
            let name = ev.get("name").and_then(JsonValue::as_str).unwrap_or("");
            if name.contains("reorder") {
                reorder_slices += 1;
            }
            match ph {
                "s" => flow_starts += 1,
                "f" => flow_ends += 1,
                _ => {}
            }
        }
        assert!(reorder_slices > 0, "no reorder-buffer slices in the trace");
        assert!(flow_starts > 0, "no send→wire flow arrows started");
        assert!(flow_ends > 0, "no send→wire flow arrows finished");
    }
}
