//! T7+ — measured hot-path scaling: holdback indexing × timestamp wire
//! encoding.
//!
//! T7 computes the *analytic* size of the ordering header. This sweep
//! drives real `CbcastEndpoint`s and measures the two §3.4 overheads the
//! implementation can actually do something about:
//!
//! - **bytes/msg** — ordering bytes on each data message as sent, with
//!   full vs delta-encoded vector timestamps (delta falls back to full
//!   whenever it would not be smaller, and for every retransmission);
//! - **work/event** — holdback-queue structural work per wire event at a
//!   receiver under worst-case arrival order (the entire stream
//!   reversed), comparing the linear-scan queue against the indexed
//!   wait-count/ready-queue one.
//!
//! Only a few members are active senders (`ACTIVE_CAP`), the sparse
//! regime where delta encoding pays off; the observer is a silent member
//! whose NACKs are served from a message store, standing in for the
//! buffer-retransmission machinery of a full group.

use crate::table::Table;
use catocs::cbcast::CbcastEndpoint;
use catocs::group::GroupConfig;
use catocs::wire::{Dest, Wire};
use simnet::metrics::{Histogram, Metrics};
use simnet::obs::{perfetto_json, ProbeHandle};
use simnet::time::SimTime;
use std::collections::{HashMap, VecDeque};

/// Senders stay capped so per-message deltas remain sparse as N grows —
/// the regime the paper concedes delta compression targets.
const ACTIVE_CAP: usize = 4;

/// One measured configuration.
#[derive(Clone, Debug)]
pub struct HotPathPoint {
    /// Group size.
    pub n: usize,
    /// Indexed holdback queue (vs linear scan).
    pub indexed: bool,
    /// Delta-encoded timestamps (vs always full).
    pub delta: bool,
    /// Ordering overhead bytes per original data message, sender side.
    pub bytes_per_msg: f64,
    /// Fraction of data messages that went out delta-encoded.
    pub delta_share: f64,
    /// Observer holdback structural work per wire event.
    pub work_per_event: f64,
    /// Observer holdback high-water mark.
    pub holdback_peak: u64,
    /// Observer peak of parked (undecodable-yet) delta messages.
    pub parked_peak: u64,
    /// Messages multicast.
    pub sent: u64,
    /// Messages the observer delivered (must equal `sent`).
    pub delivered: u64,
    /// Wire events the observer processed (stream + retransmissions).
    pub wire_events: u64,
    /// Virtual time elapsed over the whole run, µs.
    pub virtual_elapsed_us: u64,
    /// Median observer hold time, ms (reversed arrival holds everything).
    pub hold_p50_ms: f64,
    /// 99th-percentile observer hold time, ms.
    pub hold_p99_ms: f64,
}

/// Runs one configuration and returns its measurements. The observer
/// receives the entire stream in reverse arrival order, maximizing
/// holdback (and, under delta, parking) pressure.
pub fn measure(n: usize, indexed: bool, delta: bool) -> HotPathPoint {
    measure_with_probe(n, indexed, delta, ProbeHandle::none())
}

/// Like [`measure`], with an observability probe attached to every
/// endpoint. Probes are read-only: the measurements are identical to an
/// unprobed run.
pub fn measure_with_probe(
    n: usize,
    indexed: bool,
    delta: bool,
    probe: ProbeHandle,
) -> HotPathPoint {
    assert!(n >= 2, "need at least a sender and an observer");
    let active = ACTIVE_CAP.min(n - 1);
    let total = n.max(32);
    let cfg = GroupConfig {
        indexed_holdback: indexed,
        delta_timestamps: delta,
        ..GroupConfig::default()
    };
    let mut metrics = Metrics::new();

    // Active senders multicast round-robin; each message is relayed to
    // the other senders immediately, so every message causally references
    // the whole prefix (one global chain).
    let mut senders: Vec<CbcastEndpoint<u64>> = (0..active)
        .map(|i| {
            let mut e = CbcastEndpoint::new(i, n, cfg.clone());
            e.set_probe(probe.clone());
            e
        })
        .collect();
    let mut wires = Vec::new();
    for step in 0..total {
        let s = step % active;
        let at = SimTime::from_millis(step as u64);
        let (_, out) = senders[s].multicast(at, step as u64);
        let w = out
            .iter()
            .find_map(|(d, w)| match (d, w) {
                (Dest::All, Wire::Data(_)) => Some(w.clone()),
                _ => None,
            })
            .expect("broadcast data message");
        for (r, other) in senders.iter_mut().enumerate() {
            if r != s {
                other.on_wire(at, w.clone());
            }
        }
        metrics.incr("t7p.sent", 1);
        wires.push(w);
    }

    let mut store = HashMap::new();
    for w in &wires {
        if let Wire::Data(d) = w {
            store.insert(d.id, d.clone());
        }
    }

    // The observer sees the stream fully reversed. Its NACKs are served
    // from the store with full-encoded retransmit copies — required for
    // completeness under delta (a full encoding that jumps the decode
    // chain drops the parked deltas behind it).
    let mut observer = CbcastEndpoint::<u64>::new(n - 1, n, cfg);
    observer.set_probe(probe);
    let mut inbox: VecDeque<Wire<u64>> = wires.iter().rev().cloned().collect();
    let mut at = total as u64;
    let mut hold_hist = Histogram::new();
    let mut wire_events = 0u64;
    while let Some(w) = inbox.pop_front() {
        let (dels, outs) = observer.on_wire(SimTime::from_millis(at), w);
        at += 1;
        wire_events += 1;
        for d in &dels {
            if d.was_held() {
                hold_hist.record(d.hold_time());
            }
        }
        metrics.incr("t7p.delivered", dels.len() as u64);
        metrics.gauge_max("t7p.holdback_peak", observer.holdback_len() as f64);
        metrics.gauge_max("t7p.parked_peak", observer.parked_len() as f64);
        for (_, ow) in outs {
            if let Wire::Nack { want, .. } = ow {
                for id in want {
                    let mut copy = store[&id].clone();
                    copy.retransmit = true;
                    copy.make_full();
                    inbox.push_back(Wire::Data(copy));
                }
            }
        }
    }

    let mut overhead = 0u64;
    let mut sent = 0u64;
    let mut delta_sent = 0u64;
    for s in &senders {
        overhead += s.stats().data_overhead_bytes;
        sent += s.stats().sent;
        delta_sent += s.stats().ts_delta_sent;
    }
    metrics.incr("t7p.header_bytes", overhead);
    let ostats = observer.stats();
    metrics.incr("t7p.holdback_work", ostats.holdback_work);
    metrics.incr("t7p.holdback_events", ostats.holdback_events);

    HotPathPoint {
        n,
        indexed,
        delta,
        bytes_per_msg: metrics.counter("t7p.header_bytes") as f64
            / metrics.counter("t7p.sent") as f64,
        delta_share: delta_sent as f64 / sent as f64,
        work_per_event: ostats.holdback_work_per_event(),
        holdback_peak: ostats.holdback_peak,
        parked_peak: metrics.gauge("t7p.parked_peak") as u64,
        sent: metrics.counter("t7p.sent"),
        delivered: metrics.counter("t7p.delivered"),
        wire_events,
        virtual_elapsed_us: SimTime::from_millis(at).as_micros(),
        hold_p50_ms: hold_hist.quantile(0.50).as_millis_f64(),
        hold_p99_ms: hold_hist.quantile(0.99).as_millis_f64(),
    }
}

/// Runs one configuration with the flight recorder attached and exports
/// the recorded spans and phases as Chrome trace-event JSON (load in
/// Perfetto / `chrome://tracing`): one track group per process, spans
/// on tid 1, protocol phases on tid 2, flow arrows from each send to
/// its wire arrival.
pub fn perfetto(n: usize, indexed: bool, delta: bool) -> String {
    let (probe, rec) = ProbeHandle::recorder(8192);
    measure_with_probe(n, indexed, delta, probe);
    let active = ACTIVE_CAP.min(n - 1);
    let names: Vec<String> = (0..n)
        .map(|p| {
            if p == n - 1 {
                "observer".to_string()
            } else if p < active {
                format!("sender{p}")
            } else {
                "idle".to_string()
            }
        })
        .collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let rec = rec.borrow();
    perfetto_json(None, Some(&rec), n, &refs)
}

/// Runs the full sweep: sizes × {scan, indexed} × {full, delta}.
pub fn run(sizes: &[usize]) -> Table {
    let mut t = Table::new(
        format!(
            "T7+ — measured hot path: holdback impl × timestamp encoding \
             ({ACTIVE_CAP} active senders, reversed arrival at observer)"
        ),
        &[
            "N",
            "holdback",
            "timestamps",
            "bytes/msg",
            "delta share",
            "work/event",
            "holdback peak",
            "parked peak",
            "hold p50 ms",
            "hold p99 ms",
            "delivered/sent",
        ],
    );
    for &n in sizes {
        for (indexed, delta) in [(false, false), (false, true), (true, false), (true, true)] {
            let p = measure(n, indexed, delta);
            t.row(vec![
                p.n.into(),
                if p.indexed { "indexed" } else { "scan" }.into(),
                if p.delta { "delta" } else { "full" }.into(),
                p.bytes_per_msg.into(),
                format!("{:.0}%", 100.0 * p.delta_share).into(),
                p.work_per_event.into(),
                p.holdback_peak.into(),
                p.parked_peak.into(),
                p.hold_p50_ms.into(),
                p.hold_p99_ms.into(),
                format!("{}/{}", p.delivered, p.sent).into(),
            ]);
        }
    }
    t.note("bytes/msg: delta undercuts full once N dwarfs the active-sender");
    t.note("count; at small N it falls back to full (delta share 0%).");
    t.note("work/event: the scan queue's per-event work grows with the");
    t.note("holdback high-water mark; the indexed queue's stays flat.");
    t.note("hold p50/p99: observer hold times under reversed arrival —");
    t.note("identical across holdback impls (ordering is fixed by the");
    t.note("protocol), so they isolate structural work from wait time.");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_configuration_delivers_everything() {
        for (indexed, delta) in [(false, false), (false, true), (true, false), (true, true)] {
            let p = measure(16, indexed, delta);
            assert_eq!(
                p.delivered, p.sent,
                "indexed={indexed} delta={delta}: observer must deliver all"
            );
        }
    }

    #[test]
    fn delta_reduces_bytes_per_msg_at_scale() {
        let full = measure(256, true, false);
        let delta = measure(256, true, true);
        assert!(
            delta.bytes_per_msg < full.bytes_per_msg / 4.0,
            "delta {} vs full {} bytes/msg",
            delta.bytes_per_msg,
            full.bytes_per_msg
        );
        assert!(delta.delta_share > 0.9, "share {}", delta.delta_share);
    }

    #[test]
    fn indexed_work_per_event_stays_flat() {
        let scan_small = measure(16, false, false);
        let scan_large = measure(256, false, false);
        let idx_small = measure(16, true, false);
        let idx_large = measure(256, true, false);
        // The scan queue's per-event work tracks the holdback size...
        assert!(
            scan_large.work_per_event > 4.0 * scan_small.work_per_event,
            "scan work/event {} -> {}",
            scan_small.work_per_event,
            scan_large.work_per_event
        );
        // ...the indexed queue's does not (registrations are bounded by
        // the active-sender count, not the queue length).
        assert!(
            idx_large.work_per_event < 4.0 * idx_small.work_per_event.max(1.0),
            "indexed work/event {} -> {}",
            idx_small.work_per_event,
            idx_large.work_per_event
        );
        assert!(
            idx_large.work_per_event < scan_large.work_per_event / 4.0,
            "indexed {} vs scan {} at N=256",
            idx_large.work_per_event,
            scan_large.work_per_event
        );
    }

    #[test]
    fn table_has_full_grid() {
        let t = run(&[4, 16]);
        assert_eq!(t.rows.len(), 8);
    }

    #[test]
    fn hold_quantiles_are_populated_and_ordered() {
        let p = measure(16, true, false);
        // Reversed arrival holds nearly everything, so both quantiles
        // must be positive and ordered.
        assert!(p.hold_p50_ms > 0.0, "p50 {}", p.hold_p50_ms);
        assert!(p.hold_p99_ms >= p.hold_p50_ms);
        assert!(p.wire_events >= p.sent);
        assert!(p.virtual_elapsed_us > 0);
    }

    #[test]
    fn probed_measurement_is_identical() {
        let plain = measure(16, true, true);
        let (probe, _rec) = ProbeHandle::recorder(256);
        let probed = measure_with_probe(16, true, true, probe);
        assert_eq!(format!("{plain:?}"), format!("{probed:?}"));
    }

    #[test]
    fn perfetto_export_is_structurally_valid() {
        use simnet::json::JsonValue;
        let out = perfetto(8, true, true);
        let doc = JsonValue::parse(&out).expect("perfetto output parses");
        let events = doc
            .get("traceEvents")
            .and_then(JsonValue::as_arr)
            .expect("traceEvents array");
        assert!(!events.is_empty());
        let mut pids = std::collections::BTreeSet::new();
        for ev in events {
            let ph = ev.get("ph").and_then(JsonValue::as_str).expect("ph");
            assert!(
                ["M", "X", "B", "E", "s", "f", "i"].contains(&ph),
                "unexpected phase {ph}"
            );
            pids.insert(ev.get("pid").and_then(JsonValue::as_u64).expect("pid"));
            if ph != "M" {
                assert!(ev.get("ts").and_then(JsonValue::as_u64).is_some());
            }
        }
        // The observer and at least one sender left events.
        assert!(pids.contains(&7), "observer track missing: {pids:?}");
        assert!(pids.contains(&0), "sender track missing: {pids:?}");
    }
}
