//! F1 — Figure 1: the 3-process event diagram.
//!
//! Reproduces the paper's charting device on a live cbcast run: Q sends
//! m1; P, having delivered m1, sends m2 (so m1 → m2); R and Q then send
//! the concurrent m3 and m4. The table verifies the causal guarantee (m1
//! before m2 everywhere) and shows that the concurrent pair's delivery
//! order may differ between processes.

use crate::table::Table;
use catocs::endpoint::Discipline;
use catocs::group::GroupConfig;
use catocs::harness::{spawn_group, GroupApp, GroupCtx, GroupNode};
use catocs::wire::{Delivery, Wire};
use simnet::net::{LatencyModel, NetConfig};
use simnet::sim::SimBuilder;
use simnet::time::{SimDuration, SimTime};

/// Figure-1 roles: member 0 = P, member 1 = Q, member 2 = R.
struct Role {
    me: usize,
    ticks: u32,
    sent_m2: bool,
    /// Deliveries in order.
    order: Vec<String>,
}

impl GroupApp<String> for Role {
    fn on_tick(&mut self, _ctx: &mut GroupCtx<'_>) -> Vec<String> {
        self.ticks += 1;
        match (self.me, self.ticks) {
            (1, 1) => vec!["m1".to_string()],
            // m3 (from R) and m4 (from Q) sent at the same tick —
            // concurrent by construction.
            (2, 3) => vec!["m3".to_string()],
            (1, 3) => vec!["m4".to_string()],
            _ => Vec::new(),
        }
    }

    fn on_deliver(&mut self, _ctx: &mut GroupCtx<'_>, d: &Delivery<String>) -> Vec<String> {
        self.order.push(d.payload.clone());
        // P sends m2 upon receiving m1 (the causal chain of the figure).
        if self.me == 0 && d.payload == "m1" && !self.sent_m2 {
            self.sent_m2 = true;
            return vec!["m2".to_string()];
        }
        Vec::new()
    }
}

/// Builds and runs the figure-1 scenario with tracing on.
fn simulate(
    seed: u64,
) -> (
    simnet::sim::Sim<Wire<String>>,
    Vec<simnet::process::ProcessId>,
) {
    let net = NetConfig {
        latency: LatencyModel::Uniform {
            min: SimDuration::from_millis(1),
            max: SimDuration::from_millis(9),
        },
        ..NetConfig::default()
    };
    let mut sim = SimBuilder::new(seed)
        .net(net)
        .trace()
        .build::<Wire<String>>();
    let members = spawn_group(
        &mut sim,
        3,
        Discipline::Causal,
        GroupConfig::default(),
        Some(SimDuration::from_millis(10)),
        |me| Role {
            me,
            ticks: 0,
            sent_m2: false,
            order: Vec::new(),
        },
    );
    sim.run_until(SimTime::from_millis(400));
    (sim, members)
}

/// Exports the figure-1 run as Chrome trace-event JSON (Perfetto /
/// `chrome://tracing`): one track per process, flow arrows for every
/// message, including the protocol chatter the ASCII diagram strips.
pub fn perfetto(seed: u64) -> String {
    let (sim, _) = simulate(seed);
    simnet::obs::perfetto_json(Some(sim.trace()), None, 3, &["P", "Q", "R"])
}

/// Runs the figure; returns the verification table and the rendered
/// ASCII event diagram.
pub fn run(seed: u64) -> (Table, String) {
    let (sim, members) = simulate(seed);

    let mut table = Table::new(
        "F1 — Figure 1: causal precedence and concurrency (cbcast)",
        &["process", "delivery order", "m1<m2", "m3/m4 order"],
    );
    let mut m34_orders = Vec::new();
    for (i, &m) in members.iter().enumerate() {
        let node = sim.process::<GroupNode<String, Role>>(m).expect("node");
        let order = &node.app().order;
        let pos = |s: &str| order.iter().position(|x| x == s);
        let m1_before_m2 = match (pos("m1"), pos("m2")) {
            (Some(a), Some(b)) => a < b,
            _ => false,
        };
        let m34 = match (pos("m3"), pos("m4")) {
            (Some(a), Some(b)) if a < b => "m3,m4",
            (Some(_), Some(_)) => "m4,m3",
            _ => "?",
        };
        m34_orders.push(m34.to_string());
        table.row(vec![
            ["P", "Q", "R"][i].to_string().into(),
            order.join(" ").into(),
            if m1_before_m2 { "yes" } else { "NO" }.into(),
            m34.into(),
        ]);
    }
    table.note("m1 causally precedes m2 and must be delivered first everywhere;");
    table.note("m3 and m4 are concurrent — their order is unconstrained per process.");

    // Strip protocol chatter (ack gossip, NACKs) from the figure: the
    // paper's diagram shows only the application messages.
    let diagram = sim
        .trace()
        .filtered(|label| label.contains("Data") || label.contains('"'))
        .render_event_diagram(3, &["P", "Q", "R"]);
    (table, diagram)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn causal_pair_ordered_everywhere() {
        for seed in [1, 7, 23] {
            let (t, _d) = run(seed);
            let col = t.col("m1<m2").unwrap();
            for r in &t.rows {
                assert_eq!(r[col].to_string(), "yes", "seed {seed}");
            }
        }
    }

    #[test]
    fn concurrent_pair_can_differ_across_seeds() {
        // Across seeds, both m3,m4 and m4,m3 orders appear somewhere.
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..30 {
            let (t, _) = run(seed);
            let col = t.col("m3/m4 order").unwrap();
            for r in &t.rows {
                seen.insert(r[col].to_string());
            }
        }
        assert!(seen.contains("m3,m4") && seen.contains("m4,m3"), "{seen:?}");
    }

    #[test]
    fn diagram_mentions_all_messages() {
        let (_, d) = run(11);
        for m in ["m1", "m2", "m3", "m4"] {
            assert!(d.contains(m), "diagram missing {m}");
        }
    }
}
