//! T11 — §5: view-change (membership) cost versus group size.
//!
//! A causal group chats; one member crashes; heartbeats time out; the
//! coordinator runs the flush protocol and installs the new view. We
//! measure the flush message count and the send-blackout duration — the
//! costs the paper flags: "Membership change protocols also suppress the
//! sending of new messages during a significant portion of the protocol."

use crate::table::Table;
use catocs::cbcast::CbcastEndpoint;
use catocs::failure::FailureDetector;
use catocs::group::GroupConfig;
use catocs::membership::{FlushAction, MembershipEngine};
use catocs::wire::{Dest, Out, Wire};
use simnet::net::NetConfig;
use simnet::process::{Ctx, Process, ProcessId, TimerId};
use simnet::sim::SimBuilder;
use simnet::time::{SimDuration, SimTime};

const TICK: TimerId = TimerId(0);
const APP: TimerId = TimerId(1);
const TICK_EVERY: SimDuration = SimDuration::from_millis(10);

/// A full virtual-synchrony member: endpoint + detector + membership.
pub struct MemberNode {
    me: usize,
    n: usize,
    endpoint: CbcastEndpoint<u64>,
    detector: FailureDetector,
    engine: MembershipEngine,
    msgs_left: u32,
    next: u64,
    /// Multicasts suppressed because a flush was in progress.
    pub suppressed_sends: u32,
}

impl MemberNode {
    /// Creates member `me` of `n`.
    pub fn new(me: usize, n: usize, msgs: u32) -> Self {
        MemberNode {
            me,
            n,
            endpoint: CbcastEndpoint::new(me, n, GroupConfig::default()),
            detector: FailureDetector::new(
                me,
                n,
                SimDuration::from_millis(20),
                SimDuration::from_millis(100),
                SimTime::ZERO,
            ),
            engine: MembershipEngine::new(me, n),
            msgs_left: msgs,
            next: 0,
            suppressed_sends: 0,
        }
    }

    /// The membership engine (read post-run).
    pub fn engine(&self) -> &MembershipEngine {
        &self.engine
    }

    fn route(&self, ctx: &mut Ctx<'_, Wire<u64>>, out: Vec<Out<u64>>) {
        for (dest, w) in out {
            match dest {
                Dest::All => {
                    for k in 0..self.n {
                        if k != self.me {
                            ctx.send(ProcessId(k), w.clone());
                        }
                    }
                }
                Dest::One(k) => ctx.send(ProcessId(k), w),
            }
        }
    }

    fn handle_action(&mut self, ctx: &mut Ctx<'_, Wire<u64>>, action: FlushAction) {
        match action {
            FlushAction::RetransmitUnstable => {
                let flushed = self.endpoint.flush_unstable();
                ctx.metrics()
                    .incr("t11.flush_retransmits", flushed.len() as u64);
                self.route(ctx, flushed);
                // Delivery blackout: our FlushOk clock must stay an upper
                // bound on what we have delivered until the view installs.
                self.endpoint.freeze(ctx.now());
            }
            FlushAction::ViewInstalled { view, cut } => {
                let members: Vec<usize> = view.members.iter().map(|p| p.0).collect();
                let thawed = self.endpoint.on_view_install(ctx.now(), &members, &cut);
                ctx.metrics()
                    .incr("t11.thawed_deliveries", thawed.len() as u64);
            }
            FlushAction::None => {}
        }
    }
}

impl Process<Wire<u64>> for MemberNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Wire<u64>>) {
        ctx.set_timer(TICK, TICK_EVERY);
        ctx.set_timer(APP, SimDuration::from_millis(15));
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Wire<u64>>, _f: ProcessId, msg: Wire<u64>) {
        match &msg {
            Wire::Heartbeat { from, view_id } => {
                self.detector.heard_from(*from, ctx.now());
                let out = self.engine.on_heartbeat(*from, *view_id);
                self.route(ctx, out);
            }
            Wire::Flush { .. } | Wire::FlushOk { .. } | Wire::Install { .. } => {
                let clock = self.endpoint.clock().clone();
                let (action, out) = self.engine.on_wire(ctx.now(), &msg, &clock);
                self.route(ctx, out);
                self.handle_action(ctx, action);
            }
            _ => {
                let (_dels, out) = self.endpoint.on_wire(ctx.now(), msg);
                self.route(ctx, out);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Wire<u64>>, t: TimerId) {
        match t {
            TICK => {
                let out = self.endpoint.on_tick(ctx.now());
                self.route(ctx, out);
                if self.detector.should_beat(ctx.now()) {
                    let hb = Wire::Heartbeat {
                        from: self.me,
                        view_id: self.engine.view().id,
                    };
                    self.route(ctx, vec![(Dest::All, hb)]);
                }
                // Feed the engine the *full* suspect set every tick, not
                // just new suspicions: if a flush wedges on a proposal
                // member that died before acking, this is what re-derives
                // a proposal the survivors can actually complete.
                self.detector.check(ctx.now());
                let suspects = self.detector.suspects();
                if !suspects.is_empty() {
                    let clock = self.endpoint.clock().clone();
                    let (action, out) = self.engine.suspect(ctx.now(), &suspects, &clock);
                    self.route(ctx, out);
                    self.handle_action(ctx, action);
                }
                let clock = self.endpoint.clock().clone();
                let retries = self.engine.on_tick(ctx.now(), &clock);
                self.route(ctx, retries);
                ctx.set_timer(TICK, TICK_EVERY);
            }
            APP => {
                if self.msgs_left > 0 {
                    if self.engine.can_send() {
                        self.msgs_left -= 1;
                        self.next += 1;
                        let (_d, out) = self.endpoint.multicast(ctx.now(), self.next);
                        self.route(ctx, out);
                    } else {
                        self.suppressed_sends += 1;
                    }
                }
                ctx.set_timer(APP, SimDuration::from_millis(15));
            }
            _ => {}
        }
    }
}

/// One measurement point.
#[derive(Clone, Debug)]
pub struct ViewChangePoint {
    /// Group size.
    pub n: usize,
    /// Views installed at the coordinator.
    pub views_installed: u64,
    /// Flush protocol messages, summed across members.
    pub flush_msgs: u64,
    /// Unstable retransmissions triggered by the flush.
    pub flush_retransmits: u64,
    /// Blackout (send suppression) at the coordinator, ms.
    pub blackout_ms: f64,
    /// Application sends suppressed during the blackout, all members.
    pub suppressed_sends: u32,
}

/// Crashes member `n-1` and measures the view change.
pub fn measure(seed: u64, n: usize) -> ViewChangePoint {
    let mut sim = SimBuilder::new(seed)
        .net(NetConfig::lossy_lan(0.01))
        .build::<Wire<u64>>();
    for me in 0..n {
        sim.add_process(MemberNode::new(me, n, 60));
    }
    sim.crash_at(ProcessId(n - 1), SimTime::from_millis(300));
    sim.run_until(SimTime::from_secs(4));

    let mut flush_msgs = 0;
    let mut suppressed = 0;
    for p in 0..(n - 1) {
        let node: &MemberNode = sim.process(ProcessId(p)).expect("member");
        flush_msgs += node.engine().stats().flush_msgs;
        suppressed += node.suppressed_sends;
    }
    let coord: &MemberNode = sim.process(ProcessId(0)).expect("coordinator");
    ViewChangePoint {
        n,
        views_installed: coord.engine().stats().view_changes,
        flush_msgs,
        flush_retransmits: sim.metrics().counter("t11.flush_retransmits"),
        blackout_ms: coord.engine().stats().last_blackout.as_micros() as f64 / 1000.0,
        suppressed_sends: suppressed,
    }
}

/// Runs the sweep.
pub fn run(sizes: &[usize]) -> Table {
    let mut t = Table::new(
        "T11 — §5: view change after one crash (heartbeat 20ms, suspect 100ms)",
        &[
            "N",
            "views installed",
            "flush msgs",
            "flush retransmits",
            "blackout ms",
            "suppressed sends",
        ],
    );
    for &n in sizes {
        let p = measure(5, n);
        t.row(vec![
            p.n.into(),
            p.views_installed.into(),
            p.flush_msgs.into(),
            p.flush_retransmits.into(),
            p.blackout_ms.into(),
            (p.suppressed_sends as u64).into(),
        ]);
    }
    t.note("flush traffic grows with group size and unstable-buffer depth;");
    t.note("all application sending is suppressed for the blackout window.");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_change_completes() {
        let p = measure(5, 4);
        assert_eq!(p.views_installed, 1, "{p:?}");
        assert!(p.blackout_ms > 0.0);
    }

    #[test]
    fn flush_traffic_grows_with_n() {
        let small = measure(5, 4);
        let large = measure(5, 16);
        assert!(
            large.flush_msgs > small.flush_msgs,
            "{} -> {}",
            small.flush_msgs,
            large.flush_msgs
        );
    }
}
