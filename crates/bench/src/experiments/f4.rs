//! F4 — Figure 4: the trading false crossing.
//!
//! For each ordering discipline, counts the false crossings the naive
//! monitor displays and shows the dependency-field monitor suppressing
//! them all. Also reports the ordering layer's own cost (held
//! deliveries) for context.

use crate::table::Table;
use apps::trading::{run_trading, TradingResult};
use catocs::endpoint::Discipline;
use simnet::net::{LatencyModel, NetConfig};
use simnet::time::SimDuration;

fn jittery() -> NetConfig {
    NetConfig {
        latency: LatencyModel::Uniform {
            min: SimDuration::from_micros(200),
            max: SimDuration::from_millis(8),
        },
        ..NetConfig::default()
    }
}

fn sweep(d: Discipline, state_level: bool, seeds: u64) -> TradingResult {
    let mut acc = TradingResult::default();
    for seed in 0..seeds {
        let r = run_trading(
            seed,
            d,
            state_level,
            120,
            SimDuration::from_millis(4),
            SimDuration::from_millis(3),
            jittery(),
        );
        acc.false_crossings += r.false_crossings;
        acc.suppressed_stale += r.suppressed_stale;
        acc.displayed += r.displayed;
        acc.monitor_held += r.monitor_held;
        acc.net_sent += r.net_sent;
    }
    acc
}

/// Runs the sweep, `seeds` runs of 120 price updates per configuration.
pub fn run(seeds: u64) -> Table {
    let mut t = Table::new(
        "F4 — Figure 4: trading false crossings (120 updates/run)",
        &[
            "monitor",
            "discipline",
            "false crossings",
            "suppressed stale",
            "displayed",
            "held deliveries",
        ],
    );
    for (name, d) in [
        ("fifo", Discipline::Fifo),
        ("causal", Discipline::Causal),
        ("total", Discipline::Total { sequencer: 0 }),
    ] {
        let r = sweep(d, false, seeds);
        t.row(vec![
            "naive".into(),
            name.into(),
            r.false_crossings.into(),
            r.suppressed_stale.into(),
            r.displayed.into(),
            r.monitor_held.into(),
        ]);
    }
    for (name, d) in [("fifo", Discipline::Fifo), ("causal", Discipline::Causal)] {
        let r = sweep(d, true, seeds);
        t.row(vec![
            "dependency-field".into(),
            name.into(),
            r.false_crossings.into(),
            r.suppressed_stale.into(),
            r.displayed.into(),
            r.monitor_held.into(),
        ]);
    }
    t.note("the new option price and old theoretical price are concurrent —");
    t.note("\"neither causal or total multicast can avoid this anomaly\" (§4.1);");
    t.note("the dependency field fixes it on any transport, even plain FIFO.");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let t = run(3);
        // Naive monitors show crossings under every discipline.
        for row in 0..3 {
            assert!(t.get_f64(row, 2) > 0.0, "row {row} should show crossings");
        }
        // Dependency-field monitors show none and suppress some.
        for row in 3..5 {
            assert_eq!(t.get_f64(row, 2), 0.0);
            assert!(t.get_f64(row, 3) > 0.0);
        }
    }
}
