//! bench — the quantitative performance snapshot behind `experiments
//! bench` and the BENCH_*.json regression gate.
//!
//! Four deterministic workloads, one seed:
//!
//! - the T7+ hot path at N=64 across the full {scan,indexed} ×
//!   {full,delta} grid — bytes/msg, holdback work/event, hold-time
//!   quantiles, and virtual-time throughput per configuration;
//! - the T7+ N-scaling points (indexed+delta) — how work/event and
//!   bytes/msg move with group size;
//! - sampler-instrumented simulated groups (causal and token-ring) —
//!   deliveries and scheduler events per virtual second, hold-time
//!   quantiles, and time-series peaks (holdback depth, stability-horizon
//!   lag, token queue);
//! - a cut of the chaos campaign — deliveries, scheduler work and hold
//!   times under fault injection.
//!
//! Virtual-time metrics are exactly reproducible (`det: true`) and make
//! up the whole default snapshot, so rerunning the same seed produces a
//! byte-identical file. Wall-clock throughput is collected only with
//! `--wall` and marked `det: false`: informational, never gated.

use crate::experiments::latency::{self, LatencyDiscipline};
use crate::table::Table;
use crate::telemetry::{BenchSnapshot, Direction};
use catocs::endpoint::Discipline;
use catocs::group::{CausalDiscipline, GroupConfig};
use catocs::harness::{spawn_group, GroupApp, GroupCtx};
use catocs::ledger::{LatencySummary, PhaseId};
use catocs::vsync::BugKnobs;
use catocs::wire::{Delivery, Wire};
use simnet::metrics::Histogram;
use simnet::net::NetConfig;
use simnet::sim::SimBuilder;
use simnet::time::{SimDuration, SimTime};

use super::{chaos, t7plus};

/// The seed every deterministic workload runs under.
pub const SNAPSHOT_SEED: u64 = 42;

/// Group size for the simulated-group workloads.
const GROUP_N: usize = 8;
/// Virtual horizon of each simulated-group run.
const GROUP_HORIZON: SimTime = SimTime::from_secs(5);
/// Sampling cadence for the time-series gauges.
const SAMPLE_EVERY: SimDuration = SimDuration::from_millis(50);
/// Messages each member multicasts (one per app tick).
const GROUP_MSGS: u32 = 40;
/// Group size of the T7+ grid cell the per-config metrics come from.
const GRID_N: usize = 64;
/// Chaos campaign seeds folded into the snapshot.
const CHAOS_SEEDS: u64 = 4;

/// Each member multicasts `remaining` messages, one per app tick.
struct Chatter {
    remaining: u32,
}

impl GroupApp<u64> for Chatter {
    fn on_tick(&mut self, ctx: &mut GroupCtx<'_>) -> Vec<u64> {
        if self.remaining > 0 {
            self.remaining -= 1;
            vec![ctx.me as u64]
        } else {
            Vec::new()
        }
    }
    fn on_deliver(&mut self, _ctx: &mut GroupCtx<'_>, _d: &Delivery<u64>) -> Vec<u64> {
        Vec::new()
    }
}

/// What one simulated-group run measured.
struct GroupRun {
    delivered: u64,
    events: u64,
    hold: Histogram,
    /// (series name, max over the run) for every sampled series.
    series_max: Vec<(String, f64)>,
    wall_secs: f64,
}

fn run_group(discipline: Discipline) -> GroupRun {
    let mut sim = SimBuilder::new(SNAPSHOT_SEED)
        .net(NetConfig::lossy_lan(0.02))
        .sample_every(SAMPLE_EVERY)
        .build::<Wire<u64>>();
    spawn_group(
        &mut sim,
        GROUP_N,
        discipline,
        GroupConfig::default(),
        Some(SimDuration::from_millis(20)),
        |_| Chatter {
            remaining: GROUP_MSGS,
        },
    );
    let start = std::time::Instant::now();
    let events = sim.run_until(GROUP_HORIZON);
    let wall_secs = start.elapsed().as_secs_f64();
    let m = sim.metrics();
    GroupRun {
        delivered: m.counter("group.delivered"),
        events,
        hold: m.histogram("group.hold_time").cloned().unwrap_or_default(),
        series_max: m
            .series()
            .map(|(name, s)| (name.to_string(), s.max_value()))
            .collect(),
        wall_secs,
    }
}

fn push_group(snap: &mut BenchSnapshot, prefix: &str, r: &GroupRun, wall: bool) {
    let vsecs = GROUP_HORIZON.as_secs_f64();
    snap.push(
        format!("{prefix}.delivered"),
        r.delivered as f64,
        "msgs",
        Direction::HigherIsBetter,
        true,
    );
    snap.push(
        format!("{prefix}.deliveries_per_vsec"),
        r.delivered as f64 / vsecs,
        "msg/vsec",
        Direction::HigherIsBetter,
        true,
    );
    snap.push(
        format!("{prefix}.events_per_vsec"),
        r.events as f64 / vsecs,
        "ev/vsec",
        Direction::LowerIsBetter,
        true,
    );
    snap.push(
        format!("{prefix}.hold_p50_ms"),
        r.hold.quantile(0.50).as_millis_f64(),
        "ms",
        Direction::LowerIsBetter,
        true,
    );
    snap.push(
        format!("{prefix}.hold_p99_ms"),
        r.hold.quantile(0.99).as_millis_f64(),
        "ms",
        Direction::LowerIsBetter,
        true,
    );
    for (name, max) in &r.series_max {
        // Peaks of the sampled queue/buffer gauges; `ts.sim.queue.*` and
        // the `.sum` aggregates stay out to keep the snapshot focused.
        if let Some(short) = name
            .strip_prefix("ts.")
            .and_then(|n| n.strip_suffix(".max"))
        {
            if short.starts_with("sim.") {
                continue;
            }
            snap.push(
                format!("{prefix}.ts.{short}_peak"),
                *max,
                "msgs",
                Direction::LowerIsBetter,
                true,
            );
        }
    }
    if wall {
        snap.push(
            format!("{prefix}.wall_secs"),
            r.wall_secs,
            "s",
            Direction::LowerIsBetter,
            false,
        );
        snap.push(
            format!("{prefix}.events_per_wallsec"),
            r.events as f64 / r.wall_secs.max(1e-9),
            "ev/s",
            Direction::HigherIsBetter,
            false,
        );
    }
}

fn push_point(
    snap: &mut BenchSnapshot,
    prefix: &str,
    p: &t7plus::HotPathPoint,
    wall_secs: f64,
    wall: bool,
) {
    let vsecs = p.virtual_elapsed_us as f64 / 1e6;
    snap.push(
        format!("{prefix}.bytes_per_msg"),
        p.bytes_per_msg,
        "B/msg",
        Direction::LowerIsBetter,
        true,
    );
    snap.push(
        format!("{prefix}.work_per_event"),
        p.work_per_event,
        "ops/ev",
        Direction::LowerIsBetter,
        true,
    );
    snap.push(
        format!("{prefix}.holdback_peak"),
        p.holdback_peak as f64,
        "msgs",
        Direction::LowerIsBetter,
        true,
    );
    snap.push(
        format!("{prefix}.hold_p99_ms"),
        p.hold_p99_ms,
        "ms",
        Direction::LowerIsBetter,
        true,
    );
    snap.push(
        format!("{prefix}.events_per_vsec"),
        p.wire_events as f64 / vsecs,
        "ev/vsec",
        Direction::HigherIsBetter,
        true,
    );
    snap.push(
        format!("{prefix}.deliveries_per_vsec"),
        p.delivered as f64 / vsecs,
        "msg/vsec",
        Direction::HigherIsBetter,
        true,
    );
    if wall {
        snap.push(
            format!("{prefix}.wall_secs"),
            wall_secs,
            "s",
            Direction::LowerIsBetter,
            false,
        );
        snap.push(
            format!("{prefix}.events_per_wallsec"),
            p.wire_events as f64 / wall_secs.max(1e-9),
            "ev/s",
            Direction::HigherIsBetter,
            false,
        );
    }
}

/// Pushes the latency-provenance rows for one discipline: wire-transit
/// quantiles, the discipline's signature ordering phase, end-to-end
/// delivered latency, and the headline ordering tax. Quantiles come from
/// the merged histograms of every summary passed in (chaos disciplines
/// fold [`CHAOS_SEEDS`] campaigns; harness disciplines pass one run).
fn push_latency(snap: &mut BenchSnapshot, d: LatencyDiscipline, summaries: &[LatencySummary]) {
    let mut e2e = Histogram::new();
    let mut tax = Histogram::new();
    let mut wire = Histogram::new();
    let mut sig = Histogram::new();
    let sig_phase = d.signature_phase();
    for s in summaries {
        e2e.merge(&s.latency);
        tax.merge(&s.tax);
        if let Some(h) = s.per_phase.get(&PhaseId::Wire) {
            wire.merge(h);
        }
        if let Some(h) = s.per_phase.get(&sig_phase) {
            sig.merge(h);
        }
    }
    let name = d.name();
    for (metric, h) in [("wire", &wire), ("e2e", &e2e)] {
        snap.push(
            format!("latency.{name}.{metric}.p50_ms"),
            h.quantile(0.50).as_millis_f64(),
            "ms",
            Direction::LowerIsBetter,
            true,
        );
        snap.push(
            format!("latency.{name}.{metric}.p99_ms"),
            h.quantile(0.99).as_millis_f64(),
            "ms",
            Direction::LowerIsBetter,
            true,
        );
    }
    snap.push(
        format!("latency.{name}.{}.p99_ms", sig_phase.name()),
        sig.quantile(0.99).as_millis_f64(),
        "ms",
        Direction::LowerIsBetter,
        true,
    );
    snap.push(
        format!("latency.tax.{name}.mean_us"),
        tax.mean().as_micros() as f64,
        "us",
        Direction::LowerIsBetter,
        true,
    );
}

/// Collects the full snapshot. With `wall` false (the default) every
/// metric is virtual-time deterministic and the serialized snapshot is
/// byte-identical across reruns; with `wall` true, wall-clock throughput
/// rides along marked `det: false`.
pub fn collect(wall: bool) -> BenchSnapshot {
    let mut snap = BenchSnapshot::new(SNAPSHOT_SEED);

    // T7+ hot-path grid at fixed N.
    for (indexed, delta) in [(false, false), (false, true), (true, false), (true, true)] {
        let start = std::time::Instant::now();
        let p = t7plus::measure(GRID_N, indexed, delta);
        let wall_secs = start.elapsed().as_secs_f64();
        let prefix = format!(
            "t7plus.n{GRID_N}.{}.{}",
            if indexed { "indexed" } else { "scan" },
            if delta { "delta" } else { "full" },
        );
        push_point(&mut snap, &prefix, &p, wall_secs, wall);
    }

    // T7+ N-scaling: best cbcast configuration (indexed+delta), the
    // uncompressed-timestamp baseline (indexed+full), and the
    // constant-metadata discipline side by side. Full grows linearly
    // with N; delta stays small only in this sparse-sender regime (T7
    // shows it degrading under all-to-all); pccast is the fixed 33-byte
    // link tag at every N.
    for n in [4usize, 16, 64, 256, 1024, 4096] {
        let p = t7plus::measure(n, true, true);
        let prefix = format!("t7plus.scaling.n{n}");
        snap.push(
            format!("{prefix}.work_per_event"),
            p.work_per_event,
            "ops/ev",
            Direction::LowerIsBetter,
            true,
        );
        snap.push(
            format!("{prefix}.bytes_per_msg"),
            p.bytes_per_msg,
            "B/msg",
            Direction::LowerIsBetter,
            true,
        );
        let full = t7plus::measure(n, true, false);
        snap.push(
            format!("t7plus.scaling.full.n{n}.bytes_per_msg"),
            full.bytes_per_msg,
            "B/msg",
            Direction::LowerIsBetter,
            true,
        );
        let pc = t7plus::measure_pccast(n);
        let prefix = format!("t7plus.scaling.pccast.n{n}");
        snap.push(
            format!("{prefix}.bytes_per_msg"),
            pc.bytes_per_msg,
            "B/msg",
            Direction::LowerIsBetter,
            true,
        );
        snap.push(
            format!("{prefix}.linkbuf_peak"),
            pc.linkbuf_peak as f64,
            "msgs",
            Direction::LowerIsBetter,
            true,
        );
    }

    // Sampler-instrumented simulated groups.
    let causal = run_group(Discipline::Causal);
    push_group(&mut snap, "group.causal", &causal, wall);
    let token = run_group(Discipline::TotalToken);
    push_group(&mut snap, "group.token", &token, wall);

    // Chaos campaign cut (indexed + delta, the shipping configuration).
    let start = std::time::Instant::now();
    let mut delivered = 0u64;
    let mut events = 0u64;
    let mut violations = 0u64;
    let mut hold = Histogram::new();
    let mut stall_count = 0u64;
    let mut stall_max_age_ms = 0f64;
    let mut stall_worst_scc = 0u64;
    let mut cbcast_lat: Vec<LatencySummary> = Vec::new();
    for seed in 0..CHAOS_SEEDS {
        let r = chaos::run_seed(seed, true, true, BugKnobs::default());
        delivered += r.delivered_total;
        events += r.events_processed;
        violations += r.violations.len() as u64;
        hold.merge(&r.hold_hist);
        stall_count += r.stalls.stalls.len() as u64;
        stall_max_age_ms = stall_max_age_ms.max(r.stalls.max_age.as_millis_f64());
        stall_worst_scc = stall_worst_scc.max(r.stalls.worst_scc_size as u64);
        cbcast_lat.push(r.latency);
    }
    let chaos_wall = start.elapsed().as_secs_f64();
    snap.push(
        "chaos.delivered",
        delivered as f64,
        "msgs",
        Direction::HigherIsBetter,
        true,
    );
    snap.push(
        "chaos.events_processed",
        events as f64,
        "ev",
        Direction::LowerIsBetter,
        true,
    );
    snap.push(
        "chaos.violations",
        violations as f64,
        "count",
        Direction::LowerIsBetter,
        true,
    );
    snap.push(
        "chaos.hold_p50_ms",
        hold.quantile(0.50).as_millis_f64(),
        "ms",
        Direction::LowerIsBetter,
        true,
    );
    snap.push(
        "chaos.hold_p99_ms",
        hold.quantile(0.99).as_millis_f64(),
        "ms",
        Direction::LowerIsBetter,
        true,
    );
    // Wait-graph stall analytics at the horizon of each campaign: stall
    // candidates (cycles + wedge heads), the oldest blocked-edge age, and
    // the largest genuine cycle (0 on healthy runs). All deterministic,
    // so a regression that wedges delivery moves these before it moves
    // throughput.
    snap.push(
        "chaos.stall.count",
        stall_count as f64,
        "count",
        Direction::LowerIsBetter,
        true,
    );
    snap.push(
        "chaos.stall.max_age_ms",
        stall_max_age_ms,
        "ms",
        Direction::LowerIsBetter,
        true,
    );
    snap.push(
        "chaos.stall.worst_scc_size",
        stall_worst_scc as f64,
        "nodes",
        Direction::LowerIsBetter,
        true,
    );
    if wall {
        snap.push(
            "chaos.wall_secs",
            chaos_wall,
            "s",
            Direction::LowerIsBetter,
            false,
        );
    }

    // Latency-provenance rows per discipline (the ledger's phase
    // attribution): the chaos disciplines fold the same CHAOS_SEEDS
    // campaigns as above; abcast/token/fifo run the deterministic
    // harness-group workload. All virtual-time, all gated.
    push_latency(&mut snap, LatencyDiscipline::Cbcast, &cbcast_lat);
    let pccast_lat: Vec<LatencySummary> = (0..CHAOS_SEEDS)
        .map(|seed| {
            chaos::run_seed_d(
                seed,
                true,
                true,
                BugKnobs::default(),
                CausalDiscipline::Pccast,
            )
            .latency
        })
        .collect();
    push_latency(&mut snap, LatencyDiscipline::Pccast, &pccast_lat);
    for (d, discipline) in [
        (
            LatencyDiscipline::Abcast,
            Discipline::Total { sequencer: 0 },
        ),
        (LatencyDiscipline::Token, Discipline::TotalToken),
        (LatencyDiscipline::Fifo, Discipline::Fifo),
    ] {
        let s = latency::run_group_ledger(SNAPSHOT_SEED, GROUP_N, discipline);
        push_latency(&mut snap, d, &[s]);
    }

    snap
}

/// Renders a snapshot as the human-facing table `experiments bench`
/// prints.
pub fn render(snap: &BenchSnapshot) -> Table {
    let mut t = Table::new(
        format!(
            "BENCH — performance telemetry snapshot (schema {}, seed {})",
            snap.schema, snap.seed
        ),
        &["metric", "value", "unit", "better", "deterministic"],
    );
    let mut ms: Vec<_> = snap.metrics.iter().collect();
    ms.sort_by(|a, b| a.name.cmp(&b.name));
    for m in ms {
        t.row(vec![
            m.name.clone().into(),
            m.value.into(),
            m.unit.clone().into(),
            match m.dir {
                Direction::LowerIsBetter => "lower",
                Direction::HigherIsBetter => "higher",
            }
            .into(),
            if m.det { "yes" } else { "no (wall)" }.into(),
        ]);
    }
    t.note("deterministic metrics are exact under the seed and gated by");
    t.note("`experiments benchdiff`; wall-clock rows (--wall) are host noise.");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry;

    #[test]
    fn snapshot_covers_every_workload() {
        let s = collect(false);
        for name in [
            "t7plus.n64.scan.full.work_per_event",
            "t7plus.n64.indexed.delta.bytes_per_msg",
            "t7plus.scaling.n256.work_per_event",
            "t7plus.scaling.n4096.bytes_per_msg",
            "t7plus.scaling.pccast.n256.bytes_per_msg",
            "t7plus.scaling.pccast.n4096.bytes_per_msg",
            "group.causal.deliveries_per_vsec",
            "group.causal.hold_p99_ms",
            "group.causal.ts.cbcast.holdback_peak",
            "group.causal.ts.cbcast.stability_lag_peak",
            "group.token.deliveries_per_vsec",
            "group.token.ts.token.queued_peak",
            "chaos.delivered",
            "chaos.hold_p99_ms",
            "chaos.stall.count",
            "chaos.stall.max_age_ms",
            "chaos.stall.worst_scc_size",
        ] {
            assert!(s.get(name).is_some(), "missing {name}");
        }
        // Clean campaigns never end in a genuine wait cycle.
        assert_eq!(s.get("chaos.stall.worst_scc_size").unwrap().value, 0.0);
        // Everything multicast was delivered in the causal group.
        let delivered = s.get("group.causal.delivered").unwrap().value;
        assert_eq!(
            delivered,
            (GROUP_N as u32 * GROUP_MSGS * GROUP_N as u32) as f64
        );
        // No chaos violations in the shipping configuration.
        assert_eq!(s.get("chaos.violations").unwrap().value, 0.0);
        // The scaling contrast the pccast rows exist to show: constant
        // ordering metadata from N=256 to N=4096 (within 10%), while
        // cbcast's delta-encoded timestamps keep growing with N.
        let pc256 = s
            .get("t7plus.scaling.pccast.n256.bytes_per_msg")
            .unwrap()
            .value;
        let pc4096 = s
            .get("t7plus.scaling.pccast.n4096.bytes_per_msg")
            .unwrap()
            .value;
        assert!(
            (pc4096 - pc256).abs() <= 0.10 * pc256,
            "pccast bytes/msg not flat: {pc256} -> {pc4096}"
        );
        let cb256 = s
            .get("t7plus.scaling.full.n256.bytes_per_msg")
            .unwrap()
            .value;
        let cb4096 = s
            .get("t7plus.scaling.full.n4096.bytes_per_msg")
            .unwrap()
            .value;
        assert!(
            cb4096 > 10.0 * cb256,
            "full-timestamp bytes/msg should grow with N: {cb256} -> {cb4096}"
        );
        // pccast undercuts even the delta-compressed sparse-regime rows.
        let delta4096 = s.get("t7plus.scaling.n4096.bytes_per_msg").unwrap().value;
        assert!(pc4096 < delta4096, "pccast must undercut cbcast at N=4096");
        // Latency-provenance rows: every discipline reports wire,
        // signature-phase, end-to-end and ordering-tax metrics.
        for (d, sig) in [
            ("cbcast", "causal"),
            ("pccast", "reorder"),
            ("abcast", "order"),
            ("token", "token"),
            ("fifo", "fifo"),
        ] {
            for name in [
                format!("latency.{d}.wire.p50_ms"),
                format!("latency.{d}.wire.p99_ms"),
                format!("latency.{d}.e2e.p50_ms"),
                format!("latency.{d}.e2e.p99_ms"),
                format!("latency.{d}.{sig}.p99_ms"),
                format!("latency.tax.{d}.mean_us"),
            ] {
                assert!(s.get(&name).is_some(), "missing {name}");
            }
        }
        // Total order costs latency over the FIFO floor: the tax rows
        // order as the paper says they must.
        let tax = |d: &str| s.get(&format!("latency.tax.{d}.mean_us")).unwrap().value;
        assert!(
            tax("abcast") > tax("fifo"),
            "abcast tax {} should exceed fifo tax {}",
            tax("abcast"),
            tax("fifo")
        );
        // The default snapshot is fully deterministic.
        assert!(s.metrics.iter().all(|m| m.det));
    }

    #[test]
    fn default_snapshot_is_byte_identical_across_reruns() {
        let a = collect(false).to_json();
        let b = collect(false).to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn wall_metrics_only_appear_on_request() {
        let s = collect(false);
        assert!(s.get("group.causal.wall_secs").is_none());
        // (collect(true) is exercised by the CLI; avoiding a third full
        // collection keeps this suite fast.)
    }

    #[test]
    fn snapshot_round_trips_and_self_diffs_clean() {
        let s = collect(false);
        let json = s.to_json();
        let back = telemetry::BenchSnapshot::parse(&json).expect("parses");
        assert_eq!(back.to_json(), json);
        let report = telemetry::diff(&s, &back, telemetry::DEFAULT_GATE_PCT);
        assert!(report.regressions.is_empty(), "{:?}", report.regressions);
    }
}
