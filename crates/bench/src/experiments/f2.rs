//! F2 — Figure 2: the shared-database hidden channel.
//!
//! Sweeps seeds over the shop-floor scenario and reports how often the
//! observer delivers "stop" before "start" under causal multicast, how
//! often the naive (delivery-order) state ends wrong, and that the
//! version-checked state never does.

use crate::table::Table;
use apps::shopfloor::run_shopfloor;
use simnet::net::{LatencyModel, NetConfig};
use simnet::time::SimDuration;
use simnet::topology::Topology;

fn figure2_net() -> NetConfig {
    const W: f64 = 30.0;
    let dist = vec![
        vec![0.0, W, 1.0, 1.0, W],
        vec![W, 0.0, 1.0, 1.0, W],
        vec![1.0, 1.0, 0.0, 1.0, W],
        vec![1.0, 1.0, 1.0, 0.0, W],
        vec![W, W, W, W, 0.0],
    ];
    NetConfig {
        latency: LatencyModel::Spatial {
            per_unit: SimDuration::from_micros(400),
            jitter: SimDuration::from_micros(300),
        },
        topology: Topology::explicit(dist),
        ..NetConfig::default()
    }
}

/// Runs the sweep over `seeds` seeds.
pub fn run(seeds: u64) -> Table {
    let mut misordered = 0u64;
    let mut naive_wrong = 0u64;
    let mut versioned_wrong = 0u64;
    let mut stale_rejections = 0u64;
    for seed in 0..seeds {
        let r = run_shopfloor(seed, figure2_net());
        if r.misordered {
            misordered += 1;
        }
        if r.naive_final_stopped != Some(true) {
            naive_wrong += 1;
        }
        if r.versioned_final_stopped != Some(true) {
            versioned_wrong += 1;
        }
        stale_rejections += r.stale_rejected;
    }
    let mut t = Table::new(
        "F2 — Figure 2: hidden channel (shared database), start/stop lot",
        &[
            "observer strategy",
            "runs",
            "misordered",
            "wrong final state",
        ],
    );
    t.row(vec![
        "cbcast delivery order (naive)".into(),
        seeds.into(),
        misordered.into(),
        naive_wrong.into(),
    ]);
    t.row(vec![
        "db version numbers (state-level)".into(),
        seeds.into(),
        misordered.into(),
        versioned_wrong.into(),
    ]);
    t.note(format!(
        "the versioned observer rejected {stale_rejections} stale updates; \
         CATOCS cannot see the database ordering (\"can't say for sure\")"
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let t = run(40);
        let naive = t.get_f64(0, 3);
        let versioned = t.get_f64(1, 3);
        let misordered = t.get_f64(0, 2);
        assert!(misordered > 0.0, "anomaly must occur");
        assert!(naive > 0.0, "naive observer must be corrupted sometimes");
        assert_eq!(versioned, 0.0, "versioned observer is never wrong");
    }
}
