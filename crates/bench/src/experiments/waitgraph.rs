//! `experiments waitgraph` — ranked stall report from the live
//! wait-graph analytics.
//!
//! Re-runs one chaos seed (optionally with an injected bug knob, in
//! either causal discipline) and prints the wait-graph analysis sampled
//! on the 50 ms telemetry cadence: every candidate stall — a genuine
//! wait cycle or a wedge head the rest of the graph drains into — ranked
//! by severity (worst wait age × blocked descendants × processes
//! involved × persistence), each with a representative path through the
//! graph. `--at MS` selects the snapshot at or before that virtual time;
//! the default is the final snapshot at the horizon.

use crate::experiments::chaos;
use catocs::group::CausalDiscipline;
use catocs::vsync::BugKnobs;
use simnet::time::SimTime;
use std::fmt::Write as _;

/// Builds the report for one seed. Runs the indexed-holdback /
/// delta-timestamp cell, like `explain`.
pub fn run(seed: u64, at_ms: Option<u64>, knobs: BugKnobs, discipline: CausalDiscipline) -> String {
    let n = chaos::size_for_seed(seed);
    let r = chaos::run_seed_d(seed, true, true, knobs, discipline);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "WAITGRAPH — seed {seed}, n={n}, indexed holdback, delta timestamps ({})",
        discipline.name()
    );
    if !r.violations.is_empty() {
        let _ = writeln!(out, "violations: {}", r.violations.len());
    }
    let Some((idx, (at, snap))) = (match at_ms {
        Some(ms) => {
            let want = SimTime::from_millis(ms);
            r.stall_timeline
                .iter()
                .enumerate()
                .take_while(|(_, (t, _))| *t <= want)
                .last()
                .or_else(|| r.stall_timeline.iter().enumerate().next())
        }
        None => r.stall_timeline.iter().enumerate().next_back(),
    }) else {
        let _ = writeln!(out, "no wait-graph snapshots were taken (empty run)");
        return out;
    };
    let _ = writeln!(
        out,
        "snapshot {}/{} at {} ms: {} stall candidate(s), max wait age {} ms, worst cycle {} node(s)",
        idx + 1,
        r.stall_timeline.len(),
        at.as_micros() / 1000,
        snap.stalls.len(),
        snap.max_age.as_millis_f64(),
        snap.worst_scc_size
    );
    if snap.stalls.is_empty() {
        let _ = writeln!(out, "no stalls: every blocked wait is draining");
        return out;
    }
    for (i, s) in snap.stalls.iter().enumerate() {
        let _ = writeln!(out, "#{} {}", i + 1, s.summary());
        let _ = writeln!(out, "   path: {}", s.render_path());
    }
    let persistent = snap.persistent().count();
    let _ = writeln!(
        out,
        "{persistent} persistent (seen on {}+ consecutive snapshots), {} transient",
        catocs::waitgraph::PERSIST_SNAPSHOTS,
        snap.stalls.len() - persistent
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance scenario: the injected wedged flush must surface
    /// as the top-ranked stall, with a path naming the flush phase of
    /// the suspected coordinator.
    #[test]
    fn wedged_flush_ranks_the_flush_cycle_first() {
        let knobs = BugKnobs {
            no_flush_retry: true,
            ..BugKnobs::default()
        };
        let out = run(2, None, knobs, CausalDiscipline::Cbcast);
        let first = out
            .lines()
            .find(|l| l.starts_with("#1 "))
            .expect("a ranked stall");
        assert!(first.contains("cycle"), "{out}");
        let path = out
            .lines()
            .find(|l| l.trim_start().starts_with("path:"))
            .expect("a rendered path");
        assert!(path.contains("flush@P"), "{out}");
    }

    /// Clean campaigns can end with persistent *wedges* (a
    /// partition-blocked run chases messages that will never arrive) but
    /// never a genuine wait cycle.
    #[test]
    fn clean_seed_reports_no_wait_cycle() {
        let out = run(0, None, BugKnobs::default(), CausalDiscipline::Cbcast);
        assert!(out.contains("worst cycle 0 node(s)"), "{out}");
        assert!(!out.contains("cycle ["), "{out}");
    }

    #[test]
    fn at_selects_an_earlier_snapshot() {
        let knobs = BugKnobs {
            no_flush_retry: true,
            ..BugKnobs::default()
        };
        let early = run(2, Some(0), knobs, CausalDiscipline::Cbcast);
        assert!(early.contains("snapshot 1/"), "{early}");
        let late = run(2, None, knobs, CausalDiscipline::Cbcast);
        assert_ne!(early, late);
    }

    #[test]
    fn output_is_deterministic_across_reruns() {
        let knobs = BugKnobs {
            no_flush_retry: true,
            ..BugKnobs::default()
        };
        assert_eq!(
            run(2, None, knobs, CausalDiscipline::Cbcast),
            run(2, None, knobs, CausalDiscipline::Cbcast)
        );
    }

    #[test]
    fn pccast_discipline_is_covered() {
        let out = run(1, None, BugKnobs::default(), CausalDiscipline::Pccast);
        assert!(out.contains("(pccast)"), "{out}");
        assert!(out.contains("snapshot "), "{out}");
    }
}
