//! T14 — §4.2: global predicate evaluation without CATOCS.
//!
//! A Chandy–Lamport snapshot over plain FIFO channels evaluates two
//! stable predicates the paper cites: **token loss** (a token circulates
//! a ring; the cut counts tokens in process states *and* in channels)
//! and **termination** (message-counting over the cut). No ordered
//! multicast anywhere — "such a protocol is useful both for checking
//! global predicates and for failure recovery."

use crate::table::Table;
use simnet::net::NetConfig;
use simnet::process::{Ctx, Process, ProcessId, TimerId};
use simnet::sim::SimBuilder;
use simnet::time::{SimDuration, SimTime};
use statelevel::predicate::TerminationDetector;
use statelevel::snapshot::{SnapshotAction, SnapshotEngine};

/// Messages of the scenario.
#[derive(Clone, Debug)]
pub enum Msg {
    /// The circulating token.
    Token,
    /// A unit of diffusing work with remaining hops.
    Work(u32),
    /// Chandy–Lamport marker.
    Marker,
    /// A node's completed local snapshot, sent to the collector.
    Collect {
        /// Reporting node.
        from: usize,
        /// Token held in the recorded state?
        token_in_state: bool,
        /// Tokens recorded in incoming channels.
        tokens_in_channels: u64,
        /// Was the node active (work queued)?
        active: bool,
        /// Work messages sent / received at the cut.
        sent: u64,
        recv: u64,
    },
}

/// Recorded local state for the snapshot.
#[derive(Clone, Debug)]
struct NodeState {
    has_token: bool,
    active: bool,
    sent: u64,
    recv: u64,
}

const FORWARD: TimerId = TimerId(0);
const SNAPSHOT: TimerId = TimerId(1);

struct RingNode {
    me: usize,
    n: usize,
    has_token: bool,
    /// Drop the token (never forward) at/after this instant.
    lose_at: Option<SimTime>,
    sent_work: u64,
    recv_work: u64,
    pending_work: u32,
    engine: SnapshotEngine<NodeState, bool>, // channel msg = "is token"
    snapshot_at: Option<SimTime>,
    reported: bool,
}

impl RingNode {
    fn state(&self) -> NodeState {
        NodeState {
            has_token: self.has_token,
            active: self.pending_work > 0,
            sent: self.sent_work,
            recv: self.recv_work,
        }
    }

    fn send_markers(&self, ctx: &mut Ctx<'_, Msg>) {
        for k in 0..self.n {
            if k != self.me {
                ctx.send(ProcessId(k), Msg::Marker);
            }
        }
    }

    fn maybe_report(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.reported {
            return;
        }
        if let Some(snap) = self.engine.completed() {
            self.reported = true;
            let tokens_in_channels: u64 = snap
                .channels
                .values()
                .map(|v| v.iter().filter(|&&is_token| is_token).count() as u64)
                .sum();
            ctx.send(
                ProcessId(self.n), // the collector
                Msg::Collect {
                    from: self.me,
                    token_in_state: snap.state.has_token,
                    tokens_in_channels,
                    active: snap.state.active,
                    sent: snap.state.sent,
                    recv: snap.state.recv,
                },
            );
        }
    }
}

impl Process<Msg> for RingNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.has_token {
            ctx.set_timer(FORWARD, SimDuration::from_millis(20));
        }
        if self.me == 0 {
            // Kick off the diffusing computation.
            self.sent_work += 1;
            ctx.send(ProcessId(1 % self.n), Msg::Work(6));
        }
        if let Some(at) = self.snapshot_at {
            ctx.set_timer(SNAPSHOT, at.since(SimTime::ZERO));
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: ProcessId, msg: Msg) {
        match msg {
            Msg::Token => {
                self.engine.on_app_message(from.0, &true);
                self.has_token = true;
                ctx.set_timer(FORWARD, SimDuration::from_millis(20));
            }
            Msg::Work(k) => {
                self.engine.on_app_message(from.0, &false);
                self.recv_work += 1;
                if k > 0 {
                    self.pending_work += 1;
                    // Forward one hop after a little think time; modelled
                    // synchronously for determinism.
                    self.pending_work -= 1;
                    self.sent_work += 1;
                    ctx.send(ProcessId((self.me + 1) % self.n), Msg::Work(k - 1));
                }
            }
            Msg::Marker => {
                let state = self.state();
                let action = self.engine.on_marker(from.0, move || state);
                if action == SnapshotAction::SendMarkers {
                    self.send_markers(ctx);
                }
                self.maybe_report(ctx);
            }
            Msg::Collect { .. } => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, t: TimerId) {
        match t {
            FORWARD => {
                if !self.has_token {
                    return;
                }
                if let Some(lose) = self.lose_at {
                    if ctx.now() >= lose {
                        // The token evaporates: the stable predicate
                        // "token lost" becomes true.
                        self.has_token = false;
                        ctx.mark("token lost");
                        return;
                    }
                }
                self.has_token = false;
                ctx.send(ProcessId((self.me + 1) % self.n), Msg::Token);
            }
            SNAPSHOT => {
                if self.engine.initiate(self.state()) == SnapshotAction::SendMarkers {
                    self.send_markers(ctx);
                }
                self.maybe_report(ctx);
            }
            _ => {}
        }
    }
}

/// The collector: aggregates Collect reports.
struct Collector {
    n: usize,
    tokens: u64,
    reports: usize,
    term: TerminationDetector,
    /// Evaluated termination (None until all reports in).
    pub terminated: Option<bool>,
}

impl Process<Msg> for Collector {
    fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _f: ProcessId, msg: Msg) {
        if let Msg::Collect {
            from,
            token_in_state,
            tokens_in_channels,
            active,
            sent,
            recv,
        } = msg
        {
            self.reports += 1;
            self.tokens += tokens_in_channels + u64::from(token_in_state);
            self.term.report(from, active, sent, recv);
            self.terminated = self.term.terminated();
            let _ = self.n;
        }
    }
}

/// Result of one snapshot run.
#[derive(Clone, Debug)]
pub struct SnapResult {
    /// Tokens counted on the cut (states + channels).
    pub tokens_found: u64,
    /// Nodes that reported.
    pub reports: usize,
    /// Termination verdict.
    pub terminated: Option<bool>,
    /// Messages on the wire.
    pub msgs: u64,
}

/// Runs a ring of `n` with one token; optionally loses the token at
/// 300 ms; snapshots at `snapshot_ms`.
pub fn run_snapshot(seed: u64, n: usize, lose_token: bool, snapshot_ms: u64) -> SnapResult {
    // Chandy–Lamport assumes FIFO channels.
    let mut net = NetConfig::ideal(SimDuration::from_millis(2));
    net.fifo_links = true;
    let mut sim = SimBuilder::new(seed).net(net).build::<Msg>();
    for me in 0..n {
        sim.add_process(RingNode {
            me,
            n,
            has_token: me == 0,
            lose_at: lose_token.then(|| SimTime::from_millis(300)),
            sent_work: 0,
            recv_work: 0,
            pending_work: 0,
            engine: SnapshotEngine::new(me, n),
            snapshot_at: (me == 0).then(|| SimTime::from_millis(snapshot_ms)),
            reported: false,
        });
    }
    sim.add_process(Collector {
        n,
        tokens: 0,
        reports: 0,
        term: TerminationDetector::new(n),
        terminated: None,
    });
    sim.run_until(SimTime::from_secs(3));
    let c: &Collector = sim.process(ProcessId(n)).expect("collector");
    SnapResult {
        tokens_found: c.tokens,
        reports: c.reports,
        terminated: c.terminated,
        msgs: sim.metrics().counter("net.sent"),
    }
}

/// Runs the table.
pub fn run() -> Table {
    let mut t = Table::new(
        "T14 — §4.2: stable predicates on a Chandy–Lamport cut (ring of 5, no CATOCS)",
        &[
            "scenario",
            "tokens on cut",
            "terminated?",
            "reports",
            "messages",
        ],
    );
    for (label, lose, at) in [
        ("healthy ring, late cut", false, 600u64),
        ("token lost at 300ms", true, 600),
        ("healthy ring, early cut", false, 40),
    ] {
        let r = run_snapshot(9, 5, lose, at);
        t.row(vec![
            label.into(),
            r.tokens_found.into(),
            match r.terminated {
                Some(true) => "yes",
                Some(false) => "no",
                None => "incomplete",
            }
            .into(),
            r.reports.into(),
            r.msgs.into(),
        ]);
    }
    t.note("token counting sees tokens in *channels* too (the consistent-cut");
    t.note("property); termination uses message counting — both detected on");
    t.note("plain FIFO links, no ordered multicast involved.");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_ring_keeps_its_token() {
        let r = run_snapshot(9, 5, false, 600);
        assert_eq!(r.tokens_found, 1, "{r:?}");
        assert_eq!(r.reports, 5);
    }

    #[test]
    fn lost_token_detected() {
        let r = run_snapshot(9, 5, true, 600);
        assert_eq!(r.tokens_found, 0, "{r:?}");
    }

    #[test]
    fn termination_detected_after_work_drains() {
        let r = run_snapshot(9, 5, false, 600);
        assert_eq!(r.terminated, Some(true));
    }

    #[test]
    fn early_cut_sees_activity() {
        let r = run_snapshot(9, 5, false, 40);
        // Either a work message was in flight (sent != recv on the cut)
        // or a node was active — not terminated yet. With the 6-hop
        // budget and 2ms links, work finishes ~12ms in; 40ms may already
        // be done on some seeds, so accept both but require a verdict.
        assert!(r.terminated.is_some());
    }
}
