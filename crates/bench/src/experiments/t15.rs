//! T15 — §4.5: replication in the large.
//!
//! A lazily replicated global name service: binds are accepted locally
//! (availability first), conflicts resolved by the deterministic undo
//! rule, convergence by anti-entropy. We sweep replica counts and loss,
//! and set the measured behaviour against §4.5's analytic cost of
//! running the directory over a wide-area causal group.

use crate::table::Table;
use apps::naming::{catocs_directory_state, run_naming};

/// Runs the sweep.
pub fn run(sizes: &[usize]) -> Table {
    let mut t = Table::new(
        "T15 — §4.5 replication in the large: lazy name service (40 names, dual-bound)",
        &[
            "replicas",
            "loss",
            "converged",
            "undos",
            "local binds",
            "messages",
            "CATOCS comm-state (KB)",
        ],
    );
    for &n in sizes {
        for loss in [0.0, 0.1] {
            let r = run_naming(5, n, 40, loss);
            t.row(vec![
                n.into(),
                format!("{:.0}%", loss * 100.0).into(),
                if r.converged { "yes" } else { "NO" }.into(),
                r.undos.into(),
                r.local_binds.into(),
                r.msgs.into(),
                (catocs_directory_state(n, 8, 512) as f64 / 1024.0).into(),
            ]);
        }
    }
    t.note("binds never wait on the network; duplicate bindings are undone");
    t.note("deterministically ('tolerating the occasional undo ... seems far");
    t.note("preferable in practice than having directory operations");
    t.note("significantly delayed by message losses or reorderings', §4.5).");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convergence_with_undos_everywhere() {
        let t = run(&[5]);
        let conv = t.col("converged").unwrap();
        for r in &t.rows {
            assert_eq!(r[conv].to_string(), "yes");
        }
        assert!(t.get_f64(0, 3) > 0.0, "conflicts existed and were undone");
    }
}
