//! `experiments explain` — the blocked-on explainer.
//!
//! Re-runs one chaos seed (optionally with an injected bug knob) and
//! walks every surviving process's holdback wait-graph: for each message
//! still buffered at the horizon, which causal predecessors it waits on
//! and why each is absent — still held itself, parked behind a broken
//! delta decode chain, being chased via NACK, or never deliverable
//! because its sender was removed beyond the flush cut. The output is
//! deterministic for a given seed/knob combination.
//!
//! Under `--discipline pccast` the same walk covers the per-link reorder
//! buffers: a blocked copy additionally reports which link *position* its
//! cursor waits for and why that slot is unfilled (ARQ gap, pending skip
//! marker, or a severed link). When `--msg` names a message that sits in
//! a detected stall component, the report names that component and its
//! representative cycle path.

use crate::experiments::chaos;
use crate::experiments::latency::{Chatter, GROUP_DROP, GROUP_HORIZON};
use catocs::cbcast::BlockedReport;
use catocs::endpoint::{Discipline, Endpoint};
use catocs::group::{CausalDiscipline, GroupConfig, MsgId};
use catocs::harness::{spawn_group, GroupNode};
use catocs::vsync::BugKnobs;
use catocs::waitgraph::WaitNode;
use catocs::wire::Wire;
use simnet::net::NetConfig;
use simnet::sim::SimBuilder;
use simnet::time::{SimDuration, SimTime};
use std::fmt::Write as _;

/// Caps that keep a deeply wedged queue readable: a message missing a
/// long run of predecessors, or a process holding dozens of messages,
/// is summarized rather than enumerated.
const MAX_MSGS_PER_PROC: usize = 8;
const MAX_WAITS_PER_MSG: usize = 6;

/// Renders one process's blocked messages into `out`, restricted to
/// `only` when given. Returns how many messages matched the filter.
pub(crate) fn render_reports(
    out: &mut String,
    who: usize,
    reports: &[BlockedReport],
    frozen: bool,
    only: Option<MsgId>,
) -> usize {
    let selected: Vec<&BlockedReport> = reports
        .iter()
        .filter(|rep| only.is_none_or(|want| rep.msg == want))
        .collect();
    for rep in selected.iter().take(MAX_MSGS_PER_PROC) {
        let _ = writeln!(
            out,
            "P{who} holds m{}.{} (arrived {}us); it waits on:",
            rep.msg.sender,
            rep.msg.seq,
            rep.arrived_at.as_micros()
        );
        if rep.waits.is_empty() && rep.link_waits.is_empty() {
            let gate = if frozen {
                "delivery frozen by an in-progress flush"
            } else {
                "queued for delivery"
            };
            let _ = writeln!(out, "  nothing — all causal predecessors present; {gate}");
        }
        for w in rep.waits.iter().take(MAX_WAITS_PER_MSG) {
            let _ = writeln!(out, "  m{}.{} — {}", w.id.sender, w.id.seq, w.status);
        }
        if rep.waits.len() > MAX_WAITS_PER_MSG {
            let _ = writeln!(
                out,
                "  ... and {} more missing predecessors",
                rep.waits.len() - MAX_WAITS_PER_MSG
            );
        }
        // pccast: positional waits on per-link reorder cursors.
        for lw in rep.link_waits.iter().take(MAX_WAITS_PER_MSG) {
            let _ = writeln!(out, "  link p{} pos {} — {}", lw.from, lw.pos, lw.status);
        }
        if rep.link_waits.len() > MAX_WAITS_PER_MSG {
            let _ = writeln!(
                out,
                "  ... and {} more blocked link cursors",
                rep.link_waits.len() - MAX_WAITS_PER_MSG
            );
        }
    }
    if selected.len() > MAX_MSGS_PER_PROC {
        let _ = writeln!(
            out,
            "P{who}: ... and {} more blocked messages",
            selected.len() - MAX_MSGS_PER_PROC
        );
    }
    selected.len()
}

/// Parses a message id of the form `m0.3` (or bare `0.3`).
pub fn parse_msg(s: &str) -> Option<MsgId> {
    let s = s.strip_prefix('m').unwrap_or(s);
    let (sender, seq) = s.split_once('.')?;
    Some(MsgId {
        sender: sender.parse().ok()?,
        seq: seq.parse().ok()?,
    })
}

/// Builds the explainer report for one seed. `msg` restricts the output
/// to a single blocked message; `knobs` re-injects a known bug. Runs the
/// indexed-holdback/delta-timestamp cell — the full-featured
/// configuration, where every wait status can occur.
pub fn run(seed: u64, msg: Option<MsgId>, knobs: BugKnobs) -> String {
    run_d(seed, msg, knobs, CausalDiscipline::Cbcast)
}

/// [`run`], in the given causal discipline. Under pccast the blocked
/// reports carry positional link waits instead of (or alongside)
/// message-identified predecessor waits.
pub fn run_d(
    seed: u64,
    msg: Option<MsgId>,
    knobs: BugKnobs,
    discipline: CausalDiscipline,
) -> String {
    let r = chaos::run_seed_d(seed, true, true, knobs, discipline);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "EXPLAIN — seed {seed}, n={}, indexed holdback, delta timestamps ({})",
        chaos::size_for_seed(seed),
        discipline.name()
    );
    if r.violations.is_empty() {
        let _ = writeln!(out, "invariants: OK");
    } else {
        let _ = writeln!(out, "violations ({}):", r.violations.len());
        for v in &r.violations {
            let _ = writeln!(out, "  {v}");
        }
    }
    for log in &r.logs {
        if log.alive_at_end && log.frozen {
            let _ = writeln!(
                out,
                "P{} ended frozen: delivery blackout, its flush never completed",
                log.who
            );
        }
    }
    if r.blocked_reports.is_empty() {
        let _ = writeln!(
            out,
            "no messages were still blocked in any holdback queue at the horizon"
        );
        return out;
    }
    let mut matched = 0;
    for (who, reports) in &r.blocked_reports {
        let frozen = r.logs.iter().any(|l| l.who == *who && l.frozen);
        matched += render_reports(&mut out, *who, reports, frozen, msg);
    }
    if let Some(want) = msg {
        if matched == 0 {
            let _ = writeln!(
                out,
                "m{}.{} is not blocked in any surviving holdback queue at the horizon",
                want.sender, want.seq
            );
        } else if let Some((rank, stall)) = {
            // Holders of the queried message: if a holder process is
            // itself a member of a stall component (frozen mid-flush,
            // say), everything it holds is blocked behind that stall.
            let holders: Vec<usize> = r
                .blocked_reports
                .iter()
                .filter(|(_, reps)| reps.iter().any(|rep| rep.msg == want))
                .map(|(who, _)| *who)
                .collect();
            r.stalls.stalls.iter().enumerate().find(|(_, s)| {
                s.nodes.contains(&WaitNode::Msg(want))
                    || s.path.iter().any(|st| st.node == WaitNode::Msg(want))
                    || holders
                        .iter()
                        .any(|&p| s.nodes.contains(&WaitNode::Proc(p)))
            })
        } {
            let in_component = stall.nodes.contains(&WaitNode::Msg(want));
            let _ = writeln!(
                out,
                "m{}.{} is {} stall component #{} (of {} ranked):",
                want.sender,
                want.seq,
                if in_component {
                    "part of"
                } else {
                    "blocked behind"
                },
                rank + 1,
                r.stalls.stalls.len()
            );
            let _ = writeln!(out, "  {}", stall.summary());
            let _ = writeln!(out, "  path: {}", stall.render_path());
        } else {
            let _ = writeln!(
                out,
                "m{}.{} is blocked but not part of any ranked stall component \
                 (its waits resolve once upstream traffic drains)",
                want.sender, want.seq
            );
        }
    }
    out
}

/// Which total-order discipline [`run_total`] explains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TotalKind {
    /// Fixed-sequencer abcast (`--discipline abcast`).
    Sequencer,
    /// Token-ring total order (`--discipline token`).
    Token,
}

/// The explainer for the total-order disciplines: runs the same
/// deterministic harness-group workload the latency report uses, stops
/// at the horizon, and asks each endpoint what its undelivered messages
/// wait on — the missing order slot (abcast) or the rotation/token
/// holder that fills the gap (token). The causes are the ledger's
/// `order` and `token` phases, read from live endpoint state.
///
/// `at` picks the snapshot time (`--at MS`); by default the full-horizon
/// state is shown, where a healthy group has usually drained — pick a
/// mid-run instant to watch the order forming.
pub fn run_total(seed: u64, msg: Option<MsgId>, at: Option<SimTime>, kind: TotalKind) -> String {
    let n = chaos::size_for_seed(seed);
    let horizon = at.unwrap_or(GROUP_HORIZON);
    let discipline = match kind {
        TotalKind::Sequencer => Discipline::Total { sequencer: 0 },
        TotalKind::Token => Discipline::TotalToken,
    };
    let mut sim = SimBuilder::new(seed)
        .net(NetConfig::lossy_lan(GROUP_DROP))
        .build::<Wire<u64>>();
    let pids = spawn_group(
        &mut sim,
        n,
        discipline,
        GroupConfig::default(),
        Some(SimDuration::from_millis(20)),
        |_| Chatter::standard(),
    );
    sim.run_until(horizon);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "EXPLAIN — seed {seed}, n={n}, harness group at {}ms ({})",
        horizon.as_millis(),
        match kind {
            TotalKind::Sequencer => "abcast, sequencer P0",
            TotalKind::Token => "token total order",
        }
    );
    if kind == TotalKind::Token {
        // Where the token is tells the reader who everyone else queues
        // behind.
        let holder = pids.iter().enumerate().find_map(|(i, pid)| {
            let node: &GroupNode<u64, Chatter> = sim.process(*pid)?;
            match node.endpoint() {
                Endpoint::TotalToken(e) if e.holding_token() => Some(i),
                _ => None,
            }
        });
        match holder {
            Some(p) => {
                let _ = writeln!(out, "token holder at the snapshot: P{p}");
            }
            None => {
                let _ = writeln!(out, "token in flight at the snapshot (no member holds it)");
            }
        }
    }
    let mut matched = 0usize;
    let mut blocked_total = 0usize;
    for (i, pid) in pids.iter().enumerate() {
        let Some(node) = sim.process::<GroupNode<u64, Chatter>>(*pid) else {
            continue;
        };
        let (blocked, queued_since) = match node.endpoint() {
            Endpoint::Total(e) => (e.order_blocked(), None),
            Endpoint::TotalToken(e) => (
                e.order_blocked(),
                e.oldest_queued_since().filter(|_| !e.holding_token()),
            ),
            _ => continue,
        };
        blocked_total += blocked.len();
        let selected: Vec<_> = blocked
            .iter()
            .filter(|b| msg.is_none_or(|want| b.msg == want))
            .collect();
        matched += selected.len();
        for b in selected.iter().take(MAX_MSGS_PER_PROC) {
            let _ = writeln!(
                out,
                "P{i} holds m{}.{} (arrived {}us{}); it waits on:",
                b.msg.sender,
                b.msg.seq,
                b.arrived_at.as_micros(),
                match b.gseq {
                    Some(g) => format!(", assigned order slot {g}"),
                    None => String::new(),
                }
            );
            let cause = match kind {
                TotalKind::Sequencer => "order",
                TotalKind::Token => "token",
            };
            match (b.slot_msg, b.gseq) {
                (Some(slot_msg), _) => {
                    let _ = writeln!(
                        out,
                        "  order slot {} = m{}.{} — slot's data not arrived here [{cause}]",
                        b.missing_slot, slot_msg.sender, slot_msg.seq
                    );
                }
                (None, Some(_)) => {
                    let _ = writeln!(
                        out,
                        "  order slot {} — {} [{cause}]",
                        b.missing_slot,
                        match kind {
                            TotalKind::Sequencer =>
                                "no assignment for that slot has arrived from sequencer P0",
                            TotalKind::Token =>
                                "awaiting the rotation (or NACK repair) that fills it",
                        }
                    );
                }
                (None, None) => {
                    let _ = writeln!(
                        out,
                        "  its own order assignment — not yet arrived from sequencer P0 [{cause}]"
                    );
                }
            }
        }
        if selected.len() > MAX_MSGS_PER_PROC {
            let _ = writeln!(
                out,
                "P{i}: ... and {} more blocked messages",
                selected.len() - MAX_MSGS_PER_PROC
            );
        }
        if let Some(since) = queued_since {
            let _ = writeln!(
                out,
                "P{i} has submissions queued awaiting the token since {}us [token]",
                since.as_micros()
            );
        }
    }
    if blocked_total == 0 {
        let _ = writeln!(
            out,
            "no messages were awaiting a total-order slot at the snapshot"
        );
    } else if msg.is_some() && matched == 0 {
        let want = msg.unwrap();
        let _ = writeln!(
            out,
            "m{}.{} is not awaiting a total-order slot at the snapshot",
            want.sender, want.seq
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_message_ids() {
        assert_eq!(parse_msg("m0.3"), Some(MsgId { sender: 0, seq: 3 }));
        assert_eq!(parse_msg("2.17"), Some(MsgId { sender: 2, seq: 17 }));
        assert_eq!(parse_msg("m2"), None);
        assert_eq!(parse_msg("mx.y"), None);
    }

    #[test]
    fn clean_seed_reports_ok_invariants() {
        let out = run(0, None, BugKnobs::default());
        assert!(out.contains("invariants: OK"), "{out}");
    }

    /// The S2 injected bug wedges every survivor's flush; the explainer
    /// must name the exact message each blocked message waits on.
    #[test]
    fn wedged_flush_names_the_blocking_chain() {
        let knobs = BugKnobs {
            no_flush_retry: true,
            ..BugKnobs::default()
        };
        let out = run(2, None, knobs);
        assert!(out.contains("violations ("), "{out}");
        assert!(out.contains("ended frozen"), "{out}");
        // P0's chain root is deliverable but frozen; its successor names
        // the exact predecessor it waits on.
        assert!(out.contains("P0 holds m4.34"), "{out}");
        assert!(out.contains("m4.33 — held here"), "{out}");
        assert!(
            out.contains("delivery frozen by an in-progress flush"),
            "{out}"
        );
    }

    #[test]
    fn msg_filter_restricts_output() {
        let knobs = BugKnobs {
            no_flush_retry: true,
            ..BugKnobs::default()
        };
        let out = run(2, Some(MsgId { sender: 4, seq: 34 }), knobs);
        assert!(out.contains("holds m4.34"), "{out}");
        assert!(!out.contains("holds m4.35"), "{out}");
        let missing = run(
            2,
            Some(MsgId {
                sender: 0,
                seq: 999,
            }),
            knobs,
        );
        assert!(
            missing.contains("not blocked in any surviving holdback queue"),
            "{missing}"
        );
    }

    #[test]
    fn link_waits_render_positionally() {
        use catocs::cbcast::{LinkWait, LinkWaitStatus};
        let rep = BlockedReport {
            msg: MsgId { sender: 1, seq: 3 },
            arrived_at: simnet::time::SimTime::ZERO,
            waits: Vec::new(),
            link_waits: vec![LinkWait {
                from: 2,
                pos: 7,
                status: LinkWaitStatus::Severed,
            }],
        };
        let mut out = String::new();
        render_reports(&mut out, 0, &[rep], false, None);
        assert!(out.contains("link p2 pos 7 — link severed"), "{out}");
        // A positional wait is a wait: the "nothing blocks it" line must
        // not appear.
        assert!(!out.contains("nothing —"), "{out}");
    }

    #[test]
    fn pccast_explainer_runs_and_is_deterministic() {
        let out = run_d(2, None, BugKnobs::default(), CausalDiscipline::Pccast);
        assert!(out.contains("(pccast)"), "{out}");
        assert_eq!(
            out,
            run_d(2, None, BugKnobs::default(), CausalDiscipline::Pccast)
        );
    }

    /// With the wedged flush injected, asking about the frozen chain root
    /// names the stall component it is tied to and renders its path.
    #[test]
    fn wedged_flush_msg_is_tied_to_its_stall_component() {
        let knobs = BugKnobs {
            no_flush_retry: true,
            ..BugKnobs::default()
        };
        let out = run(2, Some(MsgId { sender: 4, seq: 34 }), knobs);
        assert!(out.contains("stall component #"), "{out}");
        assert!(out.contains("flush@P"), "{out}");
    }

    /// Mid-run, the abcast explainer names the exact order slot a held
    /// message waits on and who should have assigned it.
    #[test]
    fn abcast_explainer_names_the_missing_order_slot() {
        let at = Some(simnet::time::SimTime::from_millis(45));
        let out = run_total(0, None, at, TotalKind::Sequencer);
        assert!(out.contains("(abcast, sequencer P0)"), "{out}");
        assert!(out.contains("assigned order slot 21"), "{out}");
        assert!(
            out.contains("order slot 20 — no assignment for that slot has arrived"),
            "{out}"
        );
        assert!(out.contains("[order]"), "{out}");
        assert_eq!(out, run_total(0, None, at, TotalKind::Sequencer));
    }

    /// The token explainer names the current holder and what blocked
    /// members queue behind.
    #[test]
    fn token_explainer_names_the_holder_and_the_gap() {
        let early = Some(simnet::time::SimTime::from_millis(25));
        let out = run_total(0, None, early, TotalKind::Token);
        assert!(out.contains("token holder at the snapshot: P2"), "{out}");
        assert!(
            out.contains("P0 has submissions queued awaiting the token"),
            "{out}"
        );
        let mid = Some(simnet::time::SimTime::from_millis(45));
        let out = run_total(0, None, mid, TotalKind::Token);
        assert!(
            out.contains("order slot 13 — awaiting the rotation"),
            "{out}"
        );
        assert!(out.contains("[token]"), "{out}");
    }

    /// By the full horizon a healthy group has drained; the report says
    /// so instead of showing stale state.
    #[test]
    fn total_explainer_reports_a_drained_group() {
        let out = run_total(0, None, None, TotalKind::Sequencer);
        assert!(
            out.contains("no messages were awaiting a total-order slot"),
            "{out}"
        );
    }

    #[test]
    fn output_is_deterministic() {
        let knobs = BugKnobs {
            no_flush_retry: true,
            ..BugKnobs::default()
        };
        assert_eq!(run(2, None, knobs), run(2, None, knobs));
    }
}
