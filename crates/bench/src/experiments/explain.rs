//! `experiments explain` — the blocked-on explainer.
//!
//! Re-runs one chaos seed (optionally with an injected bug knob) and
//! walks every surviving process's holdback wait-graph: for each message
//! still buffered at the horizon, which causal predecessors it waits on
//! and why each is absent — still held itself, parked behind a broken
//! delta decode chain, being chased via NACK, or never deliverable
//! because its sender was removed beyond the flush cut. The output is
//! deterministic for a given seed/knob combination.

use crate::experiments::chaos;
use catocs::cbcast::BlockedReport;
use catocs::group::MsgId;
use catocs::vsync::BugKnobs;
use std::fmt::Write as _;

/// Caps that keep a deeply wedged queue readable: a message missing a
/// long run of predecessors, or a process holding dozens of messages,
/// is summarized rather than enumerated.
const MAX_MSGS_PER_PROC: usize = 8;
const MAX_WAITS_PER_MSG: usize = 6;

/// Renders one process's blocked messages into `out`, restricted to
/// `only` when given. Returns how many messages matched the filter.
pub(crate) fn render_reports(
    out: &mut String,
    who: usize,
    reports: &[BlockedReport],
    frozen: bool,
    only: Option<MsgId>,
) -> usize {
    let selected: Vec<&BlockedReport> = reports
        .iter()
        .filter(|rep| only.is_none_or(|want| rep.msg == want))
        .collect();
    for rep in selected.iter().take(MAX_MSGS_PER_PROC) {
        let _ = writeln!(
            out,
            "P{who} holds m{}.{} (arrived {}us); it waits on:",
            rep.msg.sender,
            rep.msg.seq,
            rep.arrived_at.as_micros()
        );
        if rep.waits.is_empty() {
            let gate = if frozen {
                "delivery frozen by an in-progress flush"
            } else {
                "queued for delivery"
            };
            let _ = writeln!(out, "  nothing — all causal predecessors present; {gate}");
        }
        for w in rep.waits.iter().take(MAX_WAITS_PER_MSG) {
            let _ = writeln!(out, "  m{}.{} — {}", w.id.sender, w.id.seq, w.status);
        }
        if rep.waits.len() > MAX_WAITS_PER_MSG {
            let _ = writeln!(
                out,
                "  ... and {} more missing predecessors",
                rep.waits.len() - MAX_WAITS_PER_MSG
            );
        }
    }
    if selected.len() > MAX_MSGS_PER_PROC {
        let _ = writeln!(
            out,
            "P{who}: ... and {} more blocked messages",
            selected.len() - MAX_MSGS_PER_PROC
        );
    }
    selected.len()
}

/// Parses a message id of the form `m0.3` (or bare `0.3`).
pub fn parse_msg(s: &str) -> Option<MsgId> {
    let s = s.strip_prefix('m').unwrap_or(s);
    let (sender, seq) = s.split_once('.')?;
    Some(MsgId {
        sender: sender.parse().ok()?,
        seq: seq.parse().ok()?,
    })
}

/// Builds the explainer report for one seed. `msg` restricts the output
/// to a single blocked message; `knobs` re-injects a known bug. Runs the
/// indexed-holdback/delta-timestamp cell — the full-featured
/// configuration, where every wait status can occur.
pub fn run(seed: u64, msg: Option<MsgId>, knobs: BugKnobs) -> String {
    let r = chaos::run_seed(seed, true, true, knobs);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "EXPLAIN — seed {seed}, n={}, indexed holdback, delta timestamps",
        chaos::size_for_seed(seed)
    );
    if r.violations.is_empty() {
        let _ = writeln!(out, "invariants: OK");
    } else {
        let _ = writeln!(out, "violations ({}):", r.violations.len());
        for v in &r.violations {
            let _ = writeln!(out, "  {v}");
        }
    }
    for log in &r.logs {
        if log.alive_at_end && log.frozen {
            let _ = writeln!(
                out,
                "P{} ended frozen: delivery blackout, its flush never completed",
                log.who
            );
        }
    }
    if r.blocked_reports.is_empty() {
        let _ = writeln!(
            out,
            "no messages were still blocked in any holdback queue at the horizon"
        );
        return out;
    }
    let mut matched = 0;
    for (who, reports) in &r.blocked_reports {
        let frozen = r.logs.iter().any(|l| l.who == *who && l.frozen);
        matched += render_reports(&mut out, *who, reports, frozen, msg);
    }
    if let Some(want) = msg {
        if matched == 0 {
            let _ = writeln!(
                out,
                "m{}.{} is not blocked in any surviving holdback queue at the horizon",
                want.sender, want.seq
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_message_ids() {
        assert_eq!(parse_msg("m0.3"), Some(MsgId { sender: 0, seq: 3 }));
        assert_eq!(parse_msg("2.17"), Some(MsgId { sender: 2, seq: 17 }));
        assert_eq!(parse_msg("m2"), None);
        assert_eq!(parse_msg("mx.y"), None);
    }

    #[test]
    fn clean_seed_reports_ok_invariants() {
        let out = run(0, None, BugKnobs::default());
        assert!(out.contains("invariants: OK"), "{out}");
    }

    /// The S2 injected bug wedges every survivor's flush; the explainer
    /// must name the exact message each blocked message waits on.
    #[test]
    fn wedged_flush_names_the_blocking_chain() {
        let knobs = BugKnobs {
            no_flush_retry: true,
            ..BugKnobs::default()
        };
        let out = run(2, None, knobs);
        assert!(out.contains("violations ("), "{out}");
        assert!(out.contains("ended frozen"), "{out}");
        // P0's chain root is deliverable but frozen; its successor names
        // the exact predecessor it waits on.
        assert!(out.contains("P0 holds m4.34"), "{out}");
        assert!(out.contains("m4.33 — held here"), "{out}");
        assert!(
            out.contains("delivery frozen by an in-progress flush"),
            "{out}"
        );
    }

    #[test]
    fn msg_filter_restricts_output() {
        let knobs = BugKnobs {
            no_flush_retry: true,
            ..BugKnobs::default()
        };
        let out = run(2, Some(MsgId { sender: 4, seq: 34 }), knobs);
        assert!(out.contains("holds m4.34"), "{out}");
        assert!(!out.contains("holds m4.35"), "{out}");
        let missing = run(
            2,
            Some(MsgId {
                sender: 0,
                seq: 999,
            }),
            knobs,
        );
        assert!(
            missing.contains("not blocked in any surviving holdback queue"),
            "{missing}"
        );
    }

    #[test]
    fn output_is_deterministic() {
        let knobs = BugKnobs {
            no_flush_retry: true,
            ..BugKnobs::default()
        };
        assert_eq!(run(2, None, knobs), run(2, None, knobs));
    }
}
