//! T6 — §3.4: false causality.
//!
//! Each member periodically multicasts; 30% of messages are *semantic*
//! replies to the last message the sender delivered, the rest are
//! independent (timer-driven, per the paper's example: "It could have
//! been caused by an internal timer or external input"). cbcast cannot
//! tell the difference: it delays any message whose happens-before
//! predecessors are missing. A held delivery is *falsely* delayed when
//! none of the messages it waited for is its semantic parent.
//!
//! The paper: "False causality reduces performance by unnecessarily
//! delaying messages ... The amount of false causality appears to be
//! dependent on application behavior and the causal domain or group
//! size."

use crate::table::Table;
use catocs::endpoint::Discipline;
use catocs::group::{GroupConfig, MsgId};
use catocs::harness::{spawn_group, GroupApp, GroupCtx, GroupNode};
use catocs::wire::{Delivery, Wire};
use rand::Rng;
use simnet::net::NetConfig;
use simnet::sim::SimBuilder;
use simnet::time::{SimDuration, SimTime};

/// Message payload: optional semantic parent.
#[derive(Clone, Debug)]
pub struct Msg {
    /// The message this one is a true reply to, if any.
    pub semantic_parent: Option<MsgId>,
}

/// Fraction of messages that are semantic replies.
const REPLY_FRACTION: f64 = 0.3;
/// Messages per member.
const MSGS_PER_PROC: u32 = 40;

struct Node {
    remaining: u32,
    last_delivered: Option<MsgId>,
    // Accumulators.
    delivered: u64,
    held: u64,
    falsely_held: u64,
    hold_us: u64,
    false_hold_us: u64,
}

impl Node {
    fn new() -> Self {
        Node {
            remaining: MSGS_PER_PROC,
            last_delivered: None,
            delivered: 0,
            held: 0,
            falsely_held: 0,
            hold_us: 0,
            false_hold_us: 0,
        }
    }
}

impl GroupApp<Msg> for Node {
    fn on_tick(&mut self, ctx: &mut GroupCtx<'_>) -> Vec<Msg> {
        if self.remaining == 0 {
            return Vec::new();
        }
        self.remaining -= 1;
        let semantic_parent = if ctx.rng.gen_bool(REPLY_FRACTION) {
            self.last_delivered
        } else {
            None
        };
        vec![Msg { semantic_parent }]
    }

    fn on_deliver(&mut self, _ctx: &mut GroupCtx<'_>, d: &Delivery<Msg>) -> Vec<Msg> {
        self.last_delivered = Some(d.id);
        self.delivered += 1;
        if d.was_held() {
            self.held += 1;
            let us = d.hold_time().as_micros();
            self.hold_us += us;
            let justified = match d.payload.semantic_parent {
                Some(p) => d.waited_for.contains(&p),
                None => false,
            };
            if !justified {
                self.falsely_held += 1;
                self.false_hold_us += us;
            }
        }
        Vec::new()
    }
}

/// One sweep point.
#[derive(Clone, Debug)]
pub struct FalseCausalityPoint {
    /// Group size.
    pub n: usize,
    /// Total deliveries across members.
    pub delivered: u64,
    /// Held deliveries.
    pub held: u64,
    /// Held with no semantic justification.
    pub falsely_held: u64,
    /// Mean hold time, ms.
    pub mean_hold_ms: f64,
    /// Mean hold time of false holds, ms.
    pub mean_false_hold_ms: f64,
    /// Median hold time, ms (from the `group.hold_time` histogram).
    pub p50_hold_ms: f64,
    /// 99th-percentile hold time, ms.
    pub p99_hold_ms: f64,
}

/// Measures one group size.
pub fn measure(seed: u64, n: usize) -> FalseCausalityPoint {
    let mut sim = SimBuilder::new(seed)
        .net(NetConfig::lossy_lan(0.03))
        .build::<Wire<Msg>>();
    let members = spawn_group(
        &mut sim,
        n,
        Discipline::Causal,
        GroupConfig::default(),
        Some(SimDuration::from_millis(8)),
        |_| Node::new(),
    );
    sim.run_until(SimTime::from_secs(10));
    let mut p = FalseCausalityPoint {
        n,
        delivered: 0,
        held: 0,
        falsely_held: 0,
        mean_hold_ms: 0.0,
        mean_false_hold_ms: 0.0,
        p50_hold_ms: 0.0,
        p99_hold_ms: 0.0,
    };
    let mut hold_us = 0u64;
    let mut false_hold_us = 0u64;
    for &m in &members {
        let node = sim.process::<GroupNode<Msg, Node>>(m).expect("node");
        let a = node.app();
        p.delivered += a.delivered;
        p.held += a.held;
        p.falsely_held += a.falsely_held;
        hold_us += a.hold_us;
        false_hold_us += a.false_hold_us;
    }
    if p.held > 0 {
        p.mean_hold_ms = hold_us as f64 / p.held as f64 / 1000.0;
    }
    if p.falsely_held > 0 {
        p.mean_false_hold_ms = false_hold_us as f64 / p.falsely_held as f64 / 1000.0;
    }
    // The harness records every hold into the `group.hold_time`
    // histogram; surface its tail, not just the mean.
    if let Some((_, h)) = sim
        .metrics()
        .histograms()
        .find(|(name, _)| *name == "group.hold_time")
    {
        p.p50_hold_ms = h.quantile(0.50).as_millis_f64();
        p.p99_hold_ms = h.quantile(0.99).as_millis_f64();
    }
    p
}

/// Runs the sweep.
pub fn run(sizes: &[usize]) -> Table {
    let mut t = Table::new(
        format!(
            "T6 — §3.4 false causality ({:.0}% true replies, {MSGS_PER_PROC} msgs/proc, 3% loss)",
            REPLY_FRACTION * 100.0
        ),
        &[
            "N",
            "delivered",
            "held",
            "held %",
            "falsely held",
            "false % of held",
            "mean hold ms",
            "p50 hold ms",
            "p99 hold ms",
        ],
    );
    for &n in sizes {
        let p = measure(7, n);
        t.row(vec![
            p.n.into(),
            p.delivered.into(),
            p.held.into(),
            (100.0 * p.held as f64 / p.delivered.max(1) as f64).into(),
            p.falsely_held.into(),
            (100.0 * p.falsely_held as f64 / p.held.max(1) as f64).into(),
            p.mean_hold_ms.into(),
            p.p50_hold_ms.into(),
            p.p99_hold_ms.into(),
        ]);
    }
    t.note("only ~30% of traffic is semantically dependent, yet cbcast holds");
    t.note("messages for *any* happens-before predecessor — the delay on the");
    t.note("rest is pure false causality.");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn false_causality_dominates_holds() {
        let p = measure(3, 8);
        assert!(p.held > 0, "some holds should occur");
        assert!(
            p.falsely_held * 2 >= p.held,
            "most holds are unjustified: {}/{}",
            p.falsely_held,
            p.held
        );
    }

    #[test]
    fn holds_exist_at_scale() {
        let small = measure(3, 4);
        let large = measure(3, 16);
        assert!(large.delivered > small.delivered);
        assert!(large.held > 0);
    }

    #[test]
    fn table_shape() {
        let t = run(&[4, 8]);
        assert_eq!(t.rows.len(), 2);
        assert!(t.get_f64(0, 1) > 0.0);
    }

    #[test]
    fn hold_histogram_tail_is_populated() {
        let p = measure(3, 8);
        assert!(p.held > 0);
        assert!(p.p50_hold_ms > 0.0, "{p:?}");
        assert!(p.p99_hold_ms >= p.p50_hold_ms, "{p:?}");
    }
}
