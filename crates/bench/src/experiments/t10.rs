//! T10 — appendix 9.1: drilling traffic, distributed CATOCS scheduling
//! versus a central cell controller.
//!
//! Fixed hole count, sweeping driller count: central traffic stays flat
//! (assign + done per hole, plus the backup mirror), while every
//! completion multicast in the distributed design fans out to all
//! drillers.

use crate::table::Table;
use apps::drilling::{run_drilling_central, run_drilling_distributed};
use simnet::net::NetConfig;

/// Holes drilled in every configuration.
const HOLES: u32 = 48;

/// Runs the sweep over driller counts.
pub fn run(drillers: &[usize]) -> Table {
    let mut t = Table::new(
        format!("T10 — appendix 9.1: drilling traffic ({HOLES} holes)"),
        &[
            "drillers",
            "central msgs",
            "distributed msgs",
            "distributed data msgs",
            "ratio dist/central",
        ],
    );
    for &d in drillers {
        let c = run_drilling_central(1, d, HOLES, NetConfig::lossy_lan(0.0));
        let x = run_drilling_distributed(1, d, HOLES, NetConfig::lossy_lan(0.0));
        assert!(c.each_hole_once && x.each_hole_once, "correctness first");
        t.row(vec![
            d.into(),
            c.net_sent.into(),
            x.net_sent.into(),
            x.data_msgs.into(),
            (x.net_sent as f64 / c.net_sent as f64).into(),
        ]);
    }
    t.note("paper: \"the communication traffic is linear in the number of");
    t.note("driller controllers, not quadratic as claimed for Birman's");
    t.note("solution\" — the central column is flat; the distributed column");
    t.note("grows with every added driller.");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn central_flat_distributed_grows() {
        let t = run(&[2, 8]);
        let central_growth = t.get_f64(1, 1) / t.get_f64(0, 1);
        let dist_growth = t.get_f64(1, 3) / t.get_f64(0, 3);
        assert!(central_growth < 1.5, "central {central_growth}");
        assert!(dist_growth > 3.0, "distributed {dist_growth}");
    }
}
