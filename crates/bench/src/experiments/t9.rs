//! T9 — appendix 9.2: RPC deadlock detection cost.
//!
//! van Renesse's causal-multicast detector versus the paper's periodic
//! wait-for-report detector, on identical scripted workloads containing
//! one deadlock cycle plus background chains. Both must detect; the
//! interesting columns are total messages and detection latency.

use crate::table::Table;
use apps::rpc::{deadlock_scripts, run_state_detector, run_van_renesse};
use simnet::net::NetConfig;
use simnet::time::SimDuration;

/// Runs the sweep over server counts.
pub fn run(sizes: &[usize]) -> Table {
    let mut t = Table::new(
        "T9 — appendix 9.2: RPC deadlock detection (1 planted cycle + background)",
        &[
            "detector",
            "servers",
            "messages",
            "detected",
            "detect latency ms",
        ],
    );
    for &servers in sizes {
        let scripts = deadlock_scripts(servers, servers);
        let vr = run_van_renesse(1, servers, scripts.clone(), NetConfig::lossy_lan(0.0));
        t.row(vec![
            "van Renesse (cbcast)".into(),
            servers.into(),
            vr.net_sent.into(),
            if vr.detected_at.is_some() {
                "yes"
            } else {
                "NO"
            }
            .into(),
            vr.detected_at
                .map(|x| x.as_micros() as f64 / 1000.0)
                .unwrap_or(f64::NAN)
                .into(),
        ]);
        let st = run_state_detector(
            1,
            servers,
            scripts,
            SimDuration::from_millis(50),
            NetConfig::lossy_lan(0.0),
        );
        t.row(vec![
            "state-level reports".into(),
            servers.into(),
            st.net_sent.into(),
            if st.detected_at.is_some() {
                "yes"
            } else {
                "NO"
            }
            .into(),
            st.detected_at
                .map(|x| x.as_micros() as f64 / 1000.0)
                .unwrap_or(f64::NAN)
                .into(),
        ]);
    }
    t.note("every RPC costs 2 multicasts × group size under van Renesse;");
    t.note("the state detector sends one small report per server per period");
    t.note("and additionally handles multi-threaded servers (instance ids).");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_detect_and_state_is_cheaper() {
        let t = run(&[6]);
        assert_eq!(t.rows.len(), 2);
        let det_col = t.col("detected").unwrap();
        for r in &t.rows {
            assert_eq!(r[det_col].to_string(), "yes");
        }
        let vr_msgs = t.get_f64(0, 2);
        let st_msgs = t.get_f64(1, 2);
        assert!(st_msgs < vr_msgs, "state {st_msgs} !< vr {vr_msgs}");
    }
}
