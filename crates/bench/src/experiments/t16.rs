//! T16 — §4.3: a complete transaction system with zero ordered multicast.
//!
//! Sharded data nodes (2PL + MVCC), clients committing two-key
//! transactions via 2PC with randomized lock order, the §4.2 wait-for
//! deadlock monitor resolving the resulting deadlocks. Sweeps contention
//! and reports commits, deadlock aborts/retries, messages — and verifies
//! serializability, which "a distributed transaction management protocol
//! already" provides.

use crate::table::Table;
use txn::scenario::run_txn_scenario;

/// Runs the contention sweep: (shards, clients, keys/shard).
pub fn run() -> Table {
    let mut t = Table::new(
        "T16 — §4.3 transactions without CATOCS (6 txs/client, random lock order)",
        &[
            "config",
            "committed",
            "deadlock aborts",
            "resolved by monitor",
            "messages",
            "serializable",
        ],
    );
    for (shards, clients, keys) in [(3usize, 3usize, 8u64), (3, 6, 4), (2, 8, 2)] {
        let r = run_txn_scenario(9, shards, clients, keys, 6);
        assert!(r.all_done, "workload must complete: {r:?}");
        t.row(vec![
            format!("{shards} shards × {clients} clients × {keys} keys").into(),
            r.committed.into(),
            (r.deadlock_aborts as u64).into(),
            (r.deadlocks_resolved as u64).into(),
            r.msgs.into(),
            if r.serializable { "yes" } else { "NO" }.into(),
        ]);
    }
    t.note("locks order the transactions; deadlocks from the randomized");
    t.note("acquisition order are detected by unordered wait-for reports and");
    t.note("resolved by victim abort + retry. No causal or total multicast");
    t.note("appears anywhere in the system.");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_configs_serialize_and_complete() {
        let t = run();
        let col = t.col("serializable").unwrap();
        for r in &t.rows {
            assert_eq!(r[col].to_string(), "yes");
        }
        // The high-contention config must show real deadlock resolution.
        assert!(t.get_f64(2, 2) > 0.0, "contention must cause deadlocks");
    }
}
