//! One module per reproduced figure/table. See DESIGN.md §3 for the
//! experiment index and EXPERIMENTS.md for the paper-vs-measured record.

pub mod ablate;
pub mod bench;
pub mod chaos;
pub mod explain;
pub mod f1;
pub mod f2;
pub mod f3;
pub mod f4;
pub mod latency;
pub mod t10;
pub mod t11;
pub mod t12;
pub mod t13;
pub mod t14;
pub mod t15;
pub mod t16;
pub mod t5;
pub mod t6;
pub mod t7;
pub mod t7plus;
pub mod t8;
pub mod t9;
pub mod waitgraph;

use crate::table::Table;

/// Runs every experiment at its default scale, returning all tables in
/// paper order.
pub fn run_all() -> Vec<Table> {
    let mut out = Vec::new();
    let (t, diagram) = f1::run(11);
    println!("{diagram}");
    out.push(t);
    out.push(f2::run(60));
    out.push(f3::run(60));
    out.push(f4::run(6));
    out.push(t5::run(&[4, 8, 16, 32, 48]));
    out.push(t6::run(&[4, 8, 16, 32]));
    out.push(t7::run(&[4, 8, 16, 32, 64, 128, 256]));
    out.push(t7plus::run(&[4, 16, 64, 256, 1024, 4096]));
    out.push(t8::run());
    out.push(t9::run(&[4, 8, 12]));
    out.push(t10::run(&[2, 4, 8, 16]));
    out.push(t11::run(&[4, 8, 16, 32]));
    out.push(t12::run());
    out.push(t13::run(&[0.0, 0.05, 0.15, 0.30]));
    out.push(t14::run());
    out.push(t15::run(&[3, 5, 9]));
    out.push(t16::run());
    out.push(chaos::run(20).0);
    out.push(latency::compare(0));
    out.extend(ablate::run());
    out
}
