//! F3 — Figure 3: the fire as an external channel.
//!
//! Sweeps seeds under causal and total multicast: how often the observer's
//! last delivery is "fire out" (wrong belief), and that timestamp
//! ordering always ends with the correct belief.

use crate::table::Table;
use apps::firemon::run_firemon;
use catocs::endpoint::Discipline;
use simnet::net::{LatencyModel, NetConfig};
use simnet::time::SimDuration;

fn jittery() -> NetConfig {
    NetConfig {
        latency: LatencyModel::Uniform {
            min: SimDuration::from_micros(100),
            max: SimDuration::from_millis(18),
        },
        ..NetConfig::default()
    }
}

/// Runs the sweep over `seeds` seeds per discipline.
pub fn run(seeds: u64) -> Table {
    let mut t = Table::new(
        "F3 — Figure 3: external channel (fire); Q's final belief",
        &[
            "discipline",
            "runs",
            "\"fire out\" last",
            "naive wrong",
            "rt-stamp wrong",
        ],
    );
    for (name, d) in [
        ("causal", Discipline::Causal),
        ("total", Discipline::Total { sequencer: 0 }),
    ] {
        let mut out_last = 0u64;
        let mut naive_wrong = 0u64;
        let mut rt_wrong = 0u64;
        for seed in 0..seeds {
            let r = run_firemon(seed, d, jittery(), 300);
            if r.out_delivered_last {
                out_last += 1;
            }
            if r.naive_fire != Some(true) {
                naive_wrong += 1;
            }
            if r.rt_fire != Some(true) {
                rt_wrong += 1;
            }
        }
        t.row(vec![
            name.into(),
            seeds.into(),
            out_last.into(),
            naive_wrong.into(),
            rt_wrong.into(),
        ]);
    }
    t.note("clock skew ±300us, error bound 1ms, event spacing 5ms —");
    t.note("temporal precedence is exact while message order is not (§4.6).");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        let t = run(40);
        for row in 0..2 {
            assert!(
                t.get_f64(row, 2) > 0.0,
                "anomaly must occur under both disciplines"
            );
            assert_eq!(t.get_f64(row, 4), 0.0, "rt belief never wrong");
        }
    }
}
