//! T5 — §5: buffering and active-causal-graph growth with group size.
//!
//! All-to-all cbcast chatter at a fixed per-process rate, on a disk
//! topology whose diameter grows with sqrt(N) (the paper's model). For
//! each N we measure, per node: peak unstable-buffer occupancy (messages
//! and bytes), the active causal graph's peak node and arc counts, the
//! mean arcs per message, and the `N×N` delivery-knowledge state.
//!
//! The paper predicts: arcs per message ~ Θ(N) (so total arcs quadratic),
//! per-node buffering growing with system scale, and the system-wide
//! buffer product growing ~quadratically.

use crate::table::Table;
use catocs::causal_graph::CausalGraph;
use catocs::endpoint::Discipline;
use catocs::group::GroupConfig;
use catocs::harness::{spawn_group, GroupApp, GroupCtx, GroupNode};
use catocs::wire::{Delivery, Wire};
use clocks::matrix::MatrixClock;
use simnet::net::{LatencyModel, NetConfig};
use simnet::sim::SimBuilder;
use simnet::time::{SimDuration, SimTime};
use simnet::topology::Topology;
use std::cell::RefCell;
use std::rc::Rc;

/// Messages each member multicasts.
const MSGS_PER_PROC: u32 = 30;

struct Chatter {
    remaining: u32,
}

impl GroupApp<u32> for Chatter {
    fn on_tick(&mut self, ctx: &mut GroupCtx<'_>) -> Vec<u32> {
        if self.remaining > 0 {
            self.remaining -= 1;
            vec![ctx.me as u32]
        } else {
            Vec::new()
        }
    }
    fn on_deliver(&mut self, _ctx: &mut GroupCtx<'_>, _d: &Delivery<u32>) -> Vec<u32> {
        Vec::new()
    }
}

/// One measured row.
#[derive(Clone, Debug)]
pub struct ScalePoint {
    /// Group size.
    pub n: usize,
    /// Mean per-node peak buffered messages.
    pub buf_peak_mean: f64,
    /// Max per-node peak buffered messages.
    pub buf_peak_max: u64,
    /// Mean per-node peak buffered bytes.
    pub buf_bytes_mean: f64,
    /// Peak active-graph nodes.
    pub graph_nodes_peak: usize,
    /// Peak active-graph arcs.
    pub graph_arcs_peak: usize,
    /// Mean arcs per message.
    pub arcs_per_msg: f64,
    /// Per-node delivery-knowledge state, bytes (the N×N matrix).
    pub knowledge_bytes: usize,
}

/// Measures one group size.
pub fn measure(seed: u64, n: usize) -> ScalePoint {
    let net = NetConfig {
        latency: LatencyModel::Spatial {
            per_unit: SimDuration::from_millis(1),
            jitter: SimDuration::from_micros(400),
        },
        topology: Topology::UniformDisk { n },
        drop_probability: 0.02,
        ..NetConfig::default()
    };
    let mut sim = SimBuilder::new(seed).net(net).build::<Wire<u32>>();
    let graph = Rc::new(RefCell::new(CausalGraph::new()));
    let members = spawn_group(
        &mut sim,
        n,
        Discipline::Causal,
        GroupConfig::default(),
        Some(SimDuration::from_millis(10)),
        |_| Chatter {
            remaining: MSGS_PER_PROC,
        },
    );
    for &m in &members {
        let node = sim.process_mut::<GroupNode<u32, Chatter>>(m).expect("node");
        node.keep_log = false;
        node.graph = Some(graph.clone());
    }
    sim.run_until(SimTime::from_secs(20));

    let mut peaks = Vec::new();
    let mut byte_peaks = Vec::new();
    for &m in &members {
        let node = sim.process::<GroupNode<u32, Chatter>>(m).expect("node");
        peaks.push(node.transport_stats().buffered_peak);
        byte_peaks.push(node.transport_stats().buffered_bytes_peak);
    }
    let g = graph.borrow();
    ScalePoint {
        n,
        buf_peak_mean: peaks.iter().sum::<u64>() as f64 / n as f64,
        buf_peak_max: peaks.iter().copied().max().unwrap_or(0),
        buf_bytes_mean: byte_peaks.iter().sum::<u64>() as f64 / n as f64,
        graph_nodes_peak: g.peak_nodes(),
        graph_arcs_peak: g.peak_arcs(),
        arcs_per_msg: g.mean_arcs_per_node(),
        knowledge_bytes: MatrixClock::new(n).encoded_len(),
    }
}

/// Runs the sweep over the given group sizes.
pub fn run(sizes: &[usize]) -> Table {
    let mut t = Table::new(
        format!(
            "T5 — §5 scalability: buffering & active causal graph \
             ({MSGS_PER_PROC} msgs/proc, disk topology, 2% loss)"
        ),
        &[
            "N",
            "buf peak (mean msgs/node)",
            "buf peak (max)",
            "buf bytes (mean/node)",
            "graph nodes peak",
            "graph arcs peak",
            "arcs/msg",
            "knowledge bytes/node",
        ],
    );
    for &n in sizes {
        let p = measure(42, n);
        t.row(vec![
            p.n.into(),
            p.buf_peak_mean.into(),
            p.buf_peak_max.into(),
            p.buf_bytes_mean.into(),
            p.graph_nodes_peak.into(),
            p.graph_arcs_peak.into(),
            p.arcs_per_msg.into(),
            p.knowledge_bytes.into(),
        ]);
    }
    t.note("paper: arcs/msg ~ Θ(N); per-node buffering grows with scale;");
    t.note("system-wide buffering (N × per-node) therefore grows ~quadratically.");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arcs_per_message_grow_with_n() {
        let small = measure(1, 4);
        let large = measure(1, 16);
        assert!(
            large.arcs_per_msg > 2.0 * small.arcs_per_msg,
            "arcs/msg {} -> {}",
            small.arcs_per_msg,
            large.arcs_per_msg
        );
    }

    #[test]
    fn per_node_buffering_grows_with_n() {
        let small = measure(1, 4);
        let large = measure(1, 24);
        assert!(
            large.buf_peak_mean > small.buf_peak_mean,
            "buffering {} -> {}",
            small.buf_peak_mean,
            large.buf_peak_mean
        );
    }

    #[test]
    fn knowledge_state_quadratic() {
        let a = measure(1, 4).knowledge_bytes;
        let b = measure(1, 8).knowledge_bytes;
        assert!(b > 3 * a);
    }

    #[test]
    fn table_has_all_rows() {
        let t = run(&[4, 8]);
        assert_eq!(t.rows.len(), 2);
    }
}
