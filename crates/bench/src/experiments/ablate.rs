//! Ablations of CATOCS design choices called out in DESIGN.md:
//!
//! - **sequencer vs token** total order: ordering latency at low and
//!   high offered load;
//! - **piggybacked vs gossip-only stability acks**: buffering versus
//!   control traffic (§5's piggybacking remark);
//! - **causal-domain partitioning**: one big group versus several small
//!   *independent* groups (§5: "Partitioning a large process group into
//!   smaller process groups does not necessarily reduce this problem
//!   unless the smaller groups are not causally related").

use crate::table::Table;
use catocs::domain::{Addressed, DomainEndpoint, GroupId};
use catocs::endpoint::Discipline;
use catocs::group::GroupConfig;
use catocs::harness::{spawn_group, GroupApp, GroupCtx, GroupNode};
use catocs::wire::{Delivery, Dest, Wire};
use simnet::net::NetConfig;
use simnet::process::{Ctx, Process, ProcessId, TimerId};
use simnet::sim::SimBuilder;
use simnet::time::{SimDuration, SimTime};

struct Chatter {
    remaining: u32,
}

impl GroupApp<u32> for Chatter {
    fn on_tick(&mut self, ctx: &mut GroupCtx<'_>) -> Vec<u32> {
        if self.remaining > 0 {
            self.remaining -= 1;
            vec![ctx.me as u32]
        } else {
            Vec::new()
        }
    }
    fn on_deliver(&mut self, _c: &mut GroupCtx<'_>, _d: &Delivery<u32>) -> Vec<u32> {
        Vec::new()
    }
}

struct GroupStats {
    delivered: u64,
    held: u64,
    mean_hold_ms: f64,
    buffered_peak_mean: f64,
    control_bytes: u64,
    data_overhead_bytes: u64,
}

fn run_group(
    seed: u64,
    n: usize,
    d: Discipline,
    cfg: GroupConfig,
    msgs: u32,
    period: SimDuration,
) -> GroupStats {
    let mut sim = SimBuilder::new(seed)
        .net(NetConfig::lossy_lan(0.02))
        .build::<Wire<u32>>();
    let members = spawn_group(&mut sim, n, d, cfg, Some(period), |_| Chatter {
        remaining: msgs,
    });
    sim.run_until(SimTime::from_secs(15));
    let mut s = GroupStats {
        delivered: 0,
        held: 0,
        mean_hold_ms: 0.0,
        buffered_peak_mean: 0.0,
        control_bytes: 0,
        data_overhead_bytes: 0,
    };
    let mut hold_us = 0u64;
    for &m in &members {
        let node = sim.process::<GroupNode<u32, Chatter>>(m).expect("node");
        s.delivered += node.stats().delivered;
        s.held += node.stats().delivered_after_hold;
        hold_us += node.stats().hold_time_total.as_micros();
        s.buffered_peak_mean += node.transport_stats().buffered_peak as f64 / n as f64;
        s.control_bytes += node.transport_stats().control_bytes + node.stats().control_bytes;
        s.data_overhead_bytes += node.transport_stats().data_overhead_bytes;
    }
    if s.held > 0 {
        s.mean_hold_ms = hold_us as f64 / s.held as f64 / 1000.0;
    }
    s
}

/// Ablation 1: sequencer vs token total order under two loads.
pub fn sequencer_vs_token() -> Table {
    let mut t = Table::new(
        "A1 — ablation: total order via sequencer vs token ring (N=6)",
        &["variant", "load", "delivered", "held", "mean hold ms"],
    );
    for (load, period, msgs) in [
        ("light", SimDuration::from_millis(50), 10u32),
        ("heavy", SimDuration::from_millis(5), 60),
    ] {
        for (name, d) in [
            ("sequencer", Discipline::Total { sequencer: 0 }),
            ("token", Discipline::TotalToken),
        ] {
            let s = run_group(3, 6, d, GroupConfig::default(), msgs, period);
            t.row(vec![
                name.into(),
                load.into(),
                s.delivered.into(),
                s.held.into(),
                s.mean_hold_ms.into(),
            ]);
        }
    }
    t.note("the token sender waits for the ring rotation at light load;");
    t.note("the sequencer adds a fixed extra hop but no rotation wait.");
    t
}

/// Ablation 2: piggybacked acks vs gossip-only stability.
pub fn piggyback_acks() -> Table {
    let mut t = Table::new(
        "A2 — ablation: stability from piggybacked timestamps vs tick gossip only (N=8, causal)",
        &["acks", "delivered", "buffered peak (mean)", "control bytes"],
    );
    for (name, piggyback) in [("piggyback+gossip", true), ("gossip only", false)] {
        let cfg = GroupConfig {
            piggyback_acks: piggyback,
            ..GroupConfig::default()
        };
        let s = run_group(
            3,
            8,
            Discipline::Causal,
            cfg,
            40,
            SimDuration::from_millis(8),
        );
        t.row(vec![
            name.into(),
            s.delivered.into(),
            s.buffered_peak_mean.into(),
            s.control_bytes.into(),
        ]);
    }
    t.note("without piggybacking, stability only advances on gossip ticks, so");
    t.note("unstable buffers sit deeper between ticks (§5: fewer application");
    t.note("messages to piggyback acknowledgement information on).");
    t
}

/// Ablation 3: one large group vs independent small groups.
pub fn partitioning() -> Table {
    let mut t = Table::new(
        "A3 — ablation: causal-domain partitioning (same total traffic)",
        &[
            "configuration",
            "delivered",
            "held",
            "buffered peak (mean/node)",
        ],
    );
    // One group of 16.
    let s = run_group(
        5,
        16,
        Discipline::Causal,
        GroupConfig::default(),
        24,
        SimDuration::from_millis(8),
    );
    t.row(vec![
        "1 × 16 members".into(),
        s.delivered.into(),
        s.held.into(),
        s.buffered_peak_mean.into(),
    ]);
    // Four independent groups of 4 (run sequentially, summed).
    let mut delivered = 0;
    let mut held = 0;
    let mut buf = 0.0;
    for g in 0..4u64 {
        let s = run_group(
            100 + g,
            4,
            Discipline::Causal,
            GroupConfig::default(),
            24,
            SimDuration::from_millis(8),
        );
        delivered += s.delivered;
        held += s.held;
        buf += s.buffered_peak_mean / 4.0;
    }
    t.row(vec![
        "4 × 4 members (independent)".into(),
        delivered.into(),
        held.into(),
        buf.into(),
    ]);
    // Four groups of 4 bridged into one causal domain (conservative
    // scheme): every member orders and buffers the whole domain's
    // traffic.
    let s = run_domain(5, 16, 4, 24);
    t.row(vec![
        "4 × 4 bridged causal domain".into(),
        s.delivered.into(),
        s.held.into(),
        s.buffered_peak_mean.into(),
    ]);
    t.note("independent small groups do buffer less per node — but only");
    t.note("because they are causally unrelated; the bridged causal domain");
    t.note("keeps (and exceeds) the large-group buffering cost, per §5.");
    t
}

/// A domain member process: multicasts to its home group; every member
/// orders all domain traffic (conservative causal domain).
struct DomainNode {
    endpoint: DomainEndpoint<u32>,
    n: usize,
    home: GroupId,
    remaining: u32,
    delivered: u64,
    held: u64,
}

const DTICK: TimerId = TimerId(0);
const DAPP: TimerId = TimerId(1);

impl DomainNode {
    fn route(
        &self,
        ctx: &mut Ctx<'_, Wire<Addressed<u32>>>,
        out: Vec<(Dest, Wire<Addressed<u32>>)>,
    ) {
        for (dest, w) in out {
            match dest {
                Dest::All => {
                    for k in 0..self.n {
                        if k != self.endpoint.me() {
                            ctx.send(ProcessId(k), w.clone());
                        }
                    }
                }
                Dest::One(k) => ctx.send(ProcessId(k), w),
            }
        }
    }
}

impl Process<Wire<Addressed<u32>>> for DomainNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Wire<Addressed<u32>>>) {
        ctx.set_timer(DTICK, SimDuration::from_millis(10));
        ctx.set_timer(DAPP, SimDuration::from_millis(8));
    }
    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, Wire<Addressed<u32>>>,
        _f: ProcessId,
        m: Wire<Addressed<u32>>,
    ) {
        let (dels, out) = self.endpoint.on_wire(ctx.now(), m);
        for d in &dels {
            self.delivered += 1;
            if d.was_held() {
                self.held += 1;
            }
        }
        self.route(ctx, out);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Wire<Addressed<u32>>>, t: TimerId) {
        match t {
            DTICK => {
                let out = self.endpoint.on_tick(ctx.now());
                self.route(ctx, out);
                ctx.metrics().gauge_max(
                    &format!("domain.buf.{}", self.endpoint.me()),
                    self.endpoint.buffered_len() as f64,
                );
                ctx.set_timer(DTICK, SimDuration::from_millis(10));
            }
            DAPP => {
                if self.remaining > 0 {
                    self.remaining -= 1;
                    let (dels, out) = self.endpoint.multicast(ctx.now(), self.home, 1);
                    self.delivered += dels.len() as u64;
                    self.route(ctx, out);
                }
                ctx.set_timer(DAPP, SimDuration::from_millis(8));
            }
            _ => {}
        }
    }
}

fn run_domain(seed: u64, n_domain: usize, groups: usize, msgs: u32) -> GroupStats {
    let per_group = n_domain / groups;
    let mut sim = SimBuilder::new(seed)
        .net(NetConfig::lossy_lan(0.02))
        .build::<Wire<Addressed<u32>>>();
    for me in 0..n_domain {
        let home = GroupId((me / per_group) as u32);
        let mut joined = vec![home];
        // The first member of each group bridges into the next group —
        // the causal relation between groups.
        if me % per_group == 0 {
            joined.push(GroupId(((me / per_group + 1) % groups) as u32));
        }
        sim.add_process(DomainNode {
            endpoint: DomainEndpoint::new(me, n_domain, GroupConfig::default(), &joined),
            n: n_domain,
            home,
            remaining: msgs,
            delivered: 0,
            held: 0,
        });
    }
    sim.run_until(SimTime::from_secs(15));
    let mut s = GroupStats {
        delivered: 0,
        held: 0,
        mean_hold_ms: 0.0,
        buffered_peak_mean: 0.0,
        control_bytes: 0,
        data_overhead_bytes: 0,
    };
    for me in 0..n_domain {
        let node: &DomainNode = sim.process(ProcessId(me)).expect("node");
        s.delivered += node.delivered;
        s.held += node.held;
        s.buffered_peak_mean += sim.metrics().gauge(&format!("domain.buf.{me}")) / n_domain as f64;
    }
    s
}

/// Ablation 4: appending causal predecessors instead of holdback+NACK
/// (§3.4 footnote 4) — delay drops, bandwidth rises.
pub fn append_predecessors() -> Table {
    let mut t = Table::new(
        "A4 — ablation: append causal predecessors vs holdback+NACK (N=8, causal, 8% loss)",
        &[
            "recovery",
            "delivered",
            "held",
            "mean hold ms",
            "data overhead bytes",
        ],
    );
    for (name, append) in [("holdback + NACK", false), ("append predecessors", true)] {
        let cfg = GroupConfig {
            append_predecessors: append,
            ..GroupConfig::default()
        };
        let mut sim = SimBuilder::new(11)
            .net(NetConfig::lossy_lan(0.08))
            .build::<Wire<u32>>();
        let members = spawn_group(
            &mut sim,
            8,
            Discipline::Causal,
            cfg,
            Some(SimDuration::from_millis(8)),
            |_| Chatter { remaining: 40 },
        );
        sim.run_until(SimTime::from_secs(15));
        let mut delivered = 0;
        let mut held = 0;
        let mut hold_us = 0;
        let mut data_bytes = 0;
        for &m in &members {
            let node = sim.process::<GroupNode<u32, Chatter>>(m).expect("node");
            delivered += node.stats().delivered;
            held += node.stats().delivered_after_hold;
            hold_us += node.stats().hold_time_total.as_micros();
            data_bytes += node.stats().data_overhead_bytes;
        }
        let mean_hold = if held > 0 {
            hold_us as f64 / held as f64 / 1000.0
        } else {
            0.0
        };
        t.row(vec![
            name.into(),
            delivered.into(),
            held.into(),
            mean_hold.into(),
            data_bytes.into(),
        ]);
    }
    t.note("\"causal protocols can append earlier 'causal' messages to later");
    t.note("dependent messages, but this technique can significantly increase");
    t.note("network traffic\" (§3.4 footnote 4).");
    t
}

/// Runs all ablations.
pub fn run() -> Vec<Table> {
    vec![
        sequencer_vs_token(),
        piggyback_acks(),
        partitioning(),
        append_predecessors(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_waits_longer_at_light_load() {
        let t = sequencer_vs_token();
        // Rows: 0 seq/light, 1 token/light.
        let seq_hold = t.get_f64(0, 4);
        let tok_hold = t.get_f64(1, 4);
        assert!(
            tok_hold > seq_hold,
            "token {tok_hold} !> sequencer {seq_hold} at light load"
        );
    }

    #[test]
    fn gossip_only_buffers_deeper() {
        let t = piggyback_acks();
        let pb = t.get_f64(0, 2);
        let go = t.get_f64(1, 2);
        assert!(go >= pb, "gossip-only {go} !>= piggyback {pb}");
    }

    #[test]
    fn appending_predecessors_cuts_holds_but_costs_bytes() {
        let t = append_predecessors();
        let holdback_held = t.get_f64(0, 2);
        let append_held = t.get_f64(1, 2);
        assert!(
            append_held < holdback_held,
            "append {append_held} !< holdback {holdback_held}"
        );
        let holdback_bytes = t.get_f64(0, 4);
        let append_bytes = t.get_f64(1, 4);
        assert!(
            append_bytes > holdback_bytes,
            "append bytes {append_bytes} !> holdback {holdback_bytes}"
        );
    }

    #[test]
    fn independent_partitions_buffer_less() {
        let t = partitioning();
        let big = t.get_f64(0, 3);
        let small = t.get_f64(1, 3);
        assert!(small < big, "4x4 {small} !< 1x16 {big}");
        // The bridged domain keeps the big-group cost (within 2x of the
        // single group, far above the independent partitions).
        let domain = t.get_f64(2, 3);
        assert!(
            domain > 3.0 * small,
            "bridged domain {domain} should dwarf independent {small}"
        );
    }
}
