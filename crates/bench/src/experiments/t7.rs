//! T7 — §3.4: per-message ordering overhead.
//!
//! "CATOCS imposes overhead on every message transmission and reception —
//! ordering information is added each transmission and checked on each
//! reception." The overhead is the vector timestamp: 8 bytes per group
//! member on every data message. This table reports the encoded size of
//! the ordering header as N grows, with the delta-compression ablation
//! (sparse updates ship only changed components), against a FIFO
//! transport's constant 8-byte sequence number. The CPU side (encode /
//! decode / deliverability check) is measured by `benches/clocks_bench`.

use crate::table::Table;
use clocks::vector::VectorClock;

/// Header bytes for one data message at group size `n`, full encoding.
pub fn full_header_bytes(n: usize) -> usize {
    VectorClock::new(n).encode().len() + 12 // vt + MsgId
}

/// Header bytes for a delta encoding when `changed` components moved
/// since the previous message on the link.
pub fn delta_header_bytes(n: usize, changed: usize) -> usize {
    let mut base = VectorClock::new(n);
    let mut next = base.clone();
    for i in 0..changed.min(n) {
        base.set(i, 1);
        next.set(i, 2);
    }
    next.encode_delta(&base).len() + 12
}

/// Runs the size table for the given group sizes.
pub fn run(sizes: &[usize]) -> Table {
    let mut t = Table::new(
        "T7 — §3.4 per-message ordering overhead (bytes on every data message)",
        &[
            "N",
            "fifo seqno",
            "vector clock (full)",
            "vt delta (1 changed)",
            "vt delta (N/4 changed)",
            "overhead vs 256B payload",
        ],
    );
    for &n in sizes {
        let full = full_header_bytes(n);
        t.row(vec![
            n.into(),
            20usize.into(), // MsgId + u64 seq
            full.into(),
            delta_header_bytes(n, 1).into(),
            delta_header_bytes(n, n / 4).into(),
            format!("{:.0}%", 100.0 * full as f64 / 256.0).into(),
        ]);
    }
    t.note("the timestamp rides on EVERY multicast; at N=256 it exceeds a");
    t.note("typical payload. Delta compression helps only when traffic is");
    t.note("sparse — under all-to-all chatter ~N/4 components change and the");
    t.note("delta encoding loses its advantage.");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_header_linear_in_n() {
        assert_eq!(full_header_bytes(8) - full_header_bytes(4), 8 * 4);
        assert_eq!(full_header_bytes(64) - full_header_bytes(32), 8 * 32);
    }

    #[test]
    fn delta_beats_full_when_sparse() {
        assert!(delta_header_bytes(64, 1) < full_header_bytes(64));
    }

    #[test]
    fn delta_loses_when_dense() {
        // 12 bytes per changed component vs 8 for the full vector.
        assert!(delta_header_bytes(64, 60) > full_header_bytes(64));
    }

    #[test]
    fn table_shape() {
        let t = run(&[4, 256]);
        assert_eq!(t.rows.len(), 2);
        assert!(t.get_f64(1, 2) > t.get_f64(0, 2));
    }
}
