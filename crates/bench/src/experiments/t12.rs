//! T12 — §4.1: Netnews — References-field cache versus per-inquiry
//! causal groups.
//!
//! The simulated half: readers over an unordered flood, handling
//! out-of-order responses with the order-preserving cache. The analytic
//! half: §4.1's accounting for the rejected CATOCS design ("a new causal
//! group would have to be created for each inquiry ... the overhead would
//! be impractical").

use crate::table::Table;
use apps::netnews::{catocs_group_cost, run_netnews};
use simnet::net::{LatencyModel, NetConfig};
use simnet::time::SimDuration;

fn jittery(drop: f64) -> NetConfig {
    NetConfig {
        latency: LatencyModel::Uniform {
            min: SimDuration::from_micros(200),
            max: SimDuration::from_millis(25),
        },
        drop_probability: drop,
        ..NetConfig::default()
    }
}

/// Runs the table.
pub fn run() -> Table {
    let mut t = Table::new(
        "T12 — §4.1 Netnews: reader-cache state vs per-inquiry causal groups",
        &[
            "configuration",
            "articles",
            "out-of-order",
            "pending",
            "state (items/bytes)",
        ],
    );
    for (label, drop) in [("flood, lossless", 0.0), ("flood, 20% loss", 0.2)] {
        let r = run_netnews(3, 8, 4, 0.4, jittery(drop));
        t.row(vec![
            format!("cache: {label}").into(),
            r.articles.into(),
            r.out_of_order_arrivals.into(),
            r.still_pending.into(),
            format!("{} items", r.cache_items).into(),
        ]);
        assert!(r.order_respected);
    }
    // Analytic CATOCS rows at Usenet-like scales.
    for (inquiries, members) in [(1_000usize, 50usize), (100_000, 50), (100_000, 500)] {
        let (groups, bytes) = catocs_group_cost(inquiries, members, 4, 512);
        t.row(vec![
            format!("CATOCS: {inquiries} inquiries × {members} members").into(),
            inquiries.into(),
            0u64.into(),
            0usize.into(),
            format!("{groups} groups / {:.1} MB", bytes as f64 / 1e6).into(),
        ]);
    }
    t.note("the reader cache holds only articles of local interest; the");
    t.note("per-inquiry group design carries vector clocks and buffers for");
    t.note("every group at every member — megabytes of pure ordering state.");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_builds_and_orders_hold() {
        let t = run();
        assert_eq!(t.rows.len(), 5);
        // Out-of-order arrivals occur yet presentation order held
        // (asserted inside run()).
        assert!(t.get_f64(0, 2) + t.get_f64(1, 2) > 0.0);
    }
}
