//! The experiment harness CLI: regenerates every figure and table.
//!
//! ```text
//! experiments all                    # everything, paper order
//! experiments f1 f4 t5               # selected experiments
//! experiments list                   # what exists
//! experiments chaos --seed 23 --bug no-detector-reset
//! experiments chaos --discipline pccast
//! experiments explain --seed 2 --bug no-flush-retry [--msg m0.3]
//! experiments latency --seed 2 --bug wedged_flush [--msg m0.3] [--discipline abcast] [--compare]
//! experiments waitgraph --seed 2 --bug no-flush-retry [--at MS]
//! experiments t7plus --perfetto out.json
//! experiments bench --json BENCH_new.json [--wall]
//! experiments benchdiff BENCH_baseline.json BENCH_new.json --gate 10
//! ```

use bench::experiments as ex;

fn print_usage() {
    eprintln!(
        "usage: experiments [--perfetto FILE] \
         [all|list|f1|f2|f3|f4|t5|t6|t7|t7plus|t8|t9|t10|t11|t12|t13|t14|t15|t16|ablate\
         |chaos [--seed N] [--bug KNOB] [--discipline cbcast|pccast]\
         |explain --seed N [--msg mS.Q] [--bug KNOB] [--at MS] \
         [--discipline cbcast|pccast|abcast|token]\
         |latency --seed N [--msg mS.Q] [--bug KNOB] \
         [--discipline cbcast|pccast|abcast|token|fifo] [--compare]\
         |waitgraph --seed N [--at MS] [--bug KNOB] [--discipline cbcast|pccast]\
         |bench [--json FILE] [--wall]\
         |benchdiff OLD.json NEW.json [--gate PCT]]...\n\
         KNOB: no-detector-reset | no-flush-retry (alias wedged-flush) | no-chain-reset\n\
         --discipline: which causal algorithm the chaos campaigns run (vector-timestamp cbcast, default, or constant-metadata pccast)"
    );
}

fn write_perfetto(path: &str, json: &str, what: &str) {
    match std::fs::write(path, json) {
        Ok(()) => eprintln!("perfetto trace ({what}) written to {path}"),
        Err(e) => {
            eprintln!("could not write perfetto trace to {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--perfetto FILE` is a global flag: experiments that support trace
    // export (f1, t7plus) write Chrome trace-event JSON there.
    let mut perfetto: Option<String> = None;
    if let Some(at) = args.iter().position(|a| a == "--perfetto") {
        if at + 1 >= args.len() {
            eprintln!("--perfetto needs an output file");
            std::process::exit(2);
        }
        perfetto = Some(args.remove(at + 1));
        args.remove(at);
    }
    if args.is_empty() {
        print_usage();
        std::process::exit(2);
    }
    let mut perfetto_used = false;
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        i += 1;
        match arg.as_str() {
            "list" => {
                println!(
                    "f1 f2 f3 f4 — figures; t5..t16, t7plus — quantitative \
                     claims; ablate — design ablations; chaos — fault \
                     campaigns (--seed N replays one, --bug K injects a \
                     regression); explain — why a message is still blocked; \
                     latency — per-message ordering-tax attribution \
                     (--seed N, --msg drills down, --compare sweeps \
                     disciplines at N=64); \
                     waitgraph — ranked stall report (--seed N, --at MS \
                     picks a snapshot); \
                     bench — performance telemetry snapshot (--json FILE, \
                     --wall); benchdiff OLD NEW — compare snapshots \
                     (--gate PCT fails on regressions); \
                     all. --perfetto FILE exports a trace (f1, t7plus)."
                );
            }
            "all" => {
                for t in ex::run_all() {
                    println!("{t}");
                }
            }
            "f1" => {
                let (t, diagram) = ex::f1::run(11);
                println!("{diagram}");
                println!("{t}");
                if let Some(path) = &perfetto {
                    perfetto_used = true;
                    write_perfetto(path, &ex::f1::perfetto(11), "f1, 3 processes");
                }
            }
            "f2" => println!("{}", ex::f2::run(60)),
            "f3" => println!("{}", ex::f3::run(60)),
            "f4" => println!("{}", ex::f4::run(6)),
            "t5" => println!("{}", ex::t5::run(&[4, 8, 16, 32, 48])),
            "t6" => println!("{}", ex::t6::run(&[4, 8, 16, 32])),
            "t7" => println!("{}", ex::t7::run(&[4, 8, 16, 32, 64, 128, 256])),
            "t7plus" => {
                println!("{}", ex::t7plus::run(&[4, 16, 64, 256, 1024, 4096]));
                if let Some(path) = &perfetto {
                    perfetto_used = true;
                    write_perfetto(
                        path,
                        &ex::t7plus::perfetto(16, true, true),
                        "t7plus N=16 indexed/delta",
                    );
                    // Trace parity for the constant-metadata discipline.
                    write_perfetto(
                        &format!("{path}.pccast.json"),
                        &ex::t7plus::perfetto_pccast(16),
                        "t7plus N=16 pccast",
                    );
                }
            }
            "t8" => println!("{}", ex::t8::run()),
            "t9" => println!("{}", ex::t9::run(&[4, 8, 12])),
            "t10" => println!("{}", ex::t10::run(&[2, 4, 8, 16])),
            "t11" => println!("{}", ex::t11::run(&[4, 8, 16, 32])),
            "t12" => println!("{}", ex::t12::run()),
            "t13" => println!("{}", ex::t13::run(&[0.0, 0.05, 0.15, 0.30])),
            "t14" => println!("{}", ex::t14::run()),
            "t15" => println!("{}", ex::t15::run(&[3, 5, 9])),
            "t16" => println!("{}", ex::t16::run()),
            "ablate" => {
                for t in ex::ablate::run() {
                    println!("{t}");
                }
            }
            "chaos" => {
                let mut seed: Option<u64> = None;
                let mut knobs = catocs::vsync::BugKnobs::default();
                let mut discipline = catocs::group::CausalDiscipline::Cbcast;
                while i < args.len() {
                    match args[i].as_str() {
                        "--seed" => {
                            seed = Some(parse_num(args.get(i + 1), "chaos --seed"));
                            i += 2;
                        }
                        "--bug" => {
                            knobs = parse_knob(args.get(i + 1));
                            i += 2;
                        }
                        "--discipline" => {
                            discipline = parse_discipline(args.get(i + 1));
                            i += 2;
                        }
                        _ => break,
                    }
                }
                if let Some(seed) = seed {
                    if ex::chaos::replay(seed, knobs, discipline) > 0 {
                        std::process::exit(1);
                    }
                } else {
                    // 50 seeds × {scan,indexed} × {full,delta} = 200 runs.
                    let (table, violations) = ex::chaos::run_discipline(50, discipline);
                    println!("{table}");
                    if violations > 0 {
                        std::process::exit(1);
                    }
                }
            }
            "bench" => {
                let mut json_path: Option<String> = None;
                let mut wall = false;
                while i < args.len() {
                    match args[i].as_str() {
                        "--json" => {
                            json_path = Some(args.get(i + 1).cloned().unwrap_or_else(|| {
                                eprintln!("bench --json needs an output file");
                                std::process::exit(2);
                            }));
                            i += 2;
                        }
                        "--wall" => {
                            wall = true;
                            i += 1;
                        }
                        _ => break,
                    }
                }
                let snap = ex::bench::collect(wall);
                println!("{}", ex::bench::render(&snap));
                if let Some(path) = json_path {
                    let json = snap.to_json();
                    // Validate through the in-tree parser before writing.
                    if let Err(e) = bench::telemetry::BenchSnapshot::parse(&json) {
                        eprintln!("bench: emitted snapshot failed validation: {e}");
                        std::process::exit(1);
                    }
                    match std::fs::write(&path, &json) {
                        Ok(()) => eprintln!("bench: snapshot written to {path}"),
                        Err(e) => {
                            eprintln!("bench: could not write {path}: {e}");
                            std::process::exit(1);
                        }
                    }
                }
            }
            "benchdiff" => {
                let mut paths = Vec::new();
                let mut gate: Option<f64> = None;
                while i < args.len() {
                    match args[i].as_str() {
                        "--gate" => {
                            gate =
                                Some(args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or_else(
                                    || {
                                        eprintln!("benchdiff --gate needs a percentage");
                                        std::process::exit(2);
                                    },
                                ));
                            i += 2;
                        }
                        a if !a.starts_with("--") && paths.len() < 2 => {
                            paths.push(a.to_string());
                            i += 1;
                        }
                        _ => break,
                    }
                }
                if paths.len() != 2 {
                    eprintln!("benchdiff needs OLD.json and NEW.json");
                    std::process::exit(2);
                }
                let load = |path: &str| -> bench::telemetry::BenchSnapshot {
                    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                        eprintln!("benchdiff: could not read {path}: {e}");
                        std::process::exit(2);
                    });
                    bench::telemetry::BenchSnapshot::parse(&text).unwrap_or_else(|e| {
                        eprintln!("benchdiff: {path}: {e}");
                        std::process::exit(2);
                    })
                };
                let old = load(&paths[0]);
                let new = load(&paths[1]);
                let pct = gate.unwrap_or(bench::telemetry::DEFAULT_GATE_PCT);
                let report = bench::telemetry::diff(&old, &new, pct);
                println!(
                    "{}",
                    bench::telemetry::render_diff(&report, &paths[0], &paths[1])
                );
                if !report.regressions.is_empty() {
                    eprintln!(
                        "benchdiff: {} gated metric(s) regressed past ±{pct}%: {}",
                        report.regressions.len(),
                        report.regressions.join(", ")
                    );
                    if gate.is_some() {
                        std::process::exit(1);
                    }
                    eprintln!("benchdiff: informational run (no --gate): exit 0");
                }
            }
            "explain" => {
                let mut seed: Option<u64> = None;
                let mut msg = None;
                let mut knobs = catocs::vsync::BugKnobs::default();
                let mut discipline = String::from("cbcast");
                let mut at: Option<u64> = None;
                while i < args.len() {
                    match args[i].as_str() {
                        "--seed" => {
                            seed = Some(parse_num(args.get(i + 1), "explain --seed"));
                            i += 2;
                        }
                        "--at" => {
                            at = Some(parse_num(args.get(i + 1), "explain --at"));
                            i += 2;
                        }
                        "--msg" => {
                            msg = Some(
                                args.get(i + 1)
                                    .and_then(|s| ex::explain::parse_msg(s))
                                    .unwrap_or_else(|| {
                                        eprintln!("explain --msg wants an id like m0.3");
                                        std::process::exit(2);
                                    }),
                            );
                            i += 2;
                        }
                        "--bug" => {
                            knobs = parse_knob(args.get(i + 1));
                            i += 2;
                        }
                        "--discipline" => {
                            discipline = args.get(i + 1).cloned().unwrap_or_default();
                            i += 2;
                        }
                        _ => break,
                    }
                }
                let Some(seed) = seed else {
                    eprintln!("explain needs --seed N");
                    std::process::exit(2);
                };
                match discipline.as_str() {
                    "cbcast" => print!(
                        "{}",
                        ex::explain::run_d(
                            seed,
                            msg,
                            knobs,
                            catocs::group::CausalDiscipline::Cbcast
                        )
                    ),
                    "pccast" => print!(
                        "{}",
                        ex::explain::run_d(
                            seed,
                            msg,
                            knobs,
                            catocs::group::CausalDiscipline::Pccast
                        )
                    ),
                    "abcast" => print!(
                        "{}",
                        ex::explain::run_total(
                            seed,
                            msg,
                            at.map(simnet::time::SimTime::from_millis),
                            ex::explain::TotalKind::Sequencer
                        )
                    ),
                    "token" => print!(
                        "{}",
                        ex::explain::run_total(
                            seed,
                            msg,
                            at.map(simnet::time::SimTime::from_millis),
                            ex::explain::TotalKind::Token
                        )
                    ),
                    _ => {
                        eprintln!("explain --discipline wants cbcast, pccast, abcast or token");
                        std::process::exit(2);
                    }
                }
            }
            "latency" => {
                let mut seed: Option<u64> = None;
                let mut msg = None;
                let mut knobs = catocs::vsync::BugKnobs::default();
                let mut discipline = ex::latency::LatencyDiscipline::Cbcast;
                let mut compare = false;
                while i < args.len() {
                    match args[i].as_str() {
                        "--seed" => {
                            seed = Some(parse_num(args.get(i + 1), "latency --seed"));
                            i += 2;
                        }
                        "--msg" => {
                            msg = Some(
                                args.get(i + 1)
                                    .and_then(|s| ex::explain::parse_msg(s))
                                    .unwrap_or_else(|| {
                                        eprintln!("latency --msg wants an id like m0.3");
                                        std::process::exit(2);
                                    }),
                            );
                            i += 2;
                        }
                        "--bug" => {
                            knobs = parse_knob(args.get(i + 1));
                            i += 2;
                        }
                        "--discipline" => {
                            discipline = args
                                .get(i + 1)
                                .and_then(|s| ex::latency::LatencyDiscipline::parse(s))
                                .unwrap_or_else(|| {
                                    eprintln!(
                                        "latency --discipline wants cbcast, pccast, \
                                         abcast, token or fifo"
                                    );
                                    std::process::exit(2);
                                });
                            i += 2;
                        }
                        "--compare" => {
                            compare = true;
                            i += 1;
                        }
                        _ => break,
                    }
                }
                if compare {
                    println!("{}", ex::latency::compare(seed.unwrap_or(0)));
                } else {
                    let Some(seed) = seed else {
                        eprintln!("latency needs --seed N (or --compare)");
                        std::process::exit(2);
                    };
                    print!("{}", ex::latency::run(seed, msg, knobs, discipline));
                }
            }
            "waitgraph" => {
                let mut seed: Option<u64> = None;
                let mut at: Option<u64> = None;
                let mut knobs = catocs::vsync::BugKnobs::default();
                let mut discipline = catocs::group::CausalDiscipline::Cbcast;
                while i < args.len() {
                    match args[i].as_str() {
                        "--seed" => {
                            seed = Some(parse_num(args.get(i + 1), "waitgraph --seed"));
                            i += 2;
                        }
                        "--at" => {
                            at = Some(parse_num(args.get(i + 1), "waitgraph --at"));
                            i += 2;
                        }
                        "--bug" => {
                            knobs = parse_knob(args.get(i + 1));
                            i += 2;
                        }
                        "--discipline" => {
                            discipline = parse_discipline(args.get(i + 1));
                            i += 2;
                        }
                        _ => break,
                    }
                }
                let Some(seed) = seed else {
                    eprintln!("waitgraph needs --seed N");
                    std::process::exit(2);
                };
                print!("{}", ex::waitgraph::run(seed, at, knobs, discipline));
            }
            other => {
                eprintln!("unknown experiment: {other}");
                print_usage();
                std::process::exit(2);
            }
        }
    }
    if perfetto.is_some() && !perfetto_used {
        eprintln!("--perfetto: no selected experiment exports a trace (f1 and t7plus do)");
        std::process::exit(2);
    }
}

fn parse_num(arg: Option<&String>, what: &str) -> u64 {
    arg.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("{what} needs a number");
        std::process::exit(2);
    })
}

fn parse_knob(arg: Option<&String>) -> catocs::vsync::BugKnobs {
    arg.and_then(|s| ex::chaos::parse_bug(s))
        .unwrap_or_else(|| {
            eprintln!(
                "--bug wants one of: no-detector-reset, no-flush-retry \
                 (alias: wedged-flush), no-chain-reset"
            );
            std::process::exit(2);
        })
}

fn parse_discipline(arg: Option<&String>) -> catocs::group::CausalDiscipline {
    match arg.map(String::as_str) {
        Some("cbcast") => catocs::group::CausalDiscipline::Cbcast,
        Some("pccast") => catocs::group::CausalDiscipline::Pccast,
        _ => {
            eprintln!("--discipline wants cbcast or pccast");
            std::process::exit(2);
        }
    }
}
