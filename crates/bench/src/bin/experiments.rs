//! The experiment harness CLI: regenerates every figure and table.
//!
//! ```text
//! experiments all          # everything, paper order
//! experiments f1 f4 t5     # selected experiments
//! experiments list         # what exists
//! ```

use bench::experiments as ex;

fn print_usage() {
    eprintln!(
        "usage: experiments [all|list|f1|f2|f3|f4|t5|t6|t7|t7plus|t8|t9|t10|t11|t12|t13|t14|t15|t16|ablate|chaos [--seed N]]..."
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print_usage();
        std::process::exit(2);
    }
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        i += 1;
        match arg.as_str() {
            "list" => {
                println!(
                    "f1 f2 f3 f4 — figures; t5..t16, t7plus — quantitative \
                     claims; ablate — design ablations; chaos — fault \
                     campaigns (--seed N replays one); all"
                );
            }
            "all" => {
                for t in ex::run_all() {
                    println!("{t}");
                }
            }
            "f1" => {
                let (t, diagram) = ex::f1::run(11);
                println!("{diagram}");
                println!("{t}");
            }
            "f2" => println!("{}", ex::f2::run(60)),
            "f3" => println!("{}", ex::f3::run(60)),
            "f4" => println!("{}", ex::f4::run(6)),
            "t5" => println!("{}", ex::t5::run(&[4, 8, 16, 32, 48])),
            "t6" => println!("{}", ex::t6::run(&[4, 8, 16, 32])),
            "t7" => println!("{}", ex::t7::run(&[4, 8, 16, 32, 64, 128, 256])),
            "t7plus" => println!("{}", ex::t7plus::run(&[4, 16, 64, 256])),
            "t8" => println!("{}", ex::t8::run()),
            "t9" => println!("{}", ex::t9::run(&[4, 8, 12])),
            "t10" => println!("{}", ex::t10::run(&[2, 4, 8, 16])),
            "t11" => println!("{}", ex::t11::run(&[4, 8, 16, 32])),
            "t12" => println!("{}", ex::t12::run()),
            "t13" => println!("{}", ex::t13::run(&[0.0, 0.05, 0.15, 0.30])),
            "t14" => println!("{}", ex::t14::run()),
            "t15" => println!("{}", ex::t15::run(&[3, 5, 9])),
            "t16" => println!("{}", ex::t16::run()),
            "ablate" => {
                for t in ex::ablate::run() {
                    println!("{t}");
                }
            }
            "chaos" => {
                if args.get(i).map(String::as_str) == Some("--seed") {
                    let seed: u64 = args
                        .get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| {
                            eprintln!("chaos --seed needs a number");
                            std::process::exit(2);
                        });
                    i += 2;
                    if ex::chaos::replay(seed) > 0 {
                        std::process::exit(1);
                    }
                } else {
                    // 50 seeds × {scan,indexed} × {full,delta} = 200 runs.
                    let (table, violations) = ex::chaos::run(50);
                    println!("{table}");
                    if violations > 0 {
                        std::process::exit(1);
                    }
                }
            }
            other => {
                eprintln!("unknown experiment: {other}");
                print_usage();
                std::process::exit(2);
            }
        }
    }
}
