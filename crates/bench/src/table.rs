//! Minimal aligned-column table rendering for experiment output.

use std::fmt;

/// A cell value.
#[derive(Clone, Debug, PartialEq)]
pub enum Cell {
    /// Text.
    Str(String),
    /// Integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Float, rendered with 2 decimals.
    Float(f64),
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cell::Str(s) => write!(f, "{s}"),
            Cell::Int(v) => write!(f, "{v}"),
            Cell::UInt(v) => write!(f, "{v}"),
            Cell::Float(v) => write!(f, "{v:.2}"),
        }
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Str(s.to_string())
    }
}
impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Str(s)
    }
}
impl From<u64> for Cell {
    fn from(v: u64) -> Self {
        Cell::UInt(v)
    }
}
impl From<usize> for Cell {
    fn from(v: usize) -> Self {
        Cell::UInt(v as u64)
    }
}
impl From<i64> for Cell {
    fn from(v: i64) -> Self {
        Cell::Int(v)
    }
}
impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Float(v)
    }
}

/// An experiment result table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id and title, e.g. `"T5 — buffering growth"`.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<Cell>>,
    /// Free-form notes printed under the table (paper-claim context).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates a table with the given title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<Cell>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// Appends a note.
    pub fn note(&mut self, s: impl Into<String>) -> &mut Self {
        self.notes.push(s.into());
        self
    }

    /// Reads a cell as f64 (tests use this to check shapes).
    pub fn get_f64(&self, row: usize, col: usize) -> f64 {
        match &self.rows[row][col] {
            Cell::Str(_) => f64::NAN,
            Cell::Int(v) => *v as f64,
            Cell::UInt(v) => *v as f64,
            Cell::Float(v) => *v,
        }
    }

    /// Finds the first row whose first cell equals `key`.
    pub fn find_row(&self, key: &str) -> Option<&Vec<Cell>> {
        self.rows.iter().find(|r| match &r[0] {
            Cell::Str(s) => s == key,
            _ => false,
        })
    }

    /// Column index by header name.
    pub fn col(&self, header: &str) -> Option<usize> {
        self.headers.iter().position(|h| h == header)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {}", self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|c| c.to_string()).collect())
            .collect();
        for r in &rendered {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        write!(f, "  ")?;
        for (h, w) in self.headers.iter().zip(&widths) {
            write!(f, "{h:>w$}  ")?;
        }
        writeln!(f)?;
        write!(f, "  ")?;
        for w in &widths {
            write!(f, "{:->w$}  ", "")?;
        }
        writeln!(f)?;
        for r in &rendered {
            write!(f, "  ")?;
            for (c, w) in r.iter().zip(&widths) {
                write!(f, "{c:>w$}  ")?;
            }
            writeln!(f)?;
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("X — demo", &["name", "value"]);
        t.row(vec!["alpha".into(), 3u64.into()]);
        t.row(vec!["b".into(), 12345u64.into()]);
        t.note("a note");
        let s = t.to_string();
        assert!(s.contains("## X — demo"));
        assert!(s.contains("alpha"));
        assert!(s.contains("12345"));
        assert!(s.contains("note: a note"));
    }

    #[test]
    fn accessors() {
        let mut t = Table::new("t", &["k", "v"]);
        t.row(vec!["a".into(), 1.5.into()]);
        assert_eq!(t.get_f64(0, 1), 1.5);
        assert!(t.find_row("a").is_some());
        assert!(t.find_row("z").is_none());
        assert_eq!(t.col("v"), Some(1));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
