//! Criterion benches for the state-level substrate: lock manager, OCC
//! validation, versioned-store applies, and wait-for cycle detection.
//!
//! These bound the cost of the paper's alternatives — the point of
//! comparison for "CATOCS protocols do not offer efficiency gain over
//! state-level techniques" (§3.4, limitation 4).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeSet;

fn bench_lock_acquire_release(c: &mut Criterion) {
    use txn::lock::{LockManager, LockMode, TxId};
    c.bench_function("lock_acquire_release_10keys", |b| {
        b.iter(|| {
            let mut lm = LockManager::new();
            for tx in 0..4u64 {
                for k in 0..10u64 {
                    lm.acquire(TxId(tx), k, LockMode::Shared);
                }
            }
            for tx in 0..4u64 {
                black_box(lm.release_all(TxId(tx)));
            }
        });
    });
}

fn bench_occ_validation(c: &mut Criterion) {
    use clocks::lamport::TotalStamp;
    use txn::lock::TxId;
    use txn::occ::OccValidator;
    let mut g = c.benchmark_group("occ_validate_history");
    for &hist in &[16usize, 128, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(hist), &hist, |b, &hist| {
            let mut v = OccValidator::new();
            for i in 0..hist as u64 {
                let w: BTreeSet<u64> = [i % 64].into_iter().collect();
                v.validate(
                    TxId(i),
                    TotalStamp { time: i, node: 0 },
                    TotalStamp {
                        time: i + 1,
                        node: 0,
                    },
                    &BTreeSet::new(),
                    &w,
                );
            }
            let reads: BTreeSet<u64> = [1u64, 2, 3].into_iter().collect();
            let writes: BTreeSet<u64> = [99u64].into_iter().collect();
            let mut t = hist as u64;
            b.iter(|| {
                t += 1;
                black_box(v.validate(
                    TxId(t),
                    TotalStamp {
                        time: t - 1,
                        node: 1,
                    },
                    TotalStamp { time: t, node: 1 },
                    &reads,
                    &writes,
                ))
            });
        });
    }
    g.finish();
}

fn bench_versioned_apply(c: &mut Criterion) {
    use clocks::versions::{ObjectId, Version, VersionedTag};
    use statelevel::versioned::VersionedStore;
    c.bench_function("versioned_store_apply_remote", |b| {
        let mut s: VersionedStore<u64> = VersionedStore::new();
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            black_box(s.apply_remote(VersionedTag::new(ObjectId(v % 100), Version(v)), v))
        });
    });
}

fn bench_cycle_detection(c: &mut Criterion) {
    use statelevel::predicate::WaitForGraph;
    let mut g = c.benchmark_group("waitfor_find_cycle");
    for &n in &[16usize, 128, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            // A long chain plus one back edge: worst-ish case DFS.
            let mut graph = WaitForGraph::new();
            for i in 0..n {
                graph.add_wait(i, i + 1);
            }
            graph.add_wait(n, 0);
            b.iter(|| black_box(graph.find_cycle()));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_lock_acquire_release,
    bench_occ_validation,
    bench_versioned_apply,
    bench_cycle_detection
);
criterion_main!(benches);
