//! Criterion benches for T7's CPU-cost claim: "ordering information is
//! added each transmission and checked on each reception. This overhead
//! will be an increasingly significant cost as networks go to ever higher
//! transfer rates and other aspects of protocol processing are further
//! optimized."
//!
//! Measures, per group size: vector-clock tick+clone (the send path),
//! encode/decode (the wire path), the cbcast deliverability check (the
//! receive path), merge, and the matrix-clock stability frontier.

use clocks::matrix::MatrixClock;
use clocks::vector::VectorClock;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

const SIZES: &[usize] = &[4, 16, 64, 256];

fn make_clock(n: usize, salt: u64) -> VectorClock {
    let mut c = VectorClock::new(n);
    for i in 0..n {
        c.set(i, (i as u64 * 7 + salt) % 97);
    }
    c
}

fn bench_send_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("vt_send_path");
    for &n in SIZES {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut clock = make_clock(n, 1);
            b.iter(|| {
                clock.tick(0);
                black_box(clock.clone())
            });
        });
    }
    g.finish();
}

fn bench_encode_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("vt_encode_decode");
    for &n in SIZES {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let clock = make_clock(n, 2);
            b.iter(|| {
                let bytes = clock.encode();
                black_box(VectorClock::decode(&bytes).unwrap())
            });
        });
    }
    g.finish();
}

fn bench_delta_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("vt_delta_encode");
    for &n in SIZES {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let base = make_clock(n, 3);
            let mut next = base.clone();
            next.tick(n / 2);
            b.iter(|| black_box(next.encode_delta(&base)));
        });
    }
    g.finish();
}

fn bench_deliverability(c: &mut Criterion) {
    let mut g = c.benchmark_group("vt_deliverable_check");
    for &n in SIZES {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let state = make_clock(n, 4);
            let mut msg = state.clone();
            msg.tick(0);
            b.iter(|| black_box(state.deliverable(&msg, 0)));
        });
    }
    g.finish();
}

fn bench_merge(c: &mut Criterion) {
    let mut g = c.benchmark_group("vt_merge");
    for &n in SIZES {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let a = make_clock(n, 5);
            let bb = make_clock(n, 6);
            b.iter(|| {
                let mut m = a.clone();
                m.merge(&bb);
                black_box(m)
            });
        });
    }
    g.finish();
}

fn bench_stable_frontier(c: &mut Criterion) {
    let mut g = c.benchmark_group("matrix_stable_frontier");
    for &n in SIZES {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut m = MatrixClock::new(n);
            for i in 0..n {
                for s in 0..n {
                    m.record_delivery(i, s, ((i + s) % 13) as u64);
                }
            }
            b.iter(|| black_box(m.stable_frontier()));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_send_path,
    bench_encode_decode,
    bench_delta_encode,
    bench_deliverability,
    bench_merge,
    bench_stable_frontier
);
criterion_main!(benches);
