//! Criterion benches for the multicast endpoints: the per-message
//! processing cost of each ordering discipline (send path and receive
//! path), measured outside the simulator.
//!
//! These are the "performance-critical message transmission and reception
//! paths" of the paper's conclusion — the cost a CATOCS layer adds to
//! every message even before any network effect.

use catocs::cbcast::CbcastEndpoint;
use catocs::fbcast::FbcastEndpoint;
use catocs::group::GroupConfig;
use catocs::wire::{Dest, Wire};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use simnet::time::SimTime;

const SIZES: &[usize] = &[4, 16, 64];

fn bench_cbcast_send(c: &mut Criterion) {
    let mut g = c.benchmark_group("cbcast_multicast");
    for &n in SIZES {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut ep: CbcastEndpoint<u64> = CbcastEndpoint::new(0, n, GroupConfig::default());
            let mut t = 0u64;
            b.iter(|| {
                t += 1;
                black_box(ep.multicast(SimTime::from_micros(t), t))
            });
        });
    }
    g.finish();
}

fn bench_fbcast_send(c: &mut Criterion) {
    let mut g = c.benchmark_group("fbcast_multicast");
    for &n in SIZES {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut ep: FbcastEndpoint<u64> = FbcastEndpoint::new(0, n, GroupConfig::default());
            let mut t = 0u64;
            b.iter(|| {
                t += 1;
                black_box(ep.multicast(SimTime::from_micros(t), t))
            });
        });
    }
    g.finish();
}

fn bench_cbcast_receive(c: &mut Criterion) {
    let mut g = c.benchmark_group("cbcast_receive_in_order");
    for &n in SIZES {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            // Pre-generate a long in-order stream from a peer sender.
            let mut sender: CbcastEndpoint<u64> = CbcastEndpoint::new(1, n, GroupConfig::default());
            let msgs: Vec<Wire<u64>> = (0..10_000u64)
                .map(|i| {
                    let (_, out) = sender.multicast(SimTime::from_micros(i), i);
                    out.into_iter()
                        .find_map(|(d, w)| (d == Dest::All).then_some(w))
                        .expect("data message")
                })
                .collect();
            let mut receiver: CbcastEndpoint<u64> =
                CbcastEndpoint::new(0, n, GroupConfig::default());
            let mut i = 0usize;
            b.iter(|| {
                // Re-create the receiver when the stream is exhausted.
                if i == msgs.len() {
                    receiver = CbcastEndpoint::new(0, n, GroupConfig::default());
                    i = 0;
                }
                let r = receiver.on_wire(SimTime::from_micros(i as u64), msgs[i].clone());
                i += 1;
                black_box(r)
            });
        });
    }
    g.finish();
}

fn bench_cbcast_receive_out_of_order(c: &mut Criterion) {
    // Receive path under holdback pressure: one sender's FIFO stream
    // arriving in reversed chunks, so the queue repeatedly fills to the
    // chunk size and cascades empty. Compares the linear-scan holdback
    // against the indexed wait-count/ready-queue one (T7+'s work counter,
    // here as wall-clock).
    const CHUNK: usize = 512;
    let mut g = c.benchmark_group("cbcast_receive_reversed_chunks");
    for indexed in [false, true] {
        let label = if indexed { "indexed" } else { "scan" };
        g.bench_with_input(
            BenchmarkId::from_parameter(label),
            &indexed,
            |b, &indexed| {
                let n = 16;
                let cfg = GroupConfig {
                    indexed_holdback: indexed,
                    ..GroupConfig::default()
                };
                let mut sender: CbcastEndpoint<u64> = CbcastEndpoint::new(1, n, cfg.clone());
                let mut msgs: Vec<Wire<u64>> = (0..10_000u64)
                    .map(|i| {
                        let (_, out) = sender.multicast(SimTime::from_micros(i), i);
                        out.into_iter()
                            .find_map(|(d, w)| (d == Dest::All).then_some(w))
                            .expect("data message")
                    })
                    .collect();
                for chunk in msgs.chunks_mut(CHUNK) {
                    chunk.reverse();
                }
                let mut receiver: CbcastEndpoint<u64> = CbcastEndpoint::new(0, n, cfg.clone());
                let mut i = 0usize;
                b.iter(|| {
                    if i == msgs.len() {
                        receiver = CbcastEndpoint::new(0, n, cfg.clone());
                        i = 0;
                    }
                    let r = receiver.on_wire(SimTime::from_micros(i as u64), msgs[i].clone());
                    i += 1;
                    black_box(r)
                });
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_cbcast_send,
    bench_fbcast_send,
    bench_cbcast_receive,
    bench_cbcast_receive_out_of_order
);
criterion_main!(benches);
