//! Criterion benches for the multicast endpoints: the per-message
//! processing cost of each ordering discipline (send path and receive
//! path), measured outside the simulator.
//!
//! These are the "performance-critical message transmission and reception
//! paths" of the paper's conclusion — the cost a CATOCS layer adds to
//! every message even before any network effect.

use catocs::cbcast::CbcastEndpoint;
use catocs::fbcast::FbcastEndpoint;
use catocs::group::GroupConfig;
use catocs::wire::{Dest, Wire};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use simnet::time::SimTime;

const SIZES: &[usize] = &[4, 16, 64];

fn bench_cbcast_send(c: &mut Criterion) {
    let mut g = c.benchmark_group("cbcast_multicast");
    for &n in SIZES {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut ep: CbcastEndpoint<u64> = CbcastEndpoint::new(0, n, GroupConfig::default());
            let mut t = 0u64;
            b.iter(|| {
                t += 1;
                black_box(ep.multicast(SimTime::from_micros(t), t))
            });
        });
    }
    g.finish();
}

fn bench_fbcast_send(c: &mut Criterion) {
    let mut g = c.benchmark_group("fbcast_multicast");
    for &n in SIZES {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut ep: FbcastEndpoint<u64> = FbcastEndpoint::new(0, n, GroupConfig::default());
            let mut t = 0u64;
            b.iter(|| {
                t += 1;
                black_box(ep.multicast(SimTime::from_micros(t), t))
            });
        });
    }
    g.finish();
}

fn bench_cbcast_receive(c: &mut Criterion) {
    let mut g = c.benchmark_group("cbcast_receive_in_order");
    for &n in SIZES {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            // Pre-generate a long in-order stream from a peer sender.
            let mut sender: CbcastEndpoint<u64> =
                CbcastEndpoint::new(1, n, GroupConfig::default());
            let msgs: Vec<Wire<u64>> = (0..10_000u64)
                .map(|i| {
                    let (_, out) = sender.multicast(SimTime::from_micros(i), i);
                    out.into_iter()
                        .find_map(|(d, w)| (d == Dest::All).then_some(w))
                        .expect("data message")
                })
                .collect();
            let mut receiver: CbcastEndpoint<u64> =
                CbcastEndpoint::new(0, n, GroupConfig::default());
            let mut i = 0usize;
            b.iter(|| {
                // Re-create the receiver when the stream is exhausted.
                if i == msgs.len() {
                    receiver = CbcastEndpoint::new(0, n, GroupConfig::default());
                    i = 0;
                }
                let r = receiver.on_wire(SimTime::from_micros(i as u64), msgs[i].clone());
                i += 1;
                black_box(r)
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_cbcast_send,
    bench_fbcast_send,
    bench_cbcast_receive
);
criterion_main!(benches);
