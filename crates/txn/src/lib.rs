//! # txn — the transactional substrate
//!
//! Sections 4.3–4.5 of the paper argue that transactional techniques
//! subsume CATOCS for replicated data: "a distributed transaction
//! management protocol already orders the transactions". This crate
//! implements that machinery:
//!
//! - [`lock`] — a strict two-phase-locking lock manager with shared /
//!   exclusive modes, FIFO wait queues, and live wait-for edge export
//!   (feeding deadlock detection).
//! - [`wal`] — a write-ahead log with simulated stable storage: the
//!   durability CATOCS lacks ("message delivery is atomic, but not
//!   durable", §2).
//! - [`twopc`] — two-phase commit coordinator and participant state
//!   machines, including the paper's point that participants may *vote
//!   no* for state-level reasons (storage, permissions) — the grouping /
//!   abort ability CATOCS cannot express ("can't say together").
//! - [`occ`] — optimistic concurrency control with commit-time
//!   ordering: "a simple ordering mechanism, such as local timestamp of
//!   the coordinator ... plus node id to break ties, provides a globally
//!   consistent ordering on transactions without using or needing
//!   CATOCS" (§4.3).
//! - [`deadlock`] — the paper's §4.2 distributed deadlock detection:
//!   nodes multicast local wait-for edges (plain FIFO, any order);
//!   monitors take a *cut* (not a consistent cut) and detect exactly the
//!   real deadlocks.
//! - [`kv`] — a multi-version key-value store with commit-stamp
//!   snapshot reads (the state under the transactions).
//! - [`scenario`] — the whole system assembled under `simnet`: sharded
//!   data nodes, randomized clients, deadlock monitor; verified
//!   serializable with zero ordered multicast.
//! - [`replication`] — a read-any/write-all-available replicated store
//!   with availability lists (the optimized-transaction design the paper
//!   says matches CATOCS failure behaviour, §4.4, HARP-style).

pub mod deadlock;
pub mod kv;
pub mod lock;
pub mod occ;
pub mod replication;
pub mod scenario;
pub mod twopc;
pub mod wal;

pub use deadlock::DeadlockMonitor;
pub use lock::{LockManager, LockMode, LockOutcome, TxId};
pub use occ::OccValidator;
pub use replication::ReplicatedStore;
pub use twopc::{Coordinator, Participant, TxnDecision, TxnWire};
pub use wal::{LogRecord, WriteAheadLog};
