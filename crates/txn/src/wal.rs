//! A write-ahead log with simulated stable storage.
//!
//! The paper's durability contrast (§2): CATOCS delivery "is atomic, but
//! not durable. ... if the sender fails during CATOCS protocol execution
//! before the message is stable, there is no guarantee that the remaining
//! operational processes will ever receive and deliver the message." A
//! transactional participant, by contrast, forces a log record to stable
//! storage before acknowledging prepare — so its promises survive a
//! crash. The log here models exactly that: records are volatile until
//! [`WriteAheadLog::sync`] and survive [`WriteAheadLog::crash`] only if
//! synced.

use crate::lock::TxId;
use serde::{Deserialize, Serialize};

/// One log record.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LogRecord {
    /// Transaction started.
    Begin(TxId),
    /// A write: key, old value, new value (undo/redo).
    Write {
        tx: TxId,
        key: u64,
        old: i64,
        new: i64,
    },
    /// Participant promised to commit if told to.
    Prepared(TxId),
    /// Transaction committed.
    Commit(TxId),
    /// Transaction aborted.
    Abort(TxId),
}

impl LogRecord {
    /// The transaction a record belongs to.
    pub fn tx(&self) -> TxId {
        match self {
            LogRecord::Begin(t)
            | LogRecord::Prepared(t)
            | LogRecord::Commit(t)
            | LogRecord::Abort(t) => *t,
            LogRecord::Write { tx, .. } => *tx,
        }
    }
}

/// The simulated write-ahead log.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct WriteAheadLog {
    /// Records forced to stable storage.
    stable: Vec<LogRecord>,
    /// Records appended but not yet synced.
    volatile: Vec<LogRecord>,
    /// Sync (force) operations performed — the cost knob.
    syncs: u64,
}

impl WriteAheadLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record (volatile until synced).
    pub fn append(&mut self, r: LogRecord) {
        self.volatile.push(r);
    }

    /// Forces all appended records to stable storage.
    pub fn sync(&mut self) {
        self.stable.append(&mut self.volatile);
        self.syncs += 1;
    }

    /// Appends and immediately forces (the prepare/commit path).
    pub fn append_sync(&mut self, r: LogRecord) {
        self.append(r);
        self.sync();
    }

    /// Simulates a crash: volatile records are lost.
    pub fn crash(&mut self) {
        self.volatile.clear();
    }

    /// All durable records, in order.
    pub fn stable_records(&self) -> &[LogRecord] {
        &self.stable
    }

    /// Number of sync operations so far.
    pub fn sync_count(&self) -> u64 {
        self.syncs
    }

    /// Recovery analysis: transactions that were prepared but have no
    /// commit/abort outcome (in-doubt), and transactions with a durable
    /// commit.
    pub fn recover(&self) -> RecoveryOutcome {
        let mut prepared = Vec::new();
        let mut committed = Vec::new();
        let mut aborted = Vec::new();
        for r in &self.stable {
            match r {
                LogRecord::Prepared(t) => prepared.push(*t),
                LogRecord::Commit(t) => committed.push(*t),
                LogRecord::Abort(t) => aborted.push(*t),
                _ => {}
            }
        }
        let in_doubt: Vec<TxId> = prepared
            .iter()
            .copied()
            .filter(|t| !committed.contains(t) && !aborted.contains(t))
            .collect();
        RecoveryOutcome {
            committed,
            aborted,
            in_doubt,
        }
    }

    /// Replays durable committed writes into a state map (redo recovery).
    pub fn replay_committed(&self) -> std::collections::BTreeMap<u64, i64> {
        let outcome = self.recover();
        let mut state = std::collections::BTreeMap::new();
        for r in &self.stable {
            if let LogRecord::Write { tx, key, new, .. } = r {
                if outcome.committed.contains(tx) {
                    state.insert(*key, *new);
                }
            }
        }
        state
    }
}

/// What recovery finds in the durable log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// Durably committed transactions.
    pub committed: Vec<TxId>,
    /// Durably aborted transactions.
    pub aborted: Vec<TxId>,
    /// Prepared transactions with no recorded outcome — must ask the
    /// coordinator (the blocking case of 2PC).
    pub in_doubt: Vec<TxId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsynced_records_lost_on_crash() {
        let mut w = WriteAheadLog::new();
        w.append(LogRecord::Begin(TxId(1)));
        w.crash();
        assert!(w.stable_records().is_empty());
    }

    #[test]
    fn synced_records_survive_crash() {
        let mut w = WriteAheadLog::new();
        w.append(LogRecord::Begin(TxId(1)));
        w.sync();
        w.append(LogRecord::Commit(TxId(1)));
        w.crash();
        assert_eq!(w.stable_records(), &[LogRecord::Begin(TxId(1))]);
        assert_eq!(w.sync_count(), 1);
    }

    #[test]
    fn recovery_classifies_outcomes() {
        let mut w = WriteAheadLog::new();
        w.append_sync(LogRecord::Prepared(TxId(1)));
        w.append_sync(LogRecord::Commit(TxId(1)));
        w.append_sync(LogRecord::Prepared(TxId(2)));
        w.append_sync(LogRecord::Prepared(TxId(3)));
        w.append_sync(LogRecord::Abort(TxId(3)));
        w.crash();
        let r = w.recover();
        assert_eq!(r.committed, vec![TxId(1)]);
        assert_eq!(r.aborted, vec![TxId(3)]);
        assert_eq!(r.in_doubt, vec![TxId(2)]);
    }

    #[test]
    fn replay_applies_only_committed_writes() {
        let mut w = WriteAheadLog::new();
        w.append(LogRecord::Write {
            tx: TxId(1),
            key: 10,
            old: 0,
            new: 5,
        });
        w.append_sync(LogRecord::Commit(TxId(1)));
        w.append(LogRecord::Write {
            tx: TxId(2),
            key: 11,
            old: 0,
            new: 9,
        });
        w.sync(); // write durable, but no commit record
        w.crash();
        let state = w.replay_committed();
        assert_eq!(state.get(&10), Some(&5));
        assert_eq!(state.get(&11), None);
    }

    #[test]
    fn record_tx_accessor() {
        assert_eq!(LogRecord::Begin(TxId(7)).tx(), TxId(7));
        assert_eq!(
            LogRecord::Write {
                tx: TxId(8),
                key: 0,
                old: 0,
                new: 0
            }
            .tx(),
            TxId(8)
        );
    }
}
