//! A strict two-phase-locking lock manager.
//!
//! Shared/exclusive locks with FIFO wait queues. The manager also exports
//! the current wait-for edges — exactly the "t1 waits-for t2" facts the
//! paper's deadlock-detection protocol multicasts (§4.2). Lock ordering,
//! not message ordering, is what serializes transactions: "the ordering
//! of transactions is dictated by 2-phase locking on the data that is
//! accessed as part of the transaction" (§4.3).

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A transaction identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct TxId(pub u64);

/// A lockable resource identifier.
pub type Key = u64;

/// Lock modes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum LockMode {
    /// Shared (read).
    Shared,
    /// Exclusive (write).
    Exclusive,
}

/// Result of a lock request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LockOutcome {
    /// Granted immediately (or already held at sufficient strength).
    Granted,
    /// Queued behind the given current holders.
    Waiting(Vec<TxId>),
}

#[derive(Debug, Default)]
struct LockState {
    /// Current holders and their mode (all Shared, or one Exclusive).
    holders: BTreeMap<TxId, LockMode>,
    /// FIFO queue of waiting requests.
    waiters: VecDeque<(TxId, LockMode)>,
}

impl LockState {
    fn compatible(&self, tx: TxId, mode: LockMode) -> bool {
        match mode {
            LockMode::Shared => self
                .holders
                .iter()
                .all(|(&h, &m)| h == tx || m == LockMode::Shared),
            LockMode::Exclusive => self.holders.keys().all(|&h| h == tx),
        }
    }
}

/// The lock manager for one node's data.
#[derive(Debug, Default)]
pub struct LockManager {
    locks: BTreeMap<Key, LockState>,
    /// Keys held by each transaction (for release_all).
    held_by: BTreeMap<TxId, BTreeSet<Key>>,
}

impl LockManager {
    /// An empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests `mode` on `key` for `tx`. FIFO fairness: a request queues
    /// behind earlier waiters even if it would be compatible with the
    /// current holders.
    pub fn acquire(&mut self, tx: TxId, key: Key, mode: LockMode) -> LockOutcome {
        let st = self.locks.entry(key).or_default();
        // Upgrade: Shared holder requesting Exclusive.
        if let Some(&held) = st.holders.get(&tx) {
            if held == LockMode::Exclusive || mode == LockMode::Shared {
                return LockOutcome::Granted;
            }
            // Upgrade possible only if sole holder.
            if st.holders.len() == 1 {
                st.holders.insert(tx, LockMode::Exclusive);
                return LockOutcome::Granted;
            }
            let blockers: Vec<TxId> = st.holders.keys().copied().filter(|&h| h != tx).collect();
            st.waiters.push_back((tx, LockMode::Exclusive));
            return LockOutcome::Waiting(blockers);
        }
        if st.waiters.is_empty() && st.compatible(tx, mode) {
            st.holders.insert(tx, mode);
            self.held_by.entry(tx).or_default().insert(key);
            LockOutcome::Granted
        } else {
            let blockers: Vec<TxId> = st
                .holders
                .keys()
                .copied()
                .chain(st.waiters.iter().map(|&(t, _)| t))
                .filter(|&h| h != tx)
                .collect();
            st.waiters.push_back((tx, mode));
            LockOutcome::Waiting(blockers)
        }
    }

    /// Releases all locks held (and requests queued) by `tx`; returns the
    /// requests that became granted, as `(tx, key)` pairs.
    pub fn release_all(&mut self, tx: TxId) -> Vec<(TxId, Key)> {
        let mut granted = Vec::new();
        let keys: Vec<Key> = self.locks.keys().copied().collect();
        for key in keys {
            let st = self.locks.get_mut(&key).expect("key exists");
            st.holders.remove(&tx);
            st.waiters.retain(|&(t, _)| t != tx);
            // Promote waiters in FIFO order while compatible.
            while let Some(&(next, mode)) = st.waiters.front() {
                if !st.compatible(next, mode) {
                    break;
                }
                st.waiters.pop_front();
                st.holders.insert(next, mode);
                self.held_by.entry(next).or_default().insert(key);
                granted.push((next, key));
            }
            if st.holders.is_empty() && st.waiters.is_empty() {
                self.locks.remove(&key);
            }
        }
        self.held_by.remove(&tx);
        granted
    }

    /// Whether `tx` currently holds `key` at least at `mode` strength.
    pub fn holds(&self, tx: TxId, key: Key, mode: LockMode) -> bool {
        self.locks
            .get(&key)
            .and_then(|st| st.holders.get(&tx))
            .map(|&m| m == LockMode::Exclusive || mode == LockMode::Shared)
            .unwrap_or(false)
    }

    /// The current wait-for edges: `(waiter, holder)` pairs.
    pub fn wait_for_edges(&self) -> Vec<(TxId, TxId)> {
        let mut edges = Vec::new();
        for st in self.locks.values() {
            for &(w, _) in &st.waiters {
                for &h in st.holders.keys() {
                    if h != w {
                        edges.push((w, h));
                    }
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        edges
    }

    /// Keys held by `tx`.
    pub fn keys_held(&self, tx: TxId) -> Vec<Key> {
        self.held_by
            .get(&tx)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Number of keys with any lock state.
    pub fn active_keys(&self) -> usize {
        self.locks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const K: Key = 1;

    #[test]
    fn shared_locks_coexist() {
        let mut lm = LockManager::new();
        assert_eq!(
            lm.acquire(TxId(1), K, LockMode::Shared),
            LockOutcome::Granted
        );
        assert_eq!(
            lm.acquire(TxId(2), K, LockMode::Shared),
            LockOutcome::Granted
        );
        assert!(lm.holds(TxId(1), K, LockMode::Shared));
        assert!(lm.holds(TxId(2), K, LockMode::Shared));
    }

    #[test]
    fn exclusive_excludes() {
        let mut lm = LockManager::new();
        lm.acquire(TxId(1), K, LockMode::Exclusive);
        match lm.acquire(TxId(2), K, LockMode::Shared) {
            LockOutcome::Waiting(blockers) => assert_eq!(blockers, vec![TxId(1)]),
            g => panic!("expected wait, got {g:?}"),
        }
        assert!(!lm.holds(TxId(2), K, LockMode::Shared));
    }

    #[test]
    fn release_promotes_fifo() {
        let mut lm = LockManager::new();
        lm.acquire(TxId(1), K, LockMode::Exclusive);
        lm.acquire(TxId(2), K, LockMode::Exclusive);
        lm.acquire(TxId(3), K, LockMode::Exclusive);
        let granted = lm.release_all(TxId(1));
        assert_eq!(granted, vec![(TxId(2), K)]);
        assert!(lm.holds(TxId(2), K, LockMode::Exclusive));
        assert!(!lm.holds(TxId(3), K, LockMode::Exclusive));
    }

    #[test]
    fn release_promotes_multiple_readers() {
        let mut lm = LockManager::new();
        lm.acquire(TxId(1), K, LockMode::Exclusive);
        lm.acquire(TxId(2), K, LockMode::Shared);
        lm.acquire(TxId(3), K, LockMode::Shared);
        let granted = lm.release_all(TxId(1));
        assert_eq!(granted.len(), 2);
    }

    #[test]
    fn fifo_prevents_reader_overtaking() {
        // Writer waits; a later reader must queue behind it, not sneak in
        // with the current readers (no writer starvation).
        let mut lm = LockManager::new();
        lm.acquire(TxId(1), K, LockMode::Shared);
        lm.acquire(TxId(2), K, LockMode::Exclusive); // waits
        match lm.acquire(TxId(3), K, LockMode::Shared) {
            LockOutcome::Waiting(_) => {}
            g => panic!("reader must queue behind writer, got {g:?}"),
        }
    }

    #[test]
    fn reacquire_is_idempotent() {
        let mut lm = LockManager::new();
        lm.acquire(TxId(1), K, LockMode::Exclusive);
        assert_eq!(
            lm.acquire(TxId(1), K, LockMode::Exclusive),
            LockOutcome::Granted
        );
        assert_eq!(
            lm.acquire(TxId(1), K, LockMode::Shared),
            LockOutcome::Granted
        );
    }

    #[test]
    fn upgrade_sole_holder() {
        let mut lm = LockManager::new();
        lm.acquire(TxId(1), K, LockMode::Shared);
        assert_eq!(
            lm.acquire(TxId(1), K, LockMode::Exclusive),
            LockOutcome::Granted
        );
        assert!(lm.holds(TxId(1), K, LockMode::Exclusive));
    }

    #[test]
    fn upgrade_with_other_readers_waits() {
        let mut lm = LockManager::new();
        lm.acquire(TxId(1), K, LockMode::Shared);
        lm.acquire(TxId(2), K, LockMode::Shared);
        match lm.acquire(TxId(1), K, LockMode::Exclusive) {
            LockOutcome::Waiting(b) => assert_eq!(b, vec![TxId(2)]),
            g => panic!("expected wait, got {g:?}"),
        }
    }

    #[test]
    fn wait_for_edges_reflect_queues() {
        let mut lm = LockManager::new();
        lm.acquire(TxId(1), K, LockMode::Exclusive);
        lm.acquire(TxId(2), K, LockMode::Exclusive);
        lm.acquire(TxId(2), 2, LockMode::Exclusive);
        lm.acquire(TxId(1), 2, LockMode::Exclusive); // classic deadlock shape
        let edges = lm.wait_for_edges();
        assert!(edges.contains(&(TxId(2), TxId(1))));
        assert!(edges.contains(&(TxId(1), TxId(2))));
    }

    #[test]
    fn keys_held_tracking() {
        let mut lm = LockManager::new();
        lm.acquire(TxId(1), 1, LockMode::Shared);
        lm.acquire(TxId(1), 2, LockMode::Exclusive);
        assert_eq!(lm.keys_held(TxId(1)), vec![1, 2]);
        lm.release_all(TxId(1));
        assert!(lm.keys_held(TxId(1)).is_empty());
        assert_eq!(lm.active_keys(), 0);
    }

    proptest! {
        /// Safety: at no point do two transactions hold conflicting locks.
        #[test]
        fn no_conflicting_holders(
            ops in proptest::collection::vec((1u64..6, 1u64..4, proptest::bool::ANY, proptest::bool::ANY), 1..60)
        ) {
            let mut lm = LockManager::new();
            for (tx, key, exclusive, release) in ops {
                if release {
                    lm.release_all(TxId(tx));
                } else {
                    let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
                    lm.acquire(TxId(tx), key, mode);
                }
                // Invariant check over all keys.
                for st in lm.locks.values() {
                    let exclusives: Vec<_> = st.holders.values().filter(|&&m| m == LockMode::Exclusive).collect();
                    if !exclusives.is_empty() {
                        prop_assert_eq!(st.holders.len(), 1, "exclusive must be sole holder");
                    }
                }
            }
        }
    }
}
