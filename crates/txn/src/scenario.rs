//! A complete distributed transaction system under `simnet` — §4.3 end
//! to end.
//!
//! "A distributed transaction management protocol already orders the
//! transactions (i.e. ensures serializability). ... the ordering of
//! transactions is dictated by 2-phase locking on the data that is
//! accessed as part of the transaction. The relative message ordering
//! from concurrent, but separate, transactions is irrelevant with
//! regards to correctness."
//!
//! The scenario: several client nodes run short read-modify-write
//! transactions against sharded data nodes. Clients acquire exclusive
//! locks in *randomized* order (deliberately inviting deadlocks), stage
//! writes, and commit with 2PC; data nodes export wait-for edges to a
//! deadlock monitor (§4.2's protocol), which aborts the youngest victim;
//! victims retry. Everything travels over plain unordered datagrams —
//! no causal or total multicast anywhere — and the outcome is verified
//! serializable.

use crate::deadlock::{DeadlockMonitor, WaitForReport};
use crate::kv::MvccStore;
use crate::lock::{LockManager, LockMode, LockOutcome, TxId};
use clocks::lamport::{LamportClock, TotalStamp};
use rand::seq::SliceRandom;
use rand::Rng;
use simnet::net::NetConfig;
use simnet::process::{Ctx, Process, ProcessId, TimerId};
use simnet::sim::SimBuilder;
use simnet::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};

/// Messages of the transaction system (all point-to-point, unordered).
#[derive(Clone, Debug)]
pub enum TxnMsg {
    /// Client → shard: request an exclusive lock.
    LockReq { tx: TxId, key: u64 },
    /// Shard → client: the lock is held.
    LockGranted { tx: TxId, key: u64 },
    /// Client → shard: stage a write (lock already held).
    StageWrite { tx: TxId, key: u64, val: i64 },
    /// Client (coordinator) → shard: prepare.
    Prepare { tx: TxId },
    /// Shard → client: vote, carrying the shard's latest commit stamp so
    /// the client's Lamport clock stays ahead of committed history.
    Vote {
        tx: TxId,
        shard: usize,
        yes: bool,
        latest_stamp: u64,
    },
    /// Client → shard: decision, with the commit stamp.
    Decision {
        tx: TxId,
        commit: bool,
        stamp: TotalStamp,
    },
    /// Shard → monitor: periodic wait-for edges.
    Report(WaitForReport),
    /// Monitor → client: your transaction was chosen as deadlock victim.
    AbortVictim { tx: TxId },
}

/// Builds a TxId carrying the owning client's index (so the monitor can
/// route the victim notice).
fn make_txid(client: usize, seq: u64) -> TxId {
    TxId(((client as u64) << 32) | seq)
}

/// The client index embedded in a TxId.
pub fn client_of(tx: TxId) -> usize {
    (tx.0 >> 32) as usize
}

// ---------------------------------------------------------------------
// Data node (shard).
// ---------------------------------------------------------------------

/// A shard: lock manager + MVCC store + 2PC participant.
pub struct DataNode {
    shard: usize,
    lm: LockManager,
    store: MvccStore,
    /// Who runs each transaction (learned from LockReq).
    client_of_tx: BTreeMap<TxId, ProcessId>,
    monitor: ProcessId,
    report_seq: u64,
    latest_commit: u64,
    /// Writes staged per transaction (mirrors the store, for the log).
    pending_log: BTreeMap<TxId, Vec<(u64, i64)>>,
    /// Committed (tx, stamp, key, value) log for post-run verification.
    pub commit_log: Vec<(TxId, TotalStamp, u64, i64)>,
}

const REPORT: TimerId = TimerId(0);

impl DataNode {
    fn grant(&mut self, ctx: &mut Ctx<'_, TxnMsg>, granted: Vec<(TxId, u64)>) {
        for (tx, key) in granted {
            if let Some(&client) = self.client_of_tx.get(&tx) {
                ctx.send(client, TxnMsg::LockGranted { tx, key });
            }
        }
    }
}

impl Process<TxnMsg> for DataNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, TxnMsg>) {
        ctx.set_timer(REPORT, SimDuration::from_millis(30));
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, TxnMsg>, from: ProcessId, msg: TxnMsg) {
        match msg {
            TxnMsg::LockReq { tx, key } => {
                self.client_of_tx.insert(tx, from);
                match self.lm.acquire(tx, key, LockMode::Exclusive) {
                    LockOutcome::Granted => {
                        ctx.send(from, TxnMsg::LockGranted { tx, key });
                    }
                    LockOutcome::Waiting(_) => {} // edge exported via report
                }
            }
            TxnMsg::StageWrite { tx, key, val } => {
                self.store.stage(tx, key, val);
                self.pending_log.entry(tx).or_default().push((key, val));
            }
            TxnMsg::Prepare { tx } => {
                // Strict 2PL: the client only prepares once it holds all
                // locks, so yes unless we know nothing about the tx.
                let yes = self.client_of_tx.contains_key(&tx);
                ctx.send(
                    from,
                    TxnMsg::Vote {
                        tx,
                        shard: self.shard,
                        yes,
                        latest_stamp: self.latest_commit,
                    },
                );
            }
            TxnMsg::Decision { tx, commit, stamp } => {
                if commit {
                    self.store.commit(tx, stamp);
                    self.latest_commit = self.latest_commit.max(stamp.time);
                    for (k, v) in self.pending_log.remove(&tx).unwrap_or_default() {
                        self.commit_log.push((tx, stamp, k, v));
                    }
                } else {
                    self.store.abort(tx);
                    self.pending_log.remove(&tx);
                }
                let granted = self.lm.release_all(tx);
                self.client_of_tx.remove(&tx);
                self.grant(ctx, granted);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, TxnMsg>, _t: TimerId) {
        self.report_seq += 1;
        let edges = self.lm.wait_for_edges();
        ctx.send(
            self.monitor,
            TxnMsg::Report(WaitForReport {
                from: self.shard,
                seq: self.report_seq,
                edges,
            }),
        );
        ctx.set_timer(REPORT, SimDuration::from_millis(30));
    }
}

// ---------------------------------------------------------------------
// Client.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxPhase {
    Idle,
    Locking,
    Preparing,
}

/// A client running randomized two-key transactions.
pub struct TxClient {
    me: usize,
    shards: Vec<ProcessId>,
    keys_per_shard: u64,
    clock: LamportClock,
    txs_left: u32,
    next_seq: u64,
    phase: TxPhase,
    current: Option<TxId>,
    /// (shard, key) targets of the current transaction, and lock state.
    targets: Vec<(usize, u64, bool)>,
    votes: BTreeSet<usize>,
    /// Committed transactions (tx, stamp).
    pub committed: Vec<(TxId, TotalStamp)>,
    /// Times this client's transaction was aborted as a deadlock victim.
    pub victim_aborts: u32,
}

const START_TX: TimerId = TimerId(1);

impl TxClient {
    fn shard_pid(&self, s: usize) -> ProcessId {
        self.shards[s]
    }

    fn begin(&mut self, ctx: &mut Ctx<'_, TxnMsg>) {
        if self.txs_left == 0 || self.phase != TxPhase::Idle {
            return;
        }
        self.next_seq += 1;
        let tx = make_txid(self.me, self.next_seq);
        self.current = Some(tx);
        self.phase = TxPhase::Locking;
        self.votes.clear();
        // Two distinct keys, possibly on different shards; lock order is
        // randomized — the deadlock invitation.
        let n_shards = self.shards.len();
        let total_keys = n_shards as u64 * self.keys_per_shard;
        let k1 = ctx.rng().gen_range(0..total_keys);
        let k2 = loop {
            let k = ctx.rng().gen_range(0..total_keys);
            if k != k1 {
                break k;
            }
        };
        let mut targets: Vec<(usize, u64, bool)> = [k1, k2]
            .iter()
            .map(|&k| (((k / self.keys_per_shard) as usize), k, false))
            .collect();
        targets.shuffle(ctx.rng());
        // Request the FIRST lock only (strict ordering of acquisitions
        // keeps the wait-for graph honest).
        let (s, k, _) = targets[0];
        ctx.send(self.shard_pid(s), TxnMsg::LockReq { tx, key: k });
        self.targets = targets;
    }

    fn abort_current(&mut self, ctx: &mut Ctx<'_, TxnMsg>) {
        let Some(tx) = self.current.take() else {
            return;
        };
        self.victim_aborts += 1;
        let stamp = TotalStamp {
            time: self.clock.tick(),
            node: self.me,
        };
        let shards: BTreeSet<usize> = self.targets.iter().map(|&(s, _, _)| s).collect();
        for s in shards {
            ctx.send(
                self.shard_pid(s),
                TxnMsg::Decision {
                    tx,
                    commit: false,
                    stamp,
                },
            );
        }
        self.phase = TxPhase::Idle;
        self.targets.clear();
        // Retry after a backoff.
        let backoff = ctx.rng().gen_range(20..60);
        ctx.set_timer(START_TX, SimDuration::from_millis(backoff));
    }
}

impl Process<TxnMsg> for TxClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_, TxnMsg>) {
        ctx.set_timer(START_TX, SimDuration::from_millis(5 + self.me as u64 * 3));
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, TxnMsg>, _t: TimerId) {
        self.begin(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, TxnMsg>, _from: ProcessId, msg: TxnMsg) {
        match msg {
            TxnMsg::LockGranted { tx, key } => {
                if self.current != Some(tx) || self.phase != TxPhase::Locking {
                    return;
                }
                // Mark and request the next lock, or move to staging.
                let mut all_locked = true;
                let mut next: Option<(usize, u64)> = None;
                for (s, k, locked) in self.targets.iter_mut() {
                    if *k == key {
                        *locked = true;
                    }
                    if !*locked && next.is_none() {
                        next = Some((*s, *k));
                        all_locked = false;
                    } else if !*locked {
                        all_locked = false;
                    }
                }
                if let Some((s, k)) = next {
                    ctx.send(self.shard_pid(s), TxnMsg::LockReq { tx, key: k });
                } else if all_locked {
                    // Stage writes and prepare everywhere.
                    self.phase = TxPhase::Preparing;
                    let shards: BTreeSet<usize> = self.targets.iter().map(|&(s, _, _)| s).collect();
                    for &(s, k, _) in &self.targets {
                        ctx.send(
                            self.shard_pid(s),
                            TxnMsg::StageWrite {
                                tx,
                                key: k,
                                val: tx.0 as i64,
                            },
                        );
                    }
                    for s in shards {
                        ctx.send(self.shard_pid(s), TxnMsg::Prepare { tx });
                    }
                }
            }
            TxnMsg::Vote {
                tx,
                shard,
                yes,
                latest_stamp,
            } => {
                if self.current != Some(tx) || self.phase != TxPhase::Preparing {
                    return;
                }
                self.clock.observe(latest_stamp);
                if !yes {
                    self.abort_current(ctx);
                    return;
                }
                self.votes.insert(shard);
                let needed: BTreeSet<usize> = self.targets.iter().map(|&(s, _, _)| s).collect();
                if self.votes.is_superset(&needed) {
                    let stamp = TotalStamp {
                        time: self.clock.tick(),
                        node: self.me,
                    };
                    for s in needed {
                        ctx.send(
                            self.shard_pid(s),
                            TxnMsg::Decision {
                                tx,
                                commit: true,
                                stamp,
                            },
                        );
                    }
                    self.committed.push((tx, stamp));
                    self.txs_left -= 1;
                    self.current = None;
                    self.targets.clear();
                    self.phase = TxPhase::Idle;
                    ctx.set_timer(START_TX, SimDuration::from_millis(10));
                }
            }
            TxnMsg::AbortVictim { tx } if self.current == Some(tx) => {
                self.abort_current(ctx);
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// Monitor.
// ---------------------------------------------------------------------

/// The deadlock monitor: merges shard reports, aborts victims.
pub struct TxnMonitor {
    inner: DeadlockMonitor,
    clients: Vec<ProcessId>,
    /// Deadlocks resolved.
    pub resolved: u32,
    /// Victims already notified (avoid duplicate aborts).
    notified: BTreeSet<TxId>,
}

impl Process<TxnMsg> for TxnMonitor {
    fn on_message(&mut self, ctx: &mut Ctx<'_, TxnMsg>, _from: ProcessId, msg: TxnMsg) {
        if let TxnMsg::Report(r) = msg {
            self.inner.ingest(r);
            if let Some((_cycle, victim)) = self.inner.detect() {
                if self.notified.insert(victim) {
                    self.resolved += 1;
                    let client = self.clients[client_of(victim)];
                    ctx.send(client, TxnMsg::AbortVictim { tx: victim });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Harness.
// ---------------------------------------------------------------------

/// Results of one transaction-system run.
#[derive(Clone, Debug)]
pub struct TxnScenarioResult {
    /// Transactions committed across clients.
    pub committed: usize,
    /// Deadlock victims aborted (and retried).
    pub deadlock_aborts: u32,
    /// Deadlocks the monitor resolved.
    pub deadlocks_resolved: u32,
    /// Messages on the wire.
    pub msgs: u64,
    /// Serializability check: every key's committed versions appear in
    /// strictly increasing stamp order, and every committed transaction's
    /// writes are present exactly once per key it wrote.
    pub serializable: bool,
    /// Every client finished its workload.
    pub all_done: bool,
}

/// Runs `clients` clients × `txs_per_client` transactions over `shards`
/// shards with `keys_per_shard` keys each.
pub fn run_txn_scenario(
    seed: u64,
    shards: usize,
    clients: usize,
    keys_per_shard: u64,
    txs_per_client: u32,
) -> TxnScenarioResult {
    let mut sim = SimBuilder::new(seed)
        .net(NetConfig::lossy_lan(0.0))
        .build::<TxnMsg>();
    let monitor_pid = ProcessId(shards + clients);
    let shard_pids: Vec<ProcessId> = (0..shards).map(ProcessId).collect();
    let client_pids: Vec<ProcessId> = (shards..shards + clients).map(ProcessId).collect();
    for s in 0..shards {
        sim.add_process(DataNode {
            shard: s,
            lm: LockManager::new(),
            store: MvccStore::new(),
            client_of_tx: BTreeMap::new(),
            monitor: monitor_pid,
            report_seq: 0,
            latest_commit: 0,
            commit_log: Vec::new(),
            pending_log: BTreeMap::new(),
        });
    }
    for c in 0..clients {
        sim.add_process(TxClient {
            me: c,
            shards: shard_pids.clone(),
            keys_per_shard,
            clock: LamportClock::new(),
            txs_left: txs_per_client,
            next_seq: 0,
            phase: TxPhase::Idle,
            current: None,
            targets: Vec::new(),
            votes: BTreeSet::new(),
            committed: Vec::new(),
            victim_aborts: 0,
        });
    }
    sim.add_process(TxnMonitor {
        inner: DeadlockMonitor::new(),
        clients: client_pids.clone(),
        resolved: 0,
        notified: BTreeSet::new(),
    });
    sim.run_until(SimTime::from_secs(60));

    let mut committed = 0;
    let mut aborts = 0;
    let mut all_done = true;
    for &c in &client_pids {
        let cl: &TxClient = sim.process(c).expect("client");
        committed += cl.committed.len();
        aborts += cl.victim_aborts;
        if cl.txs_left != 0 {
            all_done = false;
        }
    }
    // Serializability: per key, stamps strictly increase in the commit
    // log (MvccStore::commit also asserts this at commit time).
    let mut serializable = true;
    for &s in &shard_pids {
        let node: &DataNode = sim.process(s).expect("shard");
        let mut per_key: BTreeMap<u64, Vec<TotalStamp>> = BTreeMap::new();
        for &(_tx, stamp, key, _v) in &node.commit_log {
            per_key.entry(key).or_default().push(stamp);
        }
        for stamps in per_key.values() {
            if !stamps.windows(2).all(|w| w[0] < w[1]) {
                serializable = false;
            }
        }
    }
    let monitor: &TxnMonitor = sim.process(monitor_pid).expect("monitor");
    TxnScenarioResult {
        committed,
        deadlock_aborts: aborts,
        deadlocks_resolved: monitor.resolved,
        msgs: sim.metrics().counter("net.sent"),
        serializable,
        all_done,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transactions_serialize_without_catocs() {
        let r = run_txn_scenario(1, 3, 4, 4, 6);
        assert!(r.all_done, "{r:?}");
        assert_eq!(r.committed, 24);
        assert!(r.serializable);
    }

    #[test]
    fn deadlocks_occur_and_are_resolved() {
        // Few keys + random lock order + several clients → contention.
        let mut total_aborts = 0;
        for seed in 0..4 {
            let r = run_txn_scenario(seed, 2, 5, 2, 6);
            assert!(r.all_done, "seed {seed}: {r:?}");
            assert!(r.serializable, "seed {seed}");
            total_aborts += r.deadlock_aborts;
        }
        assert!(
            total_aborts > 0,
            "random lock order over few keys must deadlock sometimes"
        );
    }

    #[test]
    fn txid_encodes_client() {
        assert_eq!(client_of(make_txid(3, 77)), 3);
        assert_eq!(make_txid(3, 77).0 & 0xFFFF_FFFF, 77);
    }
}
