//! A multi-version key-value store: the state under the transactions.
//!
//! Each key keeps a history of committed versions stamped with the
//! committing transaction's [`TotalStamp`] — the §4.3 commit-time
//! ordering ("local timestamp of the coordinator ... plus node id to
//! break ties"). Reads can be served *as of* any stamp (snapshot reads
//! for OCC); writes stage per transaction and become visible atomically
//! at commit.

use crate::lock::TxId;
use clocks::lamport::TotalStamp;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One committed version of a key.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Version {
    /// Commit stamp (global order position).
    pub stamp: TotalStamp,
    /// Committing transaction.
    pub tx: TxId,
    /// The value.
    pub value: i64,
}

/// A multi-version store with staged (uncommitted) writes.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct MvccStore {
    /// Committed history per key, stamp-ordered.
    committed: BTreeMap<u64, Vec<Version>>,
    /// Staged writes per transaction.
    staged: BTreeMap<TxId, BTreeMap<u64, i64>>,
}

impl MvccStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stages a write for `tx` (invisible to everyone else).
    pub fn stage(&mut self, tx: TxId, key: u64, value: i64) {
        self.staged.entry(tx).or_default().insert(key, value);
    }

    /// Reads `key` within `tx`: own staged write first, else the latest
    /// committed version at or before `as_of`.
    pub fn read(&self, tx: TxId, key: u64, as_of: TotalStamp) -> Option<i64> {
        if let Some(writes) = self.staged.get(&tx) {
            if let Some(&v) = writes.get(&key) {
                return Some(v);
            }
        }
        self.read_committed(key, as_of)
    }

    /// Reads the latest committed value of `key` at or before `as_of`
    /// (a snapshot read — no transaction context).
    pub fn read_committed(&self, key: u64, as_of: TotalStamp) -> Option<i64> {
        self.committed.get(&key).and_then(|versions| {
            versions
                .iter()
                .rev()
                .find(|v| v.stamp <= as_of)
                .map(|v| v.value)
        })
    }

    /// Commits `tx` at `stamp`: all staged writes become visible
    /// atomically, in global-stamp order.
    ///
    /// # Panics
    ///
    /// Panics if a version with a later stamp is already committed for
    /// one of the keys (commit stamps must be handed out in order per
    /// key — the lock manager guarantees this under 2PL).
    pub fn commit(&mut self, tx: TxId, stamp: TotalStamp) -> usize {
        let Some(writes) = self.staged.remove(&tx) else {
            return 0;
        };
        let n = writes.len();
        for (key, value) in writes {
            let versions = self.committed.entry(key).or_default();
            if let Some(last) = versions.last() {
                assert!(last.stamp < stamp, "commit stamps must be monotone per key");
            }
            versions.push(Version { stamp, tx, value });
        }
        n
    }

    /// Aborts `tx`: staged writes vanish.
    pub fn abort(&mut self, tx: TxId) -> usize {
        self.staged.remove(&tx).map(|w| w.len()).unwrap_or(0)
    }

    /// The number of committed versions retained for `key`.
    pub fn version_count(&self, key: u64) -> usize {
        self.committed.get(&key).map(|v| v.len()).unwrap_or(0)
    }

    /// Discards versions older than `horizon` except the newest one at
    /// or below it (still needed to serve reads at the horizon).
    pub fn vacuum(&mut self, horizon: TotalStamp) -> usize {
        let mut removed = 0;
        for versions in self.committed.values_mut() {
            // Index of the newest version <= horizon.
            let keep_from = versions
                .iter()
                .rposition(|v| v.stamp <= horizon)
                .unwrap_or(0);
            removed += keep_from;
            versions.drain(..keep_from);
        }
        removed
    }

    /// Latest committed stamp across all keys (the vacuum horizon aide).
    pub fn latest_stamp(&self) -> Option<TotalStamp> {
        self.committed
            .values()
            .filter_map(|v| v.last())
            .map(|v| v.stamp)
            .max()
    }

    /// Transactions with staged writes.
    pub fn staged_txs(&self) -> Vec<TxId> {
        self.staged.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(t: u64) -> TotalStamp {
        TotalStamp { time: t, node: 0 }
    }

    #[test]
    fn staged_writes_invisible_until_commit() {
        let mut kv = MvccStore::new();
        kv.stage(TxId(1), 10, 100);
        assert_eq!(kv.read_committed(10, s(99)), None);
        assert_eq!(kv.read(TxId(1), 10, s(0)), Some(100), "own write visible");
        assert_eq!(kv.read(TxId(2), 10, s(99)), None, "other tx blind");
        kv.commit(TxId(1), s(5));
        assert_eq!(kv.read_committed(10, s(99)), Some(100));
    }

    #[test]
    fn snapshot_reads_respect_stamps() {
        let mut kv = MvccStore::new();
        kv.stage(TxId(1), 10, 1);
        kv.commit(TxId(1), s(5));
        kv.stage(TxId(2), 10, 2);
        kv.commit(TxId(2), s(10));
        assert_eq!(kv.read_committed(10, s(4)), None);
        assert_eq!(kv.read_committed(10, s(5)), Some(1));
        assert_eq!(kv.read_committed(10, s(7)), Some(1));
        assert_eq!(kv.read_committed(10, s(10)), Some(2));
    }

    #[test]
    fn abort_discards_writes() {
        let mut kv = MvccStore::new();
        kv.stage(TxId(1), 10, 1);
        assert_eq!(kv.abort(TxId(1)), 1);
        assert_eq!(kv.read_committed(10, s(99)), None);
        assert_eq!(kv.commit(TxId(1), s(5)), 0, "nothing left to commit");
    }

    #[test]
    #[should_panic(expected = "monotone per key")]
    fn out_of_order_commit_stamps_rejected() {
        let mut kv = MvccStore::new();
        kv.stage(TxId(1), 10, 1);
        kv.commit(TxId(1), s(10));
        kv.stage(TxId(2), 10, 2);
        kv.commit(TxId(2), s(5));
    }

    #[test]
    fn vacuum_keeps_horizon_version() {
        let mut kv = MvccStore::new();
        for (tx, t, v) in [(1u64, 5u64, 1i64), (2, 10, 2), (3, 15, 3)] {
            kv.stage(TxId(tx), 10, v);
            kv.commit(TxId(tx), s(t));
        }
        assert_eq!(kv.version_count(10), 3);
        let removed = kv.vacuum(s(12));
        assert_eq!(removed, 1, "only the version strictly below the keeper");
        assert_eq!(kv.read_committed(10, s(12)), Some(2), "horizon read intact");
        assert_eq!(kv.read_committed(10, s(20)), Some(3));
        assert_eq!(kv.latest_stamp(), Some(s(15)));
    }

    #[test]
    fn staged_txs_listing() {
        let mut kv = MvccStore::new();
        kv.stage(TxId(3), 1, 1);
        kv.stage(TxId(1), 2, 2);
        assert_eq!(kv.staged_txs(), vec![TxId(1), TxId(3)]);
    }
}
