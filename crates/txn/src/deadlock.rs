//! Distributed deadlock detection without CATOCS (§4.2, appendix 9.2).
//!
//! "To construct the global 'wait-for' graph it is sufficient to have
//! each node multicast its local wait-for graph to all nodes running the
//! detection algorithm. No stronger ordering properties are required. ...
//! only actual deadlocks are detected — no 'false' deadlocks."
//!
//! [`DeadlockMonitor`] is the receiving side: it merges per-node edge
//! reports (each carrying a plain per-node sequence number so FIFO
//! delivery per reporter suffices) and finds cycles exactly. Victim
//! selection is youngest-transaction-first.

use crate::lock::TxId;
use serde::{Deserialize, Serialize};
use statelevel::predicate::WaitForGraph;
use std::collections::BTreeMap;

/// One node's periodic wait-for report.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WaitForReport {
    /// Reporting node.
    pub from: usize,
    /// Per-node report sequence number (conventional FIFO ordering —
    /// "a conventional sequence number or timestamp ensuring that
    /// multicasts sent by the each process are received in the order
    /// sent").
    pub seq: u64,
    /// The node's complete current local wait-for edges.
    pub edges: Vec<(TxId, TxId)>,
}

/// The monitor process's state.
#[derive(Debug, Default)]
pub struct DeadlockMonitor {
    /// Latest report sequence seen per node.
    latest_seq: BTreeMap<usize, u64>,
    /// Latest edge set per node (reports are complete, so replace).
    per_node: BTreeMap<usize, Vec<(TxId, TxId)>>,
    detections: u64,
    stale_reports: u64,
}

impl DeadlockMonitor {
    /// An empty monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests a report; stale (out-of-date) reports are ignored, which
    /// is safe because each report is a complete snapshot of the node's
    /// local edges.
    pub fn ingest(&mut self, report: WaitForReport) {
        let latest = self.latest_seq.entry(report.from).or_insert(0);
        if report.seq <= *latest && *latest != 0 {
            self.stale_reports += 1;
            return;
        }
        *latest = report.seq;
        self.per_node.insert(report.from, report.edges);
    }

    /// Builds the global graph and looks for a deadlock; returns the
    /// cycle and the chosen victim (youngest = highest TxId), if any.
    pub fn detect(&mut self) -> Option<(Vec<TxId>, TxId)> {
        let mut g: WaitForGraph<TxId> = WaitForGraph::new();
        for edges in self.per_node.values() {
            g.merge_edges(edges.iter().copied());
        }
        let cycle = g.find_cycle()?;
        self.detections += 1;
        let victim = *cycle.iter().max().expect("cycle non-empty");
        Some((cycle, victim))
    }

    /// Total deadlocks detected.
    pub fn detections(&self) -> u64 {
        self.detections
    }

    /// Stale reports discarded.
    pub fn stale_reports(&self) -> u64 {
        self.stale_reports
    }

    /// Current global edge count (diagnostics).
    pub fn edge_count(&self) -> usize {
        self.per_node.values().map(|v| v.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(from: usize, seq: u64, edges: &[(u64, u64)]) -> WaitForReport {
        WaitForReport {
            from,
            seq,
            edges: edges.iter().map(|&(a, b)| (TxId(a), TxId(b))).collect(),
        }
    }

    #[test]
    fn cross_node_cycle_detected() {
        // Node 0 sees T1→T2; node 1 sees T2→T1.
        let mut m = DeadlockMonitor::new();
        m.ingest(report(0, 1, &[(1, 2)]));
        assert!(m.detect().is_none());
        m.ingest(report(1, 1, &[(2, 1)]));
        let (cycle, victim) = m.detect().expect("deadlock");
        assert_eq!(cycle.len(), 2);
        assert_eq!(victim, TxId(2), "youngest transaction is the victim");
        assert_eq!(m.detections(), 1);
    }

    #[test]
    fn report_order_is_irrelevant() {
        // The paper's point: edges may arrive in any order across nodes.
        let mut a = DeadlockMonitor::new();
        a.ingest(report(0, 1, &[(1, 2)]));
        a.ingest(report(1, 1, &[(2, 3)]));
        a.ingest(report(2, 1, &[(3, 1)]));
        let mut b = DeadlockMonitor::new();
        b.ingest(report(2, 1, &[(3, 1)]));
        b.ingest(report(0, 1, &[(1, 2)]));
        b.ingest(report(1, 1, &[(2, 3)]));
        let ca = a.detect().unwrap();
        let cb = b.detect().unwrap();
        assert_eq!(ca.1, cb.1, "same victim regardless of arrival order");
    }

    #[test]
    fn resolved_waits_clear_on_fresh_report() {
        let mut m = DeadlockMonitor::new();
        m.ingest(report(0, 1, &[(1, 2)]));
        m.ingest(report(1, 1, &[(2, 1)]));
        assert!(m.detect().is_some());
        // Node 1's next report shows T2 no longer waiting.
        m.ingest(report(1, 2, &[]));
        assert!(m.detect().is_none(), "deadlock cleared by fresh snapshot");
    }

    #[test]
    fn stale_reports_ignored() {
        let mut m = DeadlockMonitor::new();
        m.ingest(report(0, 5, &[]));
        m.ingest(report(0, 3, &[(1, 2)])); // stale: must not resurrect edges
        assert_eq!(m.stale_reports(), 1);
        assert_eq!(m.edge_count(), 0);
    }

    #[test]
    fn no_false_deadlocks_from_unrelated_edges() {
        let mut m = DeadlockMonitor::new();
        m.ingest(report(0, 1, &[(1, 2), (3, 4)]));
        m.ingest(report(1, 1, &[(2, 5), (4, 6)]));
        assert!(m.detect().is_none());
    }
}
