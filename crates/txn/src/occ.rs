//! Optimistic concurrency control with commit-time ordering.
//!
//! §4.3: "With a so-called optimistic transaction system, transactions
//! are globally ordered at commit time, with a transaction being aborted
//! if it conflicts with an earlier transaction. ... a simple ordering
//! mechanism, such as local timestamp of the coordinator at the
//! initiation of the commit protocol, plus node id to break ties,
//! provides a globally consistent ordering on transactions without using
//! or needing CATOCS."
//!
//! This module implements backward validation: a committing transaction
//! is checked against every transaction that committed after it started;
//! if any of those wrote something it read, it aborts and retries.

use crate::lock::TxId;
use clocks::lamport::TotalStamp;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Result of validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Validation {
    /// The transaction commits with this global stamp.
    Commit(TotalStamp),
    /// The transaction conflicts with an earlier committer.
    Abort {
        /// The committed transaction it lost to.
        conflicting: TxId,
    },
}

/// A committed transaction's validation footprint.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct Committed {
    tx: TxId,
    stamp: TotalStamp,
    write_set: BTreeSet<u64>,
}

/// The commit-time validator (runs at the coordinator).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct OccValidator {
    history: Vec<Committed>,
    aborts: u64,
    commits: u64,
}

impl OccValidator {
    /// An empty validator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Validates a transaction that started at `start` with the given
    /// read and write sets; on success the caller's `stamp` becomes its
    /// global position.
    pub fn validate(
        &mut self,
        tx: TxId,
        start: TotalStamp,
        stamp: TotalStamp,
        read_set: &BTreeSet<u64>,
        write_set: &BTreeSet<u64>,
    ) -> Validation {
        for c in self.history.iter().rev() {
            if c.stamp <= start {
                break; // history is stamp-ordered; older entries are safe
            }
            if !c.write_set.is_disjoint(read_set) {
                self.aborts += 1;
                return Validation::Abort { conflicting: c.tx };
            }
        }
        self.commits += 1;
        self.history.push(Committed {
            tx,
            stamp,
            write_set: write_set.clone(),
        });
        // Keep the history stamp-ordered (stamps may arrive out of order
        // from different coordinators).
        let mut i = self.history.len() - 1;
        while i > 0 && self.history[i - 1].stamp > self.history[i].stamp {
            self.history.swap(i - 1, i);
            i -= 1;
        }
        Validation::Commit(stamp)
    }

    /// Commits so far.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Aborts so far.
    pub fn aborts(&self) -> u64 {
        self.aborts
    }

    /// Trims history entries older than `horizon` (no active transaction
    /// started before it).
    pub fn trim(&mut self, horizon: TotalStamp) {
        self.history.retain(|c| c.stamp > horizon);
    }

    /// Committed transactions retained for validation.
    pub fn history_len(&self) -> usize {
        self.history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamp(t: u64, node: usize) -> TotalStamp {
        TotalStamp { time: t, node }
    }

    fn set(keys: &[u64]) -> BTreeSet<u64> {
        keys.iter().copied().collect()
    }

    #[test]
    fn disjoint_transactions_commit() {
        let mut v = OccValidator::new();
        let r = v.validate(TxId(1), stamp(0, 0), stamp(1, 0), &set(&[1]), &set(&[1]));
        assert!(matches!(r, Validation::Commit(_)));
        let r = v.validate(TxId(2), stamp(0, 1), stamp(2, 1), &set(&[2]), &set(&[2]));
        assert!(matches!(r, Validation::Commit(_)));
        assert_eq!(v.commits(), 2);
        assert_eq!(v.aborts(), 0);
    }

    #[test]
    fn read_write_conflict_aborts_later_committer() {
        let mut v = OccValidator::new();
        // T1 commits a write to key 5 after T2 started.
        v.validate(TxId(1), stamp(0, 0), stamp(5, 0), &set(&[]), &set(&[5]));
        // T2 read key 5, started at time 0 → conflict.
        let r = v.validate(TxId(2), stamp(0, 1), stamp(6, 1), &set(&[5]), &set(&[7]));
        assert_eq!(
            r,
            Validation::Abort {
                conflicting: TxId(1)
            }
        );
        assert_eq!(v.aborts(), 1);
    }

    #[test]
    fn no_conflict_with_transactions_before_start() {
        let mut v = OccValidator::new();
        v.validate(TxId(1), stamp(0, 0), stamp(1, 0), &set(&[]), &set(&[5]));
        // T2 started AFTER T1 committed: its read of 5 saw T1's write.
        let r = v.validate(TxId(2), stamp(2, 1), stamp(3, 1), &set(&[5]), &set(&[]));
        assert!(matches!(r, Validation::Commit(_)));
    }

    #[test]
    fn write_write_without_read_is_allowed() {
        // Pure blind writes don't conflict under backward validation.
        let mut v = OccValidator::new();
        v.validate(TxId(1), stamp(0, 0), stamp(1, 0), &set(&[]), &set(&[5]));
        let r = v.validate(TxId(2), stamp(0, 1), stamp(2, 1), &set(&[]), &set(&[5]));
        assert!(matches!(r, Validation::Commit(_)));
    }

    #[test]
    fn tie_break_by_node_orders_history() {
        let mut v = OccValidator::new();
        v.validate(TxId(1), stamp(0, 0), stamp(5, 1), &set(&[]), &set(&[1]));
        // Same logical time, lower node — must slot before in history.
        v.validate(TxId(2), stamp(0, 0), stamp(5, 0), &set(&[]), &set(&[2]));
        assert_eq!(v.history_len(), 2);
        assert!(v.history[0].stamp < v.history[1].stamp);
    }

    #[test]
    fn trim_discards_old_history() {
        let mut v = OccValidator::new();
        for i in 1..=10 {
            v.validate(TxId(i), stamp(i - 1, 0), stamp(i, 0), &set(&[]), &set(&[i]));
        }
        v.trim(stamp(5, usize::MAX));
        assert_eq!(v.history_len(), 5);
    }
}
