//! Read-any / write-all-available replication with availability lists.
//!
//! The paper's §4.4 optimized-transaction design (HARP-style): writes go
//! synchronously to every *available* replica; reads are served by any
//! one replica. On a replica failure, "a transaction updating replicated
//! files can drop failed servers from the availability list at
//! transaction commit and then commit the transaction with the remaining
//! servers provided the transaction was not holding read locks on any of
//! the failed servers" — so simple replicated updates abort in exactly
//! the same failure cases as a CATOCS write, while additionally
//! supporting grouped updates and durable commit. Experiment T8 compares
//! this against the `catocs::safety` k-level write path.

use serde::{Deserialize, Serialize};
use simnet::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};

/// Replication protocol messages.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplWire {
    /// Apply a write (sent to every available replica).
    Write { wid: u64, key: u64, val: i64 },
    /// Replica acknowledges a write as applied and durable.
    WriteAck { wid: u64, from: usize },
    /// Read request to one replica.
    Read { rid: u64, key: u64 },
    /// Read reply.
    ReadReply { rid: u64, val: Option<i64> },
    /// Full-state transfer for a rejoining replica.
    StateTransfer { state: Vec<(u64, i64)>, epoch: u64 },
}

/// How a coordinated write finished.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WriteOutcome {
    /// All available replicas applied it.
    Committed {
        /// The write.
        wid: u64,
        /// Time from begin to last ack.
        latency: SimDuration,
        /// Replicas that applied it.
        replicas: Vec<usize>,
    },
    /// Aborted (failed replica held our read dependency).
    Aborted {
        /// The write.
        wid: u64,
    },
}

#[derive(Debug)]
struct PendingWrite {
    key: u64,
    val: i64,
    targets: BTreeSet<usize>,
    acks: BTreeSet<usize>,
    started: SimTime,
    /// Replica this transaction read from (read-any); if that replica
    /// fails before commit, the transaction must abort.
    read_from: Option<usize>,
}

/// The write coordinator: owns the availability list.
#[derive(Debug)]
pub struct WriteCoordinator {
    available: BTreeSet<usize>,
    epoch: u64,
    pending: BTreeMap<u64, PendingWrite>,
    committed: u64,
    aborted: u64,
}

impl WriteCoordinator {
    /// Creates a coordinator over replicas `0..n`, all initially
    /// available.
    pub fn new(n: usize) -> Self {
        WriteCoordinator {
            available: (0..n).collect(),
            epoch: 1,
            pending: BTreeMap::new(),
            committed: 0,
            aborted: 0,
        }
    }

    /// The current availability list.
    pub fn available(&self) -> Vec<usize> {
        self.available.iter().copied().collect()
    }

    /// The availability-list epoch (bumped on every change).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Starts a write; returns the messages for the available replicas.
    /// `read_from` is the replica this transaction read from, if any.
    pub fn begin_write(
        &mut self,
        wid: u64,
        key: u64,
        val: i64,
        read_from: Option<usize>,
        now: SimTime,
    ) -> Vec<(usize, ReplWire)> {
        let targets = self.available.clone();
        self.pending.insert(
            wid,
            PendingWrite {
                key,
                val,
                targets: targets.clone(),
                acks: BTreeSet::new(),
                started: now,
                read_from,
            },
        );
        targets
            .into_iter()
            .map(|r| (r, ReplWire::Write { wid, key, val }))
            .collect()
    }

    /// Handles a write ack; returns the outcome when complete.
    pub fn on_ack(&mut self, wid: u64, from: usize, now: SimTime) -> Option<WriteOutcome> {
        let p = self.pending.get_mut(&wid)?;
        p.acks.insert(from);
        if p.targets.iter().all(|t| p.acks.contains(t)) {
            let p = self.pending.remove(&wid).expect("present");
            self.committed += 1;
            Some(WriteOutcome::Committed {
                wid,
                latency: now.saturating_since(p.started),
                replicas: p.targets.into_iter().collect(),
            })
        } else {
            None
        }
    }

    /// Handles a replica failure: drops it from the availability list and
    /// re-evaluates pending writes. Writes whose read dependency was on
    /// the failed replica abort; others simply stop waiting for it.
    pub fn on_failure(&mut self, replica: usize, now: SimTime) -> Vec<WriteOutcome> {
        if !self.available.remove(&replica) {
            return Vec::new();
        }
        self.epoch += 1;
        let mut outcomes = Vec::new();
        let wids: Vec<u64> = self.pending.keys().copied().collect();
        for wid in wids {
            let p = self.pending.get_mut(&wid).expect("present");
            if p.read_from == Some(replica) {
                self.pending.remove(&wid);
                self.aborted += 1;
                outcomes.push(WriteOutcome::Aborted { wid });
                continue;
            }
            p.targets.remove(&replica);
            if !p.targets.is_empty() && p.targets.iter().all(|t| p.acks.contains(t)) {
                let p = self.pending.remove(&wid).expect("present");
                self.committed += 1;
                outcomes.push(WriteOutcome::Committed {
                    wid,
                    latency: now.saturating_since(p.started),
                    replicas: p.targets.into_iter().collect(),
                });
            }
        }
        outcomes
    }

    /// Retransmissions for every pending write's unacked targets (drive
    /// from a timer — write messages may be lost).
    pub fn retry_msgs(&self) -> Vec<(usize, ReplWire)> {
        let mut out = Vec::new();
        for (&wid, p) in &self.pending {
            for &t in &p.targets {
                if !p.acks.contains(&t) {
                    out.push((
                        t,
                        ReplWire::Write {
                            wid,
                            key: p.key,
                            val: p.val,
                        },
                    ));
                }
            }
        }
        out
    }

    /// Re-admits a recovered replica (after state transfer); returns the
    /// state-transfer epoch it must catch up to.
    pub fn on_recovery(&mut self, replica: usize) -> u64 {
        if self.available.insert(replica) {
            self.epoch += 1;
        }
        self.epoch
    }

    /// Committed / aborted counters.
    pub fn totals(&self) -> (u64, u64) {
        (self.committed, self.aborted)
    }

    /// Writes still in flight.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

/// One replica's store.
#[derive(Debug, Default)]
pub struct ReplicatedStore {
    store: BTreeMap<u64, i64>,
    applied: BTreeSet<u64>,
    epoch: u64,
}

impl ReplicatedStore {
    /// An empty replica.
    pub fn new() -> Self {
        Self::default()
    }

    /// Handles a protocol message; returns any reply.
    pub fn on_wire(&mut self, me: usize, msg: &ReplWire) -> Option<ReplWire> {
        match msg {
            ReplWire::Write { wid, key, val } => {
                if self.applied.insert(*wid) {
                    self.store.insert(*key, *val);
                }
                Some(ReplWire::WriteAck {
                    wid: *wid,
                    from: me,
                })
            }
            ReplWire::Read { rid, key } => Some(ReplWire::ReadReply {
                rid: *rid,
                val: self.store.get(key).copied(),
            }),
            ReplWire::StateTransfer { state, epoch } => {
                self.store = state.iter().copied().collect();
                self.epoch = *epoch;
                None
            }
            _ => None,
        }
    }

    /// Reads a key locally.
    pub fn get(&self, key: u64) -> Option<i64> {
        self.store.get(&key).copied()
    }

    /// Produces a state transfer for a rejoining peer.
    pub fn snapshot(&self, epoch: u64) -> ReplWire {
        ReplWire::StateTransfer {
            state: self.store.iter().map(|(&k, &v)| (k, v)).collect(),
            epoch,
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the replica holds no data.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn write_commits_after_all_available_ack() {
        let mut c = WriteCoordinator::new(3);
        let msgs = c.begin_write(1, 10, 100, None, t(0));
        assert_eq!(msgs.len(), 3);
        assert!(c.on_ack(1, 0, t(1)).is_none());
        assert!(c.on_ack(1, 1, t(2)).is_none());
        match c.on_ack(1, 2, t(3)).expect("committed") {
            WriteOutcome::Committed {
                latency, replicas, ..
            } => {
                assert_eq!(latency, SimDuration::from_millis(3));
                assert_eq!(replicas, vec![0, 1, 2]);
            }
            o => panic!("unexpected {o:?}"),
        }
        assert_eq!(c.totals(), (1, 0));
    }

    #[test]
    fn failure_shrinks_availability_and_unblocks_writes() {
        let mut c = WriteCoordinator::new(3);
        c.begin_write(1, 10, 100, None, t(0));
        c.on_ack(1, 0, t(1));
        c.on_ack(1, 1, t(2));
        // Replica 2 never acks — it failed. Dropping it commits the write
        // with the remaining servers (the paper's optimization).
        let outcomes = c.on_failure(2, t(50));
        assert_eq!(outcomes.len(), 1);
        assert!(matches!(outcomes[0], WriteOutcome::Committed { .. }));
        assert_eq!(c.available(), vec![0, 1]);
        assert_eq!(c.epoch(), 2);
        // Subsequent writes only target survivors.
        let msgs = c.begin_write(2, 11, 1, None, t(60));
        assert_eq!(msgs.len(), 2);
    }

    #[test]
    fn read_dependency_on_failed_replica_aborts() {
        // "provided the transaction was not holding read locks on any of
        // the failed servers" — here it was, so it aborts.
        let mut c = WriteCoordinator::new(3);
        c.begin_write(1, 10, 100, Some(2), t(0));
        let outcomes = c.on_failure(2, t(5));
        assert_eq!(outcomes, vec![WriteOutcome::Aborted { wid: 1 }]);
        assert_eq!(c.totals(), (0, 1));
        assert_eq!(c.pending_len(), 0);
    }

    #[test]
    fn replica_applies_once_and_acks() {
        let mut r = ReplicatedStore::new();
        let w = ReplWire::Write {
            wid: 1,
            key: 5,
            val: 50,
        };
        let ack = r.on_wire(0, &w).unwrap();
        assert_eq!(ack, ReplWire::WriteAck { wid: 1, from: 0 });
        // Duplicate write (retransmit) still acks but applies once.
        let w2 = ReplWire::Write {
            wid: 1,
            key: 5,
            val: 999,
        };
        r.on_wire(0, &w2);
        assert_eq!(r.get(5), Some(50));
    }

    #[test]
    fn read_any_returns_value() {
        let mut r = ReplicatedStore::new();
        r.on_wire(
            0,
            &ReplWire::Write {
                wid: 1,
                key: 7,
                val: 70,
            },
        );
        let reply = r.on_wire(0, &ReplWire::Read { rid: 9, key: 7 }).unwrap();
        assert_eq!(
            reply,
            ReplWire::ReadReply {
                rid: 9,
                val: Some(70)
            }
        );
    }

    #[test]
    fn rejoin_via_state_transfer() {
        let mut live = ReplicatedStore::new();
        live.on_wire(
            0,
            &ReplWire::Write {
                wid: 1,
                key: 1,
                val: 10,
            },
        );
        let mut c = WriteCoordinator::new(2);
        c.on_failure(1, t(0));
        let epoch = c.on_recovery(1);
        let mut rejoined = ReplicatedStore::new();
        rejoined.on_wire(1, &live.snapshot(epoch));
        assert_eq!(rejoined.get(1), Some(10));
        assert_eq!(c.available(), vec![0, 1]);
        assert!(!rejoined.is_empty());
        assert_eq!(rejoined.len(), 1);
    }

    #[test]
    fn failure_of_unknown_replica_is_noop() {
        let mut c = WriteCoordinator::new(2);
        c.on_failure(1, t(0));
        let outcomes = c.on_failure(1, t(1));
        assert!(outcomes.is_empty());
        assert_eq!(c.epoch(), 2);
    }
}
