//! Two-phase commit: coordinator and participant state machines.
//!
//! The paper's §4.3: "The prepare-to-commit phase of the protocol
//! necessarily requires end-to-end acknowledgments because each
//! participating node must be allowed to abort the transaction. Thus, by
//! limitation 2, CATOCS cannot be used to execute this phase." The
//! participant here can refuse a prepare for a state-level reason (a
//! storage capacity limit), which is precisely the ability ("say
//! together", with the option to say *no*) that ordered delivery alone
//! cannot provide.

use crate::lock::TxId;
use crate::wal::{LogRecord, WriteAheadLog};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Messages of the commit protocol.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxnWire {
    /// Phase 1: prepare with the write set for this participant.
    Prepare { tx: TxId, writes: Vec<(u64, i64)> },
    /// A participant's vote.
    Vote { tx: TxId, from: usize, yes: bool },
    /// Phase 2: the decision.
    Decision { tx: TxId, commit: bool },
    /// Participant acknowledges the decision (allows coordinator GC).
    Ack { tx: TxId, from: usize },
}

/// The outcome of a transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxnDecision {
    /// All participants voted yes.
    Commit,
    /// Some participant refused (or timed out).
    Abort,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CoordPhase {
    Preparing,
    Deciding(TxnDecision),
    Done(TxnDecision),
}

/// The commit coordinator for a single transaction.
#[derive(Debug)]
pub struct Coordinator {
    tx: TxId,
    participants: Vec<usize>,
    votes: BTreeMap<usize, bool>,
    acks: BTreeMap<usize, bool>,
    phase: CoordPhase,
    wal: WriteAheadLog,
}

impl Coordinator {
    /// Creates a coordinator for `tx` over the given participants and
    /// returns the Prepare messages to send, as `(participant, msg)`.
    pub fn begin(
        tx: TxId,
        writes_per_participant: Vec<(usize, Vec<(u64, i64)>)>,
    ) -> (Self, Vec<(usize, TxnWire)>) {
        let participants: Vec<usize> = writes_per_participant.iter().map(|(p, _)| *p).collect();
        let mut wal = WriteAheadLog::new();
        wal.append_sync(LogRecord::Begin(tx));
        let msgs = writes_per_participant
            .into_iter()
            .map(|(p, writes)| (p, TxnWire::Prepare { tx, writes }))
            .collect();
        (
            Coordinator {
                tx,
                participants,
                votes: BTreeMap::new(),
                acks: BTreeMap::new(),
                phase: CoordPhase::Preparing,
                wal,
            },
            msgs,
        )
    }

    /// The transaction id.
    pub fn tx(&self) -> TxId {
        self.tx
    }

    /// Handles a vote; when all votes are in (or any is "no"), returns the
    /// decision and the Decision messages to send.
    pub fn on_vote(
        &mut self,
        from: usize,
        yes: bool,
    ) -> Option<(TxnDecision, Vec<(usize, TxnWire)>)> {
        if self.phase != CoordPhase::Preparing || !self.participants.contains(&from) {
            return None;
        }
        self.votes.insert(from, yes);
        let any_no = self.votes.values().any(|&v| !v);
        let all_in = self.votes.len() == self.participants.len();
        if any_no || all_in {
            let decision = if any_no {
                TxnDecision::Abort
            } else {
                TxnDecision::Commit
            };
            // The decision is durable before it is announced.
            self.wal.append_sync(match decision {
                TxnDecision::Commit => LogRecord::Commit(self.tx),
                TxnDecision::Abort => LogRecord::Abort(self.tx),
            });
            self.phase = CoordPhase::Deciding(decision);
            let msgs = self
                .participants
                .iter()
                .map(|&p| {
                    (
                        p,
                        TxnWire::Decision {
                            tx: self.tx,
                            commit: decision == TxnDecision::Commit,
                        },
                    )
                })
                .collect();
            Some((decision, msgs))
        } else {
            None
        }
    }

    /// A prepare timeout: abort unilaterally (no vote arrived from
    /// someone). Returns the Decision messages.
    pub fn on_timeout(&mut self) -> Option<(TxnDecision, Vec<(usize, TxnWire)>)> {
        if self.phase != CoordPhase::Preparing {
            return None;
        }
        self.wal.append_sync(LogRecord::Abort(self.tx));
        self.phase = CoordPhase::Deciding(TxnDecision::Abort);
        let msgs = self
            .participants
            .iter()
            .map(|&p| {
                (
                    p,
                    TxnWire::Decision {
                        tx: self.tx,
                        commit: false,
                    },
                )
            })
            .collect();
        Some((TxnDecision::Abort, msgs))
    }

    /// Records an ack; returns true when the protocol is fully complete.
    pub fn on_ack(&mut self, from: usize) -> bool {
        if let CoordPhase::Deciding(d) = self.phase {
            self.acks.insert(from, true);
            if self.acks.len() == self.participants.len() {
                self.phase = CoordPhase::Done(d);
            }
        }
        matches!(self.phase, CoordPhase::Done(_))
    }

    /// The decision, if reached.
    pub fn decision(&self) -> Option<TxnDecision> {
        match self.phase {
            CoordPhase::Preparing => None,
            CoordPhase::Deciding(d) | CoordPhase::Done(d) => Some(d),
        }
    }
}

/// A participant node: holds a key-value store, votes on prepares, and
/// applies decisions. Refuses prepares that would exceed `capacity`
/// distinct keys — the paper's "reject an operation because of lack of
/// storage" case.
#[derive(Debug)]
pub struct Participant {
    me: usize,
    store: BTreeMap<u64, i64>,
    pending: BTreeMap<TxId, Vec<(u64, i64)>>,
    wal: WriteAheadLog,
    capacity: usize,
    refused: u64,
}

impl Participant {
    /// Creates participant `me` with the given key capacity.
    pub fn new(me: usize, capacity: usize) -> Self {
        Participant {
            me,
            store: BTreeMap::new(),
            pending: BTreeMap::new(),
            wal: WriteAheadLog::new(),
            capacity,
            refused: 0,
        }
    }

    /// Handles a protocol message; returns any reply.
    pub fn on_wire(&mut self, msg: &TxnWire) -> Option<TxnWire> {
        match msg {
            TxnWire::Prepare { tx, writes } => {
                let new_keys = writes
                    .iter()
                    .filter(|(k, _)| !self.store.contains_key(k))
                    .count();
                let yes = self.store.len() + new_keys <= self.capacity;
                if yes {
                    for &(key, new) in writes {
                        let old = self.store.get(&key).copied().unwrap_or(0);
                        self.wal.append(LogRecord::Write {
                            tx: *tx,
                            key,
                            old,
                            new,
                        });
                    }
                    self.wal.append_sync(LogRecord::Prepared(*tx));
                    self.pending.insert(*tx, writes.clone());
                } else {
                    self.refused += 1;
                }
                Some(TxnWire::Vote {
                    tx: *tx,
                    from: self.me,
                    yes,
                })
            }
            TxnWire::Decision { tx, commit } => {
                if let Some(writes) = self.pending.remove(tx) {
                    if *commit {
                        for (key, new) in writes {
                            self.store.insert(key, new);
                        }
                        self.wal.append_sync(LogRecord::Commit(*tx));
                    } else {
                        self.wal.append_sync(LogRecord::Abort(*tx));
                    }
                }
                Some(TxnWire::Ack {
                    tx: *tx,
                    from: self.me,
                })
            }
            _ => None,
        }
    }

    /// Reads a key.
    pub fn get(&self, key: u64) -> Option<i64> {
        self.store.get(&key).copied()
    }

    /// Prepares refused for capacity reasons.
    pub fn refused(&self) -> u64 {
        self.refused
    }

    /// Transactions currently prepared but undecided here.
    pub fn in_doubt(&self) -> usize {
        self.pending.len()
    }

    /// Resolves an in-doubt transaction from an outcome learned elsewhere
    /// (cooperative termination: ask any participant that knows).
    pub fn resolve(&mut self, tx: TxId, commit: bool) {
        if let Some(writes) = self.pending.remove(&tx) {
            if commit {
                for (key, new) in writes {
                    self.store.insert(key, new);
                }
                self.wal.append_sync(LogRecord::Commit(tx));
            } else {
                self.wal.append_sync(LogRecord::Abort(tx));
            }
        }
    }

    /// Transactions currently prepared here with no decision.
    pub fn in_doubt_txs(&self) -> Vec<TxId> {
        self.pending.keys().copied().collect()
    }

    /// Simulates a crash followed by recovery from the durable log:
    /// committed writes are replayed, volatile state is lost; returns the
    /// in-doubt transactions that must be resolved with the coordinator.
    pub fn crash_and_recover(&mut self) -> Vec<TxId> {
        self.wal.crash();
        self.pending.clear();
        self.store = self.wal.replay_committed();
        self.wal.recover().in_doubt
    }

    /// The durable log (inspection).
    pub fn wal(&self) -> &WriteAheadLog {
        &self.wal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_commit(writes: Vec<(usize, Vec<(u64, i64)>)>, parts: &mut [Participant]) -> TxnDecision {
        let (mut coord, prepares) = Coordinator::begin(TxId(1), writes);
        let mut decision_msgs = Vec::new();
        let mut decision = None;
        for (p, msg) in prepares {
            let vote = parts[p].on_wire(&msg).expect("vote");
            if let TxnWire::Vote { from, yes, .. } = vote {
                if let Some((d, msgs)) = coord.on_vote(from, yes) {
                    decision = Some(d);
                    decision_msgs = msgs;
                }
            }
        }
        for (p, msg) in decision_msgs {
            let ack = parts[p].on_wire(&msg).expect("ack");
            if let TxnWire::Ack { from, .. } = ack {
                coord.on_ack(from);
            }
        }
        decision.expect("decision reached")
    }

    #[test]
    fn unanimous_yes_commits_everywhere() {
        let mut parts = vec![Participant::new(0, 10), Participant::new(1, 10)];
        let d = run_commit(vec![(0, vec![(1, 100)]), (1, vec![(2, 200)])], &mut parts);
        assert_eq!(d, TxnDecision::Commit);
        assert_eq!(parts[0].get(1), Some(100));
        assert_eq!(parts[1].get(2), Some(200));
    }

    #[test]
    fn single_no_aborts_everywhere() {
        // Participant 1 has capacity 0 → votes no (the state-level
        // rejection CATOCS can't express).
        let mut parts = vec![Participant::new(0, 10), Participant::new(1, 0)];
        let d = run_commit(vec![(0, vec![(1, 100)]), (1, vec![(2, 200)])], &mut parts);
        assert_eq!(d, TxnDecision::Abort);
        assert_eq!(parts[0].get(1), None, "no partial application");
        assert_eq!(parts[1].get(2), None);
        assert_eq!(parts[1].refused(), 1);
    }

    #[test]
    fn timeout_aborts() {
        let (mut coord, _msgs) = Coordinator::begin(TxId(2), vec![(0, vec![(1, 1)])]);
        let (d, msgs) = coord.on_timeout().expect("abort on timeout");
        assert_eq!(d, TxnDecision::Abort);
        assert_eq!(msgs.len(), 1);
        assert!(coord.on_timeout().is_none(), "idempotent");
        assert_eq!(coord.decision(), Some(TxnDecision::Abort));
    }

    #[test]
    fn prepared_participant_survives_crash_in_doubt() {
        let mut p = Participant::new(0, 10);
        p.on_wire(&TxnWire::Prepare {
            tx: TxId(3),
            writes: vec![(5, 50)],
        });
        assert_eq!(p.in_doubt(), 1);
        let in_doubt = p.crash_and_recover();
        assert_eq!(in_doubt, vec![TxId(3)]);
        assert_eq!(p.get(5), None, "undecided write not applied");
    }

    #[test]
    fn committed_state_survives_crash() {
        let mut p = Participant::new(0, 10);
        p.on_wire(&TxnWire::Prepare {
            tx: TxId(4),
            writes: vec![(7, 70)],
        });
        p.on_wire(&TxnWire::Decision {
            tx: TxId(4),
            commit: true,
        });
        assert_eq!(p.get(7), Some(70));
        let in_doubt = p.crash_and_recover();
        assert!(in_doubt.is_empty());
        assert_eq!(p.get(7), Some(70), "durability: commit survives crash");
    }

    #[test]
    fn votes_from_strangers_ignored() {
        let (mut coord, _) = Coordinator::begin(TxId(5), vec![(0, vec![])]);
        assert!(coord.on_vote(9, true).is_none());
        assert_eq!(coord.decision(), None);
    }

    #[test]
    fn acks_complete_protocol() {
        let (mut coord, _) = Coordinator::begin(TxId(6), vec![(0, vec![]), (1, vec![])]);
        coord.on_vote(0, true);
        let (d, _) = coord.on_vote(1, true).unwrap();
        assert_eq!(d, TxnDecision::Commit);
        assert!(!coord.on_ack(0));
        assert!(coord.on_ack(1));
    }
}
