//! Lightweight metrics: named counters, gauges and latency histograms.
//!
//! The experiment harness reads these after a run to produce the tables in
//! EXPERIMENTS.md. Everything is plain in-memory state — no atomics are
//! needed because the simulator is single-threaded.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A fixed-bucket log-scale histogram of durations (microseconds).
///
/// Buckets are powers of two from 1us up to ~2^40us, which comfortably
/// spans sub-microsecond protocol steps to multi-hour waits.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum_us: u128,
    min_us: u64,
    max_us: u64,
}

const HISTOGRAM_BUCKETS: usize = 41;

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            sum_us: 0,
            min_us: u64::MAX,
            max_us: 0,
        }
    }

    /// Records one duration observation.
    pub fn record(&mut self, d: SimDuration) {
        let us = d.as_micros();
        let idx = (64 - us.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
        if self.buckets.is_empty() {
            self.buckets = vec![0; HISTOGRAM_BUCKETS];
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_us += us as u128;
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean observation, or zero if empty.
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_micros((self.sum_us / self.count as u128) as u64)
        }
    }

    /// Minimum observation, or zero if empty.
    pub fn min(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_micros(self.min_us)
        }
    }

    /// Maximum observation.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_micros(self.max_us)
    }

    /// Approximate quantile (bucket upper bound), `q` in `[0,1]`.
    pub fn quantile(&self, q: f64) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let target = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                let upper = if i == 0 { 1 } else { 1u64 << i };
                return SimDuration::from_micros(upper.min(self.max_us.max(1)));
            }
        }
        self.max()
    }
}

/// The metrics sink owned by a simulation run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to the named counter.
    pub fn incr(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Reads a counter (zero if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the named gauge to `v`.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Sets the named gauge to `max(current, v)`.
    pub fn gauge_max(&mut self, name: &str, v: f64) {
        let e = self.gauges.entry(name.to_string()).or_insert(f64::MIN);
        if v > *e {
            *e = v;
        }
    }

    /// Reads a gauge (zero if never written).
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// Records a duration in the named histogram.
    pub fn observe(&mut self, name: &str, d: SimDuration) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(d);
    }

    /// Reads a histogram, if it exists.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, for reports.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All gauges, for reports.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All histograms, for reports — the latency counterpart of
    /// [`Metrics::counters`] / [`Metrics::gauges`].
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.incr("x", 2);
        m.incr("x", 3);
        assert_eq!(m.counter("x"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn gauges_set_and_max() {
        let mut m = Metrics::new();
        m.set_gauge("g", 1.5);
        assert_eq!(m.gauge("g"), 1.5);
        m.gauge_max("g", 0.5);
        assert_eq!(m.gauge("g"), 1.5);
        m.gauge_max("g", 2.5);
        assert_eq!(m.gauge("g"), 2.5);
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        for ms in [1u64, 2, 4, 8] {
            h.record(SimDuration::from_millis(ms));
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), SimDuration::from_millis(1));
        assert_eq!(h.max(), SimDuration::from_millis(8));
        let mean = h.mean().as_micros();
        assert_eq!(mean, (1000 + 2000 + 4000 + 8000) / 4);
    }

    #[test]
    fn histogram_quantiles_monotone() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(SimDuration::from_micros(i));
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p99);
        assert!(p99 <= h.max());
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new();
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.quantile(0.9), SimDuration::ZERO);
        assert_eq!(h.min(), SimDuration::ZERO);
    }

    #[test]
    fn metrics_observe_roundtrip() {
        let mut m = Metrics::new();
        m.observe("lat", SimDuration::from_millis(3));
        assert_eq!(m.histogram("lat").unwrap().count(), 1);
        assert!(m.histogram("nope").is_none());
    }

    #[test]
    fn histograms_iterate_in_name_order() {
        let mut m = Metrics::new();
        m.observe("b.lat", SimDuration::from_millis(2));
        m.observe("a.lat", SimDuration::from_millis(1));
        m.observe("a.lat", SimDuration::from_millis(3));
        let got: Vec<(String, u64)> = m
            .histograms()
            .map(|(k, h)| (k.to_string(), h.count()))
            .collect();
        assert_eq!(
            got,
            vec![("a.lat".to_string(), 2), ("b.lat".to_string(), 1)]
        );
    }
}
