//! Lightweight metrics: named counters, gauges, latency histograms and
//! ring-buffered time series.
//!
//! The experiment harness reads these after a run to produce the tables in
//! EXPERIMENTS.md and the `BENCH_*.json` telemetry snapshots. Everything
//! is plain in-memory state — no atomics are needed because the simulator
//! is single-threaded.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// A fixed-bucket log-scale histogram of durations (microseconds).
///
/// Buckets are powers of two from 1us up to ~2^40us, which comfortably
/// spans sub-microsecond protocol steps to multi-hour waits.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum_us: u128,
    min_us: u64,
    max_us: u64,
}

const HISTOGRAM_BUCKETS: usize = 41;

impl Default for Histogram {
    /// An empty histogram with its buckets allocated — identical to
    /// [`Histogram::new`], so `record` never has to lazily re-create
    /// the bucket vector.
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            sum_us: 0,
            min_us: u64::MAX,
            max_us: 0,
        }
    }

    /// Records one duration observation.
    pub fn record(&mut self, d: SimDuration) {
        let us = d.as_micros();
        let idx = (64 - us.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_us += us as u128;
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
    }

    /// Folds another histogram's observations into this one. The merged
    /// count, sum, min and max are exactly what recording both streams
    /// into one histogram would have produced.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations, microseconds.
    pub fn sum_micros(&self) -> u128 {
        self.sum_us
    }

    /// Mean observation, or zero if empty.
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_micros((self.sum_us / self.count as u128) as u64)
        }
    }

    /// Minimum observation, or zero if empty.
    pub fn min(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_micros(self.min_us)
        }
    }

    /// Maximum observation.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_micros(self.max_us)
    }

    /// The value range a bucket index covers, inclusive on both ends.
    fn bucket_range(i: usize) -> (u64, u64) {
        if i == 0 {
            (0, 0)
        } else {
            (1u64 << (i - 1), (1u64 << i) - 1)
        }
    }

    /// Approximate quantile, `q` in `[0,1]`, with linear interpolation
    /// within the target bucket. On dense data this lands between the
    /// bucket bounds in proportion to the target rank instead of
    /// snapping to the power-of-two upper bound; the result is always
    /// clamped into `[min, max]`.
    pub fn quantile(&self, q: f64) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let target = (((self.count as f64) * q.clamp(0.0, 1.0)).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                let (lo, hi) = Self::bucket_range(i);
                // Rank within this bucket, in (0, 1]: interpolate
                // linearly across the bucket's value range.
                let frac = (target - seen) as f64 / c as f64;
                let est = lo as f64 + frac * (hi - lo) as f64;
                let est = est.round() as u64;
                return SimDuration::from_micros(est.clamp(self.min_us, self.max_us));
            }
            seen += c;
        }
        self.max()
    }
}

/// A bounded time series: `(virtual time, value)` samples in a ring
/// buffer. When full, the oldest sample is evicted, so the series always
/// holds the most recent `capacity` samples.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TimeSeries {
    samples: VecDeque<(SimTime, f64)>,
    capacity: usize,
    pushed: u64,
}

/// Default ring capacity for series created through [`Metrics::sample`].
pub const DEFAULT_SERIES_CAPACITY: usize = 512;

impl TimeSeries {
    /// Creates an empty series retaining at most `capacity` samples.
    pub fn new(capacity: usize) -> Self {
        TimeSeries {
            samples: VecDeque::with_capacity(capacity.min(1024)),
            capacity: capacity.max(1),
            pushed: 0,
        }
    }

    /// Appends a sample, evicting the oldest if the ring is full.
    pub fn push(&mut self, at: SimTime, value: f64) {
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back((at, value));
        self.pushed += 1;
    }

    /// Samples currently retained, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.samples.iter().copied()
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total samples ever pushed (≥ `len()`; the difference is evictions).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// The most recent sample.
    pub fn last(&self) -> Option<(SimTime, f64)> {
        self.samples.back().copied()
    }

    /// Largest retained value, or zero if empty.
    pub fn max_value(&self) -> f64 {
        self.samples.iter().map(|&(_, v)| v).fold(0.0, f64::max)
    }

    /// Mean of the retained values, or zero if empty.
    pub fn mean_value(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().map(|&(_, v)| v).sum::<f64>() / self.samples.len() as f64
        }
    }
}

/// The metrics sink owned by a simulation run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    series: BTreeMap<String, TimeSeries>,
}

impl Metrics {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to the named counter.
    pub fn incr(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Reads a counter (zero if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the named gauge to `v`.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Sets the named gauge to `max(current, v)`.
    pub fn gauge_max(&mut self, name: &str, v: f64) {
        let e = self.gauges.entry(name.to_string()).or_insert(f64::MIN);
        if v > *e {
            *e = v;
        }
    }

    /// Reads a gauge (zero if never written).
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// Records a duration in the named histogram.
    pub fn observe(&mut self, name: &str, d: SimDuration) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(d);
    }

    /// Reads a histogram, if it exists.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Appends a sample to the named time series (created on first use
    /// with [`DEFAULT_SERIES_CAPACITY`]).
    pub fn sample(&mut self, name: &str, at: SimTime, value: f64) {
        self.series
            .entry(name.to_string())
            .or_insert_with(|| TimeSeries::new(DEFAULT_SERIES_CAPACITY))
            .push(at, value);
    }

    /// Reads a time series, if it exists.
    pub fn series_get(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// All counters, for reports.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All gauges, for reports.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All histograms, for reports — the latency counterpart of
    /// [`Metrics::counters`] / [`Metrics::gauges`].
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// All time series, in name order.
    pub fn series(&self) -> impl Iterator<Item = (&str, &TimeSeries)> {
        self.series.iter().map(|(k, v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.incr("x", 2);
        m.incr("x", 3);
        assert_eq!(m.counter("x"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn gauges_set_and_max() {
        let mut m = Metrics::new();
        m.set_gauge("g", 1.5);
        assert_eq!(m.gauge("g"), 1.5);
        m.gauge_max("g", 0.5);
        assert_eq!(m.gauge("g"), 1.5);
        m.gauge_max("g", 2.5);
        assert_eq!(m.gauge("g"), 2.5);
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        for ms in [1u64, 2, 4, 8] {
            h.record(SimDuration::from_millis(ms));
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), SimDuration::from_millis(1));
        assert_eq!(h.max(), SimDuration::from_millis(8));
        let mean = h.mean().as_micros();
        assert_eq!(mean, (1000 + 2000 + 4000 + 8000) / 4);
    }

    #[test]
    fn default_histogram_records_without_reinit() {
        // `Default` must allocate the bucket vector up front; recording
        // through a defaulted histogram is the regression this pins.
        let mut h = Histogram::default();
        h.record(SimDuration::from_micros(7));
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), SimDuration::from_micros(7));
    }

    #[test]
    fn histogram_quantiles_monotone() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(SimDuration::from_micros(i));
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p99);
        assert!(p99 <= h.max());
        assert!(p50 >= h.min());
    }

    #[test]
    fn quantile_interpolates_within_bucket() {
        // 1000 uniform values in [1, 1000]us: rank 500 falls in the
        // [256, 511] bucket, where a pure upper-bound quantile would
        // report 512. Linear interpolation recovers ~500 — the true
        // median of the dense uniform data.
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(SimDuration::from_micros(i));
        }
        let p50 = h.quantile(0.5).as_micros();
        assert!(
            (450..=550).contains(&p50),
            "p50 {p50} should interpolate to ~500, not snap to a power of two"
        );
    }

    #[test]
    fn merge_matches_recording_both_streams() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for us in [3u64, 70, 900] {
            a.record(SimDuration::from_micros(us));
            both.record(SimDuration::from_micros(us));
        }
        for us in [1u64, 40_000] {
            b.record(SimDuration::from_micros(us));
            both.record(SimDuration::from_micros(us));
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.sum_micros(), both.sum_micros());
        assert_eq!(a.min(), both.min());
        assert_eq!(a.max(), both.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), both.quantile(q), "q={q}");
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Histogram::new();
        a.record(SimDuration::from_micros(10));
        let before = (a.count(), a.min(), a.max(), a.sum_micros());
        a.merge(&Histogram::new());
        assert_eq!(before, (a.count(), a.min(), a.max(), a.sum_micros()));
        // Empty absorbing non-empty adopts its stats.
        let mut e = Histogram::new();
        e.merge(&a);
        assert_eq!(e.count(), 1);
        assert_eq!(e.min(), SimDuration::from_micros(10));
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new();
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.quantile(0.9), SimDuration::ZERO);
        assert_eq!(h.min(), SimDuration::ZERO);
    }

    #[test]
    fn metrics_observe_roundtrip() {
        let mut m = Metrics::new();
        m.observe("lat", SimDuration::from_millis(3));
        assert_eq!(m.histogram("lat").unwrap().count(), 1);
        assert!(m.histogram("nope").is_none());
    }

    #[test]
    fn histograms_iterate_in_name_order() {
        let mut m = Metrics::new();
        m.observe("b.lat", SimDuration::from_millis(2));
        m.observe("a.lat", SimDuration::from_millis(1));
        m.observe("a.lat", SimDuration::from_millis(3));
        let got: Vec<(String, u64)> = m
            .histograms()
            .map(|(k, h)| (k.to_string(), h.count()))
            .collect();
        assert_eq!(
            got,
            vec![("a.lat".to_string(), 2), ("b.lat".to_string(), 1)]
        );
    }

    #[test]
    fn time_series_rings() {
        let mut s = TimeSeries::new(3);
        for i in 0..5u64 {
            s.push(SimTime::from_millis(i), i as f64);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.total_pushed(), 5);
        let kept: Vec<f64> = s.iter().map(|(_, v)| v).collect();
        assert_eq!(kept, vec![2.0, 3.0, 4.0]);
        assert_eq!(s.last(), Some((SimTime::from_millis(4), 4.0)));
        assert_eq!(s.max_value(), 4.0);
        assert_eq!(s.mean_value(), 3.0);
    }

    #[test]
    fn metrics_sample_creates_and_appends() {
        let mut m = Metrics::new();
        m.sample("q.depth", SimTime::from_millis(1), 2.0);
        m.sample("q.depth", SimTime::from_millis(2), 5.0);
        let s = m.series_get("q.depth").unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.max_value(), 5.0);
        assert!(m.series_get("missing").is_none());
        let names: Vec<&str> = m.series().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["q.depth"]);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        fn hist(values: &[u64]) -> Histogram {
            let mut h = Histogram::new();
            for &us in values {
                h.record(SimDuration::from_micros(us));
            }
            h
        }

        proptest! {
            /// `merge` must be indistinguishable from having recorded
            /// both streams into one histogram: count/sum/min/max agree
            /// exactly and quantiles stay monotone in `q`.
            #[test]
            fn merge_preserves_aggregates_and_monotonicity(
                xs in proptest::collection::vec(0u64..2_000_000, 0..64),
                ys in proptest::collection::vec(0u64..2_000_000, 0..64),
            ) {
                let mut merged = hist(&xs);
                merged.merge(&hist(&ys));
                let mut all = xs.clone();
                all.extend_from_slice(&ys);
                let direct = hist(&all);
                prop_assert_eq!(merged.count(), direct.count());
                prop_assert_eq!(merged.sum_micros(), direct.sum_micros());
                prop_assert_eq!(merged.min(), direct.min());
                prop_assert_eq!(merged.max(), direct.max());
                let mut prev = SimDuration::ZERO;
                for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
                    let v = merged.quantile(q);
                    prop_assert!(v >= prev, "quantile({}) = {:?} < {:?}", q, v, prev);
                    prev = v;
                }
                if merged.count() > 0 {
                    prop_assert!(merged.quantile(0.0) >= merged.min());
                    prop_assert!(merged.quantile(1.0) <= merged.max());
                }
            }
        }
    }
}
