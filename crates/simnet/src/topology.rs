//! Spatial topologies used to derive propagation delay from distance.
//!
//! Section 5 of the paper argues that the system "diameter" — the time to
//! propagate a message across the system — grows roughly with the square
//! root of the number of processes ("a uniform world of nodes packed into a
//! circle"), and that wide-area links add a further step increase. Both
//! models are provided here so experiment T5 can measure buffering under
//! exactly the paper's assumptions.

use crate::process::ProcessId;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// How processes are arranged in space for distance-derived latency.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Topology {
    /// No spatial structure; distance is 1 between distinct processes.
    Flat,
    /// Nodes packed uniformly into a disk (the paper's §5 model): node `i`
    /// of `n` sits on a sunflower-spiral layout, so the expected pairwise
    /// distance — and thus the diameter — grows as `sqrt(n)`.
    UniformDisk { n: usize },
    /// `clusters` LANs connected by a WAN: intra-cluster distance is 1,
    /// inter-cluster distance is `wan_factor`. Models the paper's remark
    /// that "there is a significantly higher delay for wide-area
    /// communication compared to local-area communication".
    Clustered {
        cluster_size: usize,
        wan_factor: f64,
    },
    /// An explicit pairwise distance matrix (row-major, `n × n`). Pairs
    /// outside the matrix default to distance 1. Used by scenarios where
    /// some channels (a colocated database, a local client) are fast
    /// while the multicast substrate between sites is slow — the shape of
    /// the paper's Figure 2.
    Explicit { n: usize, dist: Vec<f64> },
}

impl Topology {
    /// The unit-less distance between two processes.
    pub fn distance(&self, a: ProcessId, b: ProcessId) -> f64 {
        if a == b {
            return 0.0;
        }
        match self {
            Topology::Flat => 1.0,
            Topology::UniformDisk { n } => {
                let (ax, ay) = Self::sunflower(a.0, *n);
                let (bx, by) = Self::sunflower(b.0, *n);
                let (dx, dy) = (ax - bx, ay - by);
                (dx * dx + dy * dy).sqrt().max(0.05)
            }
            Topology::Clustered {
                cluster_size,
                wan_factor,
            } => {
                let size = (*cluster_size).max(1);
                if a.0 / size == b.0 / size {
                    1.0
                } else {
                    wan_factor.max(1.0)
                }
            }
            Topology::Explicit { n, dist } => {
                if a.0 < *n && b.0 < *n {
                    dist.get(a.0 * n + b.0).copied().unwrap_or(1.0)
                } else {
                    1.0
                }
            }
        }
    }

    /// Builds an explicit topology from a square matrix of rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not form a square matrix.
    pub fn explicit(rows: Vec<Vec<f64>>) -> Topology {
        let n = rows.len();
        assert!(
            rows.iter().all(|r| r.len() == n),
            "explicit topology requires a square matrix"
        );
        Topology::Explicit {
            n,
            dist: rows.into_iter().flatten().collect(),
        }
    }

    /// The maximum distance between any pair in a system of `n` processes.
    pub fn diameter(&self, n: usize) -> f64 {
        let mut max = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                max = max.max(self.distance(ProcessId(i), ProcessId(j)));
            }
        }
        max
    }

    /// Deterministic sunflower-spiral placement of node `i` out of `n`,
    /// filling a disk of radius `sqrt(n)` with ~unit density.
    fn sunflower(i: usize, n: usize) -> (f64, f64) {
        // Golden-angle spiral: radius sqrt(i+0.5), angle i * 2.39996...
        let _ = n;
        let r = ((i as f64) + 0.5).sqrt();
        let theta = (i as f64) * 2.399_963_229_728_653;
        (r * theta.cos(), r * theta.sin())
    }

    /// Converts a distance into a propagation delay given a per-unit cost.
    pub fn propagation(&self, a: ProcessId, b: ProcessId, per_unit: SimDuration) -> SimDuration {
        let d = self.distance(a, b);
        SimDuration::from_micros((d * per_unit.as_micros() as f64).round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_is_unit_distance() {
        let t = Topology::Flat;
        assert_eq!(t.distance(ProcessId(0), ProcessId(1)), 1.0);
        assert_eq!(t.distance(ProcessId(2), ProcessId(2)), 0.0);
    }

    #[test]
    fn disk_diameter_grows_like_sqrt_n() {
        // The paper's §5 assumption: diameter ~ sqrt(N).
        let d16 = Topology::UniformDisk { n: 16 }.diameter(16);
        let d64 = Topology::UniformDisk { n: 64 }.diameter(64);
        let d256 = Topology::UniformDisk { n: 256 }.diameter(256);
        let r1 = d64 / d16;
        let r2 = d256 / d64;
        // Quadrupling N should roughly double the diameter.
        assert!((1.5..3.0).contains(&r1), "ratio 64/16 = {r1}");
        assert!((1.5..3.0).contains(&r2), "ratio 256/64 = {r2}");
    }

    #[test]
    fn clustered_distances() {
        let t = Topology::Clustered {
            cluster_size: 4,
            wan_factor: 20.0,
        };
        assert_eq!(t.distance(ProcessId(0), ProcessId(3)), 1.0);
        assert_eq!(t.distance(ProcessId(0), ProcessId(4)), 20.0);
    }

    #[test]
    fn propagation_scales_with_distance() {
        let t = Topology::Clustered {
            cluster_size: 2,
            wan_factor: 10.0,
        };
        let unit = SimDuration::from_micros(100);
        assert_eq!(
            t.propagation(ProcessId(0), ProcessId(1), unit),
            SimDuration::from_micros(100)
        );
        assert_eq!(
            t.propagation(ProcessId(0), ProcessId(2), unit),
            SimDuration::from_micros(1_000)
        );
    }

    #[test]
    fn explicit_matrix_distances() {
        let t = Topology::explicit(vec![
            vec![0.0, 30.0, 1.0],
            vec![30.0, 0.0, 1.0],
            vec![1.0, 1.0, 0.0],
        ]);
        assert_eq!(t.distance(ProcessId(0), ProcessId(1)), 30.0);
        assert_eq!(t.distance(ProcessId(0), ProcessId(2)), 1.0);
        // Out-of-matrix pairs default to 1 (but same process is 0).
        assert_eq!(t.distance(ProcessId(0), ProcessId(9)), 1.0);
        assert_eq!(t.distance(ProcessId(9), ProcessId(9)), 0.0);
    }

    #[test]
    #[should_panic(expected = "square matrix")]
    fn explicit_rejects_ragged() {
        let _ = Topology::explicit(vec![vec![0.0, 1.0], vec![1.0]]);
    }

    #[test]
    fn distance_is_symmetric() {
        let t = Topology::UniformDisk { n: 32 };
        for i in 0..8 {
            for j in 0..8 {
                let d1 = t.distance(ProcessId(i), ProcessId(j));
                let d2 = t.distance(ProcessId(j), ProcessId(i));
                assert!((d1 - d2).abs() < 1e-12);
            }
        }
    }
}
