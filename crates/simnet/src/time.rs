//! Virtual time for the discrete-event simulator.
//!
//! Simulated time is a `u64` count of microseconds since the start of the
//! run. Microsecond granularity matches the paper's discussion of
//! real-time timestamps ("a timestamp can have a granularity in the
//! microsecond range", §4.6) while leaving plenty of headroom: `u64`
//! microseconds covers ~584 000 years of simulated time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant of simulated time, in microseconds since the start of a run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds an instant from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Builds an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Returns the instant as microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the instant as (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: `earlier` is later than `self`"),
        )
    }

    /// The span from `earlier` to `self`, or zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a span from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a span from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Returns the span as microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the span as (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the span as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Multiplies the span by an integer factor, saturating on overflow.
    pub const fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(d.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(d.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}us", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10);
        let d = SimDuration::from_millis(5);
        assert_eq!((t + d).as_millis(), 15);
        assert_eq!((t - d).as_millis(), 5);
        assert_eq!((t + d).since(t), d);
    }

    #[test]
    fn saturation() {
        let t = SimTime::ZERO;
        assert_eq!(t - SimDuration::from_secs(1), SimTime::ZERO);
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(
            SimTime::ZERO.saturating_since(SimTime::from_secs(1)),
            SimDuration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "later than")]
    fn since_panics_on_negative_span() {
        let _ = SimTime::ZERO.since(SimTime::from_micros(1));
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }

    #[test]
    fn display_units() {
        assert_eq!(SimTime::from_micros(500).to_string(), "500us");
        assert_eq!(SimTime::from_micros(2_500).to_string(), "2.500ms");
        assert_eq!(SimTime::from_micros(1_500_000).to_string(), "1.500s");
    }
}
