//! The `Process` trait and the context handed to process callbacks.
//!
//! A process is a deterministic state machine driven by three stimuli:
//! start, message arrival, and timer expiry. All interaction with the
//! world — sending, setting timers, reading the clock, sampling
//! randomness, recording trace marks and metrics — goes through [`Ctx`],
//! which the simulator constructs per callback. This keeps processes pure
//! with respect to the simulation, which is what makes runs replayable.

use crate::metrics::Metrics;
use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceEvent};
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a process within a simulation (dense, starting at 0).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct ProcessId(pub usize);

impl ProcessId {
    /// The dense index of the process.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifies a timer registration, scoped to the owning process.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TimerId(pub u64);

impl fmt::Debug for TimerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "timer#{}", self.0)
    }
}

/// An outgoing message queued by a process during a callback.
#[derive(Debug)]
pub(crate) struct Outgoing<M> {
    pub to: ProcessId,
    pub msg: M,
    pub label: Option<String>,
}

/// A timer request queued by a process during a callback.
#[derive(Debug)]
pub(crate) struct TimerReq {
    pub id: TimerId,
    pub after: SimDuration,
}

/// The per-callback context: the process's window onto the simulation.
pub struct Ctx<'a, M> {
    pub(crate) me: ProcessId,
    pub(crate) now: SimTime,
    pub(crate) rng: &'a mut SmallRng,
    pub(crate) outgoing: Vec<Outgoing<M>>,
    pub(crate) timers: Vec<TimerReq>,
    pub(crate) trace: &'a mut Trace,
    pub(crate) metrics: &'a mut Metrics,
    pub(crate) n_processes: usize,
    pub(crate) stop_requested: &'a mut bool,
}

impl<'a, M> Ctx<'a, M> {
    /// The identity of the process being called.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of processes in the simulation.
    pub fn n_processes(&self) -> usize {
        self.n_processes
    }

    /// The simulation's deterministic RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Sends `msg` to `to` over the simulated network.
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.outgoing.push(Outgoing {
            to,
            msg,
            label: None,
        });
    }

    /// Sends `msg` to `to`, labelling the trace arrow for event diagrams.
    pub fn send_labeled(&mut self, to: ProcessId, msg: M, label: impl Into<String>) {
        self.outgoing.push(Outgoing {
            to,
            msg,
            label: Some(label.into()),
        });
    }

    /// Sends `msg` to every process in `group` except (optionally) self.
    pub fn multicast(&mut self, group: &[ProcessId], msg: M, include_self: bool)
    where
        M: Clone,
    {
        for &p in group {
            if include_self || p != self.me {
                self.send(p, msg.clone());
            }
        }
    }

    /// Arms timer `id` to fire `after` from now. Timers are one-shot; a
    /// process re-arms in `on_timer` for periodic behaviour.
    pub fn set_timer(&mut self, id: TimerId, after: SimDuration) {
        self.timers.push(TimerReq { id, after });
    }

    /// Records an application-level mark in the trace (renders as an
    /// annotation row in the ASCII event diagram).
    pub fn mark(&mut self, label: impl Into<String>) {
        let ev = TraceEvent::Mark {
            at: self.now,
            proc: self.me,
            label: label.into(),
        };
        self.trace.record(ev);
    }

    /// The run's metrics sink.
    pub fn metrics(&mut self) -> &mut Metrics {
        self.metrics
    }

    /// Asks the simulator to stop after this callback completes.
    pub fn stop(&mut self) {
        *self.stop_requested = true;
    }
}

/// A deterministic protocol/application state machine.
///
/// All methods have no-op defaults so simple processes implement only what
/// they need.
pub trait Process<M> {
    /// Called once when the simulation starts (or the process is added).
    fn on_start(&mut self, ctx: &mut Ctx<'_, M>) {
        let _ = ctx;
    }

    /// Called when a message arrives from the network.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: ProcessId, msg: M) {
        let _ = (ctx, from, msg);
    }

    /// Called when a previously-armed timer fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, M>, timer: TimerId) {
        let _ = (ctx, timer);
    }

    /// Called when the process recovers from a crash.
    fn on_recover(&mut self, ctx: &mut Ctx<'_, M>) {
        let _ = ctx;
    }

    /// Telemetry hook: report instantaneous gauges (queue depths,
    /// holdback sizes, buffered bytes, …) by name. The simulator calls
    /// this on every live process at the sampling cadence configured via
    /// `SimBuilder::sample_every` and folds the values into per-name
    /// time series in [`Metrics`](crate::metrics::Metrics). Read-only
    /// with respect to the simulation: no RNG, no sends, no timers — a
    /// sampled run replays byte-identically to an unsampled one.
    fn sample(&self, emit: &mut dyn FnMut(&str, f64)) {
        let _ = emit;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_display() {
        assert_eq!(ProcessId(3).to_string(), "P3");
        assert_eq!(format!("{:?}", ProcessId(3)), "P3");
        assert_eq!(ProcessId(5).index(), 5);
    }

    #[test]
    fn timer_id_debug() {
        assert_eq!(format!("{:?}", TimerId(9)), "timer#9");
    }
}
