//! A minimal JSON value parser.
//!
//! The offline serde stand-in has no serializer or deserializer, so the
//! crates that need JSON (trace round-trips, the Perfetto exporter's
//! self-check) hand-roll the encoding and validate it against this
//! parser. It is deliberately small: enough of RFC 8259 to parse what we
//! emit — objects, arrays, strings (with escapes and multi-byte UTF-8),
//! numbers, booleans and null — while rejecting malformed or trailing
//! input instead of guessing.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. Integral values up to 2^53 round-trip exactly.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, as ordered key/value pairs (duplicates preserved).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a complete JSON document. Returns `None` on any malformed
    /// or trailing input.
    pub fn parse(s: &str) -> Option<JsonValue> {
        let mut p = Parser {
            s: s.as_bytes(),
            i: 0,
        };
        let v = p.value()?;
        p.ws();
        (p.i == p.s.len()).then_some(v)
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find_map(|(k, v)| (k == key).then_some(v)),
            _ => None,
        }
    }

    /// The value as an object's fields.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(f) => Some(f),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The value as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractions).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal (no quotes added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.s.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Option<()> {
        (self.peek()? == c).then(|| self.i += 1)
    }

    fn lit(&mut self, word: &[u8]) -> Option<()> {
        self.ws();
        let end = self.i + word.len();
        (self.s.get(self.i..end)? == word).then(|| self.i = end)
    }

    fn value(&mut self) -> Option<JsonValue> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Some(JsonValue::Str(self.string()?)),
            b't' => self.lit(b"true").map(|()| JsonValue::Bool(true)),
            b'f' => self.lit(b"false").map(|()| JsonValue::Bool(false)),
            b'n' => self.lit(b"null").map(|()| JsonValue::Null),
            b'-' | b'0'..=b'9' => self.number(),
            _ => None,
        }
    }

    fn object(&mut self) -> Option<JsonValue> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Some(JsonValue::Obj(fields));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.eat(b':')?;
            let v = self.value()?;
            fields.push((k, v));
            match self.peek()? {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Some(JsonValue::Obj(fields));
                }
                _ => return None,
            }
        }
    }

    fn array(&mut self) -> Option<JsonValue> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Some(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Some(JsonValue::Arr(items));
                }
                _ => return None,
            }
        }
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let c = *self.s.get(self.i)?;
            self.i += 1;
            match c {
                b'"' => return Some(out),
                b'\\' => {
                    let e = *self.s.get(self.i)?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self.s.get(self.i..self.i + 4)?;
                            self.i += 4;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                        }
                        _ => return None,
                    }
                }
                c => {
                    // Re-assemble multi-byte UTF-8 sequences.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.i - 1;
                        let len = match c {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        let bytes = self.s.get(start..start + len)?;
                        self.i = start + len;
                        out.push_str(std::str::from_utf8(bytes).ok()?);
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Option<JsonValue> {
        self.ws();
        let start = self.i;
        if self.s.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        let digits = |p: &mut Self| {
            let from = p.i;
            while p.i < p.s.len() && p.s[p.i].is_ascii_digit() {
                p.i += 1;
            }
            p.i > from
        };
        if !digits(self) {
            return None;
        }
        if self.s.get(self.i) == Some(&b'.') {
            self.i += 1;
            if !digits(self) {
                return None;
            }
        }
        if matches!(self.s.get(self.i), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.s.get(self.i), Some(b'+' | b'-')) {
                self.i += 1;
            }
            if !digits(self) {
                return None;
            }
        }
        std::str::from_utf8(&self.s[start..self.i])
            .ok()?
            .parse()
            .ok()
            .map(JsonValue::Num)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = JsonValue::parse(
            r#"{"traceEvents":[{"name":"m0.1","ts":10,"ok":true},{"x":null}],"n":-2.5e1}"#,
        )
        .unwrap();
        let evs = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].get("name").unwrap().as_str(), Some("m0.1"));
        assert_eq!(evs[0].get("ts").unwrap().as_u64(), Some(10));
        assert_eq!(evs[0].get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(evs[1].get("x"), Some(&JsonValue::Null));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(-25.0));
    }

    #[test]
    fn rejects_malformed_and_trailing_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "{} trailing", "tru", "1.2.3"] {
            assert_eq!(JsonValue::parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let s = "quote \" slash \\ tab \t newline \n höldback—阻塞";
        let doc = format!("{{\"label\":\"{}\"}}", escape(s));
        let v = JsonValue::parse(&doc).unwrap();
        assert_eq!(v.get("label").unwrap().as_str(), Some(s));
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(JsonValue::Num(3.0).as_u64(), Some(3));
        assert_eq!(JsonValue::Num(3.5).as_u64(), None);
        assert_eq!(JsonValue::Num(-1.0).as_u64(), None);
    }
}
