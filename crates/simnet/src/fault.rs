//! Seed-derived fault-injection campaigns.
//!
//! A [`FaultPlan`] is a deterministic schedule of network and process
//! faults — partitions, heals, crashes, recoveries, and degradation
//! episodes (burst loss, duplication, delay inflation) — generated from a
//! seed and applied to a [`Sim`](crate::sim::Sim) before the run starts.
//! The generator enforces the safety rules the virtual-synchrony checker
//! relies on:
//!
//! - at most one partition is active at a time, and its minority side
//!   holds at most `(n - 1) / 2` processes, so a majority component
//!   always exists;
//!
//! - every currently-crashed process is placed on the minority side of a
//!   new partition, and while a partition is active only minority-side
//!   processes crash — the majority component stays fully connected;
//!
//! - concurrent crashes never exceed `(n - 1) / 2`, so a flush quorum
//!   survives;
//!
//! - every partition is healed and every degradation episode restored by
//!   `horizon - settle`, leaving a quiet tail in which the protocol can
//!   converge before invariants are checked.
//!
//! Determinism: the plan's RNG is separate from the simulator's, so the
//! same `(seed, n, config)` yields the same schedule regardless of what
//! the simulation itself does with randomness.

use crate::process::ProcessId;
use crate::sim::Sim;
use crate::time::{SimDuration, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// One kind of injected fault.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultKind {
    /// Bidirectional partition between components `a` and `b`.
    Partition { a: Vec<usize>, b: Vec<usize> },
    /// All partitions heal.
    Heal,
    /// Process crashes (stops receiving anything).
    Crash(usize),
    /// Process recovers (`on_recover` fires).
    Recover(usize),
    /// Network degradation episode starts.
    Degrade {
        extra_drop: f64,
        dup_probability: f64,
        delay_factor: f64,
    },
    /// Degradation episode ends.
    Restore,
}

/// A fault with its scheduled injection time.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultEvent {
    pub at: SimTime,
    pub kind: FaultKind,
}

/// Tunables for [`FaultPlan::generate`].
#[derive(Clone, Debug)]
pub struct FaultPlanConfig {
    /// End of the simulated run.
    pub horizon: SimTime,
    /// Quiet tail before `horizon` with no active faults.
    pub settle: SimDuration,
    /// Earliest fault injection time.
    pub first_fault: SimTime,
    /// Minimum gap between consecutive fault events.
    pub min_gap: SimDuration,
    /// Maximum gap between consecutive fault events.
    pub max_gap: SimDuration,
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        FaultPlanConfig {
            horizon: SimTime::from_secs(4),
            settle: SimDuration::from_millis(1200),
            first_fault: SimTime::from_millis(200),
            min_gap: SimDuration::from_millis(80),
            max_gap: SimDuration::from_millis(400),
        }
    }
}

/// A deterministic, seed-derived schedule of faults.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Seed the schedule was derived from.
    pub seed: u64,
    /// Group size the schedule was generated for.
    pub n: usize,
    /// End of the simulated run (copy of the config horizon).
    pub horizon: SimTime,
    /// Events in non-decreasing time order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Derives a schedule for a group of `n` from `seed`.
    pub fn generate(seed: u64, n: usize, cfg: &FaultPlanConfig) -> FaultPlan {
        assert!(n >= 2, "fault plans need at least two processes");
        // Offset the seed so the plan RNG never mirrors the sim RNG.
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed_fa17_0000_0001);
        let max_down = (n - 1) / 2;
        let deadline = cfg.horizon - cfg.settle;

        let mut events = Vec::new();
        let mut crashed: Vec<usize> = Vec::new();
        let mut minority: Option<Vec<usize>> = None;
        let mut degraded = false;

        let mut t = cfg.first_fault;
        while t < deadline {
            // Candidate actions that keep the schedule within the safety
            // envelope at this instant.
            let mut actions: Vec<u8> = Vec::new();
            let can_crash = crashed.len() < max_down
                && match &minority {
                    // During a partition only minority-side members crash.
                    Some(side) => side.iter().any(|p| !crashed.contains(p)),
                    None => true,
                };
            if can_crash {
                actions.push(0);
            }
            if !crashed.is_empty() {
                actions.push(1); // recover
            }
            if minority.is_none() && max_down >= 1 && crashed.len() <= max_down {
                actions.push(2); // partition
            }
            if minority.is_some() {
                actions.push(3); // heal
            }
            if degraded {
                actions.push(5); // restore
            } else {
                actions.push(4); // degrade
            }
            let action = actions[rng.gen_range(0..actions.len())];
            match action {
                0 => {
                    let pool: Vec<usize> = match &minority {
                        Some(side) => side
                            .iter()
                            .copied()
                            .filter(|p| !crashed.contains(p))
                            .collect(),
                        None => (0..n).filter(|p| !crashed.contains(p)).collect(),
                    };
                    let victim = pool[rng.gen_range(0..pool.len())];
                    crashed.push(victim);
                    events.push(FaultEvent {
                        at: t,
                        kind: FaultKind::Crash(victim),
                    });
                }
                1 => {
                    let i = rng.gen_range(0..crashed.len());
                    let back = crashed.swap_remove(i);
                    events.push(FaultEvent {
                        at: t,
                        kind: FaultKind::Recover(back),
                    });
                }
                2 => {
                    // Minority = all crashed processes plus random extras,
                    // capped at (n - 1) / 2.
                    let want = rng.gen_range(crashed.len().max(1)..=max_down);
                    let mut side = crashed.clone();
                    let mut pool: Vec<usize> = (0..n).filter(|p| !crashed.contains(p)).collect();
                    while side.len() < want {
                        let i = rng.gen_range(0..pool.len());
                        side.push(pool.swap_remove(i));
                    }
                    side.sort_unstable();
                    let other: Vec<usize> = (0..n).filter(|p| !side.contains(p)).collect();
                    events.push(FaultEvent {
                        at: t,
                        kind: FaultKind::Partition {
                            a: side.clone(),
                            b: other,
                        },
                    });
                    minority = Some(side);
                }
                3 => {
                    events.push(FaultEvent {
                        at: t,
                        kind: FaultKind::Heal,
                    });
                    minority = None;
                }
                4 => {
                    events.push(FaultEvent {
                        at: t,
                        kind: FaultKind::Degrade {
                            extra_drop: rng.gen_range(0.02..0.25),
                            dup_probability: rng.gen_range(0.0..0.2),
                            delay_factor: rng.gen_range(1.0..4.0),
                        },
                    });
                    degraded = true;
                }
                _ => {
                    events.push(FaultEvent {
                        at: t,
                        kind: FaultKind::Restore,
                    });
                    degraded = false;
                }
            }
            let gap = rng.gen_range(cfg.min_gap.as_micros()..=cfg.max_gap.as_micros());
            t += SimDuration::from_micros(gap);
        }

        // Close every open episode before the settle window.
        if minority.is_some() {
            events.push(FaultEvent {
                at: deadline,
                kind: FaultKind::Heal,
            });
        }
        if degraded {
            events.push(FaultEvent {
                at: deadline,
                kind: FaultKind::Restore,
            });
        }

        FaultPlan {
            seed,
            n,
            horizon: cfg.horizon,
            events,
        }
    }

    /// Schedules every event of the plan on `sim`.
    pub fn apply<M: std::fmt::Debug + Clone + 'static>(&self, sim: &mut Sim<M>) {
        for ev in &self.events {
            match &ev.kind {
                FaultKind::Partition { a, b } => {
                    let a: Vec<ProcessId> = a.iter().map(|&p| ProcessId(p)).collect();
                    let b: Vec<ProcessId> = b.iter().map(|&p| ProcessId(p)).collect();
                    sim.partition_at(&a, &b, ev.at);
                }
                FaultKind::Heal => sim.heal_at(ev.at),
                FaultKind::Crash(p) => sim.crash_at(ProcessId(*p), ev.at),
                FaultKind::Recover(p) => sim.recover_at(ProcessId(*p), ev.at),
                FaultKind::Degrade {
                    extra_drop,
                    dup_probability,
                    delay_factor,
                } => sim.degrade_at(ev.at, *extra_drop, *dup_probability, *delay_factor),
                FaultKind::Restore => sim.restore_at(ev.at),
            }
        }
    }

    /// Processes that are crashed (and not recovered) at the horizon.
    pub fn crashed_at_horizon(&self) -> Vec<usize> {
        let mut down: Vec<usize> = Vec::new();
        for ev in &self.events {
            match &ev.kind {
                FaultKind::Crash(p) => down.push(*p),
                FaultKind::Recover(p) => down.retain(|q| q != p),
                _ => {}
            }
        }
        down.sort_unstable();
        down
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fault plan seed={} n={} horizon={}ms ({} events)",
            self.seed,
            self.n,
            self.horizon.as_micros() / 1000,
            self.events.len()
        )?;
        for ev in &self.events {
            let ms = ev.at.as_micros() as f64 / 1000.0;
            match &ev.kind {
                FaultKind::Partition { a, b } => {
                    writeln!(f, "  {ms:>8.1}ms  partition {a:?} | {b:?}")?
                }
                FaultKind::Heal => writeln!(f, "  {ms:>8.1}ms  heal")?,
                FaultKind::Crash(p) => writeln!(f, "  {ms:>8.1}ms  crash p{p}")?,
                FaultKind::Recover(p) => writeln!(f, "  {ms:>8.1}ms  recover p{p}")?,
                FaultKind::Degrade {
                    extra_drop,
                    dup_probability,
                    delay_factor,
                } => writeln!(
                    f,
                    "  {ms:>8.1}ms  degrade drop+{extra_drop:.2} dup={dup_probability:.2} delay×{delay_factor:.1}"
                )?,
                FaultKind::Restore => writeln!(f, "  {ms:>8.1}ms  restore")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let cfg = FaultPlanConfig::default();
        let a = FaultPlan::generate(7, 5, &cfg);
        let b = FaultPlan::generate(7, 5, &cfg);
        assert_eq!(a.events, b.events);
        assert_eq!(format!("{a}"), format!("{b}"));
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = FaultPlanConfig::default();
        let plans: Vec<FaultPlan> = (0..20).map(|s| FaultPlan::generate(s, 5, &cfg)).collect();
        let distinct = plans
            .iter()
            .map(|p| format!("{p}"))
            .collect::<std::collections::BTreeSet<_>>()
            .len();
        assert!(distinct > 15, "only {distinct} distinct plans out of 20");
    }

    #[test]
    fn safety_envelope_holds() {
        let cfg = FaultPlanConfig::default();
        for seed in 0..200 {
            for n in [3, 5, 8] {
                let plan = FaultPlan::generate(seed, n, &cfg);
                let max_down = (n - 1) / 2;
                let deadline = cfg.horizon - cfg.settle;
                let mut crashed: Vec<usize> = Vec::new();
                let mut minority: Option<Vec<usize>> = None;
                let mut degraded = false;
                let mut last = SimTime::ZERO;
                for ev in &plan.events {
                    assert!(ev.at >= last, "events out of order: {plan}");
                    assert!(ev.at <= deadline, "fault after settle cut: {plan}");
                    last = ev.at;
                    match &ev.kind {
                        FaultKind::Crash(p) => {
                            if let Some(side) = &minority {
                                assert!(
                                    side.contains(p),
                                    "crash outside minority during partition: {plan}"
                                );
                            }
                            crashed.push(*p);
                            assert!(
                                crashed.len() <= max_down,
                                "too many concurrent crashes: {plan}"
                            );
                        }
                        FaultKind::Recover(p) => {
                            assert!(crashed.contains(p), "recover of live process: {plan}");
                            crashed.retain(|q| q != p);
                        }
                        FaultKind::Partition { a, b } => {
                            assert!(minority.is_none(), "nested partition: {plan}");
                            assert!(a.len() <= max_down, "minority too big: {plan}");
                            assert_eq!(a.len() + b.len(), n, "partition not a cover: {plan}");
                            for p in &crashed {
                                assert!(a.contains(p), "crashed p{p} outside minority: {plan}");
                            }
                            minority = Some(a.clone());
                        }
                        FaultKind::Heal => {
                            assert!(minority.is_some(), "heal without partition: {plan}");
                            minority = None;
                        }
                        FaultKind::Degrade { .. } => {
                            assert!(!degraded, "nested degrade: {plan}");
                            degraded = true;
                        }
                        FaultKind::Restore => {
                            assert!(degraded, "restore without degrade: {plan}");
                            degraded = false;
                        }
                    }
                }
                assert!(minority.is_none(), "partition never healed: {plan}");
                assert!(!degraded, "degrade never restored: {plan}");
                assert!(crashed.len() <= max_down);
            }
        }
    }

    #[test]
    fn applies_to_a_sim() {
        let cfg = FaultPlanConfig::default();
        let plan = FaultPlan::generate(3, 5, &cfg);
        let mut sim = crate::sim::SimBuilder::new(3).build::<()>();
        plan.apply(&mut sim);
        // Faults alone (no processes) run to completion deterministically.
        sim.run_until(cfg.horizon);
    }
}
