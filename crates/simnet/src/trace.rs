//! Event traces and ASCII event-diagram rendering.
//!
//! The paper argues with event diagrams (Figures 1–4). To reproduce them
//! faithfully, every run can record sends, deliveries, drops and
//! application marks; the trace then renders as an ASCII chart with one
//! column per process and time advancing downward, exactly the charting
//! device the paper uses. Traces also hash deterministically, which the
//! test suite uses to prove replayability.

use crate::json::{escape, JsonValue};
use crate::process::ProcessId;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};

/// One observable occurrence in a run.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A message left `from` bound for `to`.
    Send {
        at: SimTime,
        from: ProcessId,
        to: ProcessId,
        label: String,
    },
    /// A message from `from` arrived at `to` (handed to the process).
    Deliver {
        at: SimTime,
        from: ProcessId,
        to: ProcessId,
        label: String,
    },
    /// The network dropped a message.
    Drop {
        at: SimTime,
        from: ProcessId,
        to: ProcessId,
        label: String,
    },
    /// An application-level annotation at one process.
    Mark {
        at: SimTime,
        proc: ProcessId,
        label: String,
    },
    /// A crash or recovery.
    Fault {
        at: SimTime,
        proc: ProcessId,
        crashed: bool,
    },
    /// A network-wide fault transition (partition, heal, degradation
    /// episode start/end) — not tied to any single process.
    NetFault { at: SimTime, label: String },
}

impl TraceEvent {
    /// The instant the event occurred.
    pub fn at(&self) -> SimTime {
        match self {
            TraceEvent::Send { at, .. }
            | TraceEvent::Deliver { at, .. }
            | TraceEvent::Drop { at, .. }
            | TraceEvent::Mark { at, .. }
            | TraceEvent::Fault { at, .. }
            | TraceEvent::NetFault { at, .. } => *at,
        }
    }

    /// Encodes the event as one line of JSON, in serde's externally
    /// tagged enum form: `{"Send":{"at":…,"from":…,"to":…,"label":…}}`.
    /// (Hand-rolled: the offline serde stand-in has no serializer.)
    pub fn to_json(&self) -> String {
        let esc = escape;
        match self {
            TraceEvent::Send {
                at,
                from,
                to,
                label,
            } => format!(
                "{{\"Send\":{{\"at\":{},\"from\":{},\"to\":{},\"label\":\"{}\"}}}}",
                at.as_micros(),
                from.0,
                to.0,
                esc(label)
            ),
            TraceEvent::Deliver {
                at,
                from,
                to,
                label,
            } => format!(
                "{{\"Deliver\":{{\"at\":{},\"from\":{},\"to\":{},\"label\":\"{}\"}}}}",
                at.as_micros(),
                from.0,
                to.0,
                esc(label)
            ),
            TraceEvent::Drop {
                at,
                from,
                to,
                label,
            } => format!(
                "{{\"Drop\":{{\"at\":{},\"from\":{},\"to\":{},\"label\":\"{}\"}}}}",
                at.as_micros(),
                from.0,
                to.0,
                esc(label)
            ),
            TraceEvent::Mark { at, proc, label } => format!(
                "{{\"Mark\":{{\"at\":{},\"proc\":{},\"label\":\"{}\"}}}}",
                at.as_micros(),
                proc.0,
                esc(label)
            ),
            TraceEvent::Fault { at, proc, crashed } => format!(
                "{{\"Fault\":{{\"at\":{},\"proc\":{},\"crashed\":{}}}}}",
                at.as_micros(),
                proc.0,
                crashed
            ),
            TraceEvent::NetFault { at, label } => format!(
                "{{\"NetFault\":{{\"at\":{},\"label\":\"{}\"}}}}",
                at.as_micros(),
                esc(label)
            ),
        }
    }

    /// Decodes one line produced by [`TraceEvent::to_json`]. Returns
    /// `None` on any malformed input.
    pub fn from_json(line: &str) -> Option<Self> {
        let doc = JsonValue::parse(line)?;
        let (tag, body) = match doc.as_obj()? {
            [(tag, body)] => (tag.clone(), body),
            _ => return None,
        };
        let num = |k: &str| -> Option<u64> { body.get(k)?.as_u64() };
        let txt = |k: &str| -> Option<String> { Some(body.get(k)?.as_str()?.to_string()) };
        let boolean = |k: &str| -> Option<bool> { body.get(k)?.as_bool() };
        let at = SimTime::from_micros(num("at")?);
        match tag.as_str() {
            "Send" => Some(TraceEvent::Send {
                at,
                from: ProcessId(num("from")? as usize),
                to: ProcessId(num("to")? as usize),
                label: txt("label")?,
            }),
            "Deliver" => Some(TraceEvent::Deliver {
                at,
                from: ProcessId(num("from")? as usize),
                to: ProcessId(num("to")? as usize),
                label: txt("label")?,
            }),
            "Drop" => Some(TraceEvent::Drop {
                at,
                from: ProcessId(num("from")? as usize),
                to: ProcessId(num("to")? as usize),
                label: txt("label")?,
            }),
            "Mark" => Some(TraceEvent::Mark {
                at,
                proc: ProcessId(num("proc")? as usize),
                label: txt("label")?,
            }),
            "Fault" => Some(TraceEvent::Fault {
                at,
                proc: ProcessId(num("proc")? as usize),
                crashed: boolean("crashed")?,
            }),
            "NetFault" => Some(TraceEvent::NetFault {
                at,
                label: txt("label")?,
            }),
            _ => None,
        }
    }
}

/// A recorded sequence of [`TraceEvent`]s.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
    enabled: bool,
}

impl Trace {
    /// Creates a trace; recording is off until [`Trace::enable`] is called,
    /// so large experiments pay nothing for tracing.
    pub fn new() -> Self {
        Trace {
            events: Vec::new(),
            enabled: false,
        }
    }

    /// Turns recording on.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records `ev` if recording is enabled.
    pub fn record(&mut self, ev: TraceEvent) {
        if self.enabled {
            self.events.push(ev);
        }
    }

    /// Records the event produced by `f`, invoking `f` only when
    /// recording is enabled — hot paths pass a closure so label
    /// formatting costs nothing in untraced runs.
    pub fn record_with(&mut self, f: impl FnOnce() -> TraceEvent) {
        if self.enabled {
            self.events.push(f());
        }
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// A stable 64-bit digest of the trace, for determinism assertions.
    pub fn digest(&self) -> u64 {
        let mut h = DefaultHasher::new();
        for e in &self.events {
            e.hash(&mut h);
        }
        h.finish()
    }

    /// Serializes the trace as JSON lines (one event per line).
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }

    /// Renders the trace as an ASCII event diagram: one column per process
    /// (up to `n_procs`), time advancing downward, in the style of the
    /// paper's Figures 1–4.
    ///
    /// Deliveries and marks are shown on the owning process's column;
    /// sends show as `label ->P2`, deliveries as `label <-P0`.
    pub fn render_event_diagram(&self, n_procs: usize, names: &[&str]) -> String {
        const COL: usize = 22;
        let mut out = String::new();
        // Header.
        let _ = write!(out, "{:>12} |", "time");
        for i in 0..n_procs {
            let name = names.get(i).copied().unwrap_or("");
            let head = if name.is_empty() {
                format!("P{i}")
            } else {
                format!("P{i}:{name}")
            };
            let _ = write!(out, " {head:^COL$} |");
        }
        out.push('\n');
        let _ = write!(out, "{:->12}-+", "");
        for _ in 0..n_procs {
            let _ = write!(out, "{:-^w$}+", "", w = COL + 2);
        }
        out.push('\n');
        for e in &self.events {
            let (col, cell) = match e {
                TraceEvent::Send {
                    from, to, label, ..
                } => (from.0, format!("{label} ->{to}")),
                TraceEvent::Deliver {
                    from, to, label, ..
                } => (to.0, format!("{label} <-{from}")),
                TraceEvent::Drop {
                    from, to, label, ..
                } => (to.0, format!("XX {label} <-{from}")),
                TraceEvent::Mark { proc, label, .. } => (proc.0, format!("* {label}")),
                TraceEvent::Fault { proc, crashed, .. } => (
                    proc.0,
                    if *crashed {
                        "!! CRASH".into()
                    } else {
                        "!! recover".to_string()
                    },
                ),
                TraceEvent::NetFault { label, .. } => {
                    // Network-wide: rendered as a full-width banner row.
                    let _ = writeln!(out, "{:>12} | == {label}", e.at().to_string());
                    continue;
                }
            };
            if col >= n_procs {
                continue;
            }
            let _ = write!(out, "{:>12} |", e.at().to_string());
            for i in 0..n_procs {
                if i == col {
                    let mut c = cell.clone();
                    if c.len() > COL {
                        // Truncate on a char boundary: a byte-offset
                        // truncate panics mid-way through a multi-byte
                        // label character.
                        let mut cut = COL;
                        while !c.is_char_boundary(cut) {
                            cut -= 1;
                        }
                        c.truncate(cut);
                    }
                    let _ = write!(out, " {c:^COL$} |");
                } else {
                    let _ = write!(out, " {:^COL$} |", "");
                }
            }
            out.push('\n');
        }
        out
    }

    /// A copy of the trace keeping only events whose rendered label
    /// matches `keep` (plus all marks and faults) — used to strip
    /// protocol chatter from event diagrams.
    pub fn filtered(&self, keep: impl Fn(&str) -> bool) -> Trace {
        let mut t = Trace::new();
        t.enable();
        for e in &self.events {
            let retain = match e {
                TraceEvent::Send { label, .. }
                | TraceEvent::Deliver { label, .. }
                | TraceEvent::Drop { label, .. } => keep(label),
                TraceEvent::Mark { .. }
                | TraceEvent::Fault { .. }
                | TraceEvent::NetFault { .. } => true,
            };
            if retain {
                t.record(e.clone());
            }
        }
        t
    }

    /// Returns the deliveries at process `p`, in delivery order.
    pub fn deliveries_at(&self, p: ProcessId) -> Vec<(SimTime, ProcessId, &str)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Deliver {
                    at,
                    from,
                    to,
                    label,
                } if *to == p => Some((*at, *from, label.as_str())),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.enable();
        t.record(TraceEvent::Send {
            at: SimTime::from_micros(10),
            from: ProcessId(0),
            to: ProcessId(1),
            label: "m1".into(),
        });
        t.record(TraceEvent::Deliver {
            at: SimTime::from_micros(20),
            from: ProcessId(0),
            to: ProcessId(1),
            label: "m1".into(),
        });
        t.record(TraceEvent::Mark {
            at: SimTime::from_micros(25),
            proc: ProcessId(1),
            label: "acted".into(),
        });
        t
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new();
        t.record(TraceEvent::Mark {
            at: SimTime::ZERO,
            proc: ProcessId(0),
            label: "x".into(),
        });
        assert!(t.events().is_empty());
    }

    #[test]
    fn digest_is_stable_and_order_sensitive() {
        let t1 = sample();
        let t2 = sample();
        assert_eq!(t1.digest(), t2.digest());

        let mut t3 = Trace::new();
        t3.enable();
        // Same events, different order.
        let evs: Vec<_> = sample().events().to_vec();
        for e in evs.into_iter().rev() {
            t3.record(e);
        }
        assert_ne!(t1.digest(), t3.digest());
    }

    #[test]
    fn diagram_renders_all_rows() {
        let d = sample().render_event_diagram(2, &["sender", "receiver"]);
        assert!(d.contains("P0:sender"));
        assert!(d.contains("m1 ->P1"));
        assert!(d.contains("m1 <-P0"));
        assert!(d.contains("* acted"));
    }

    #[test]
    fn long_multibyte_label_truncates_on_char_boundary() {
        // Regression: a label whose 22nd byte falls inside a multi-byte
        // character used to panic `String::truncate` mid-render.
        let mut t = Trace::new();
        t.enable();
        // Rendered cell is "* m1 жжж…": the odd ASCII prefix puts byte 22
        // in the middle of a two-byte 'ж'.
        t.record(TraceEvent::Mark {
            at: SimTime::from_micros(5),
            proc: ProcessId(0),
            label: "m1 жжжжжжжжжжжж".into(),
        });
        let d = t.render_event_diagram(1, &[]);
        assert!(d.contains("m1 ж"), "{d}");
    }

    #[test]
    fn record_with_is_lazy_when_disabled() {
        let mut t = Trace::new();
        let mut called = false;
        t.record_with(|| {
            called = true;
            TraceEvent::Mark {
                at: SimTime::ZERO,
                proc: ProcessId(0),
                label: "never".into(),
            }
        });
        assert!(!called, "label closure must not run while disabled");
        assert!(t.events().is_empty());
        t.enable();
        t.record_with(|| TraceEvent::Mark {
            at: SimTime::ZERO,
            proc: ProcessId(0),
            label: "now".into(),
        });
        assert_eq!(t.events().len(), 1);
    }

    #[test]
    fn filtered_keeps_matching_and_marks() {
        let t = sample();
        let f = t.filtered(|l| l.contains("nothing"));
        // Send and Deliver dropped; the Mark survives.
        assert_eq!(f.events().len(), 1);
        let f2 = t.filtered(|l| l.contains("m1"));
        assert_eq!(f2.events().len(), 3);
    }

    #[test]
    fn deliveries_at_filters_by_process() {
        let t = sample();
        let d = t.deliveries_at(ProcessId(1));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].2, "m1");
        assert!(t.deliveries_at(ProcessId(0)).is_empty());
    }

    #[test]
    fn net_fault_roundtrips_and_renders() {
        let ev = TraceEvent::NetFault {
            at: SimTime::from_micros(42),
            label: "partition [0] | [1, 2]".into(),
        };
        let back = TraceEvent::from_json(&ev.to_json()).unwrap();
        assert_eq!(back, ev);
        let mut t = Trace::new();
        t.enable();
        t.record(ev);
        let d = t.render_event_diagram(3, &[]);
        assert!(d.contains("== partition [0] | [1, 2]"));
        // filtered() keeps net faults alongside marks and process faults.
        assert_eq!(t.filtered(|_| false).events().len(), 1);
    }

    #[test]
    fn json_lines_roundtrip() {
        let t = sample();
        let lines = t.to_json_lines();
        assert_eq!(lines.lines().count(), 3);
        let first = TraceEvent::from_json(lines.lines().next().unwrap()).unwrap();
        assert_eq!(&first, &t.events()[0]);
        // Every line roundtrips.
        for (line, ev) in lines.lines().zip(t.events()) {
            assert_eq!(TraceEvent::from_json(line).as_ref(), Some(ev));
        }
        // Malformed lines are rejected, not mis-parsed.
        assert_eq!(TraceEvent::from_json(""), None);
        assert_eq!(TraceEvent::from_json("{\"Send\":{}}"), None);
        assert_eq!(
            TraceEvent::from_json(&format!("{} trailing", lines.lines().next().unwrap())),
            None
        );
    }
}
