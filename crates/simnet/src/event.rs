//! The event queue at the heart of the discrete-event scheduler.
//!
//! Events are ordered by `(time, seq)` where `seq` is a monotonically
//! increasing insertion number. The sequence number makes the simulation
//! fully deterministic: two events scheduled for the same instant always
//! pop in the order they were pushed, independent of heap internals.

use crate::process::{ProcessId, TimerId};
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled occurrence inside the simulator.
#[derive(Debug)]
pub enum EventKind<M> {
    /// Start of a process: `on_start` is invoked.
    Start { proc: ProcessId },
    /// A message arrives on the wire at `to`.
    Deliver {
        to: ProcessId,
        from: ProcessId,
        msg: M,
        sent_at: SimTime,
    },
    /// A timer set by `proc` fires.
    Timer { proc: ProcessId, timer: TimerId },
    /// The process crashes (stops receiving anything).
    Crash { proc: ProcessId },
    /// The process recovers and `on_recover` is invoked.
    Recover { proc: ProcessId },
    /// Two network blocks separate (bidirectional partition).
    PartitionStart {
        a: Vec<ProcessId>,
        b: Vec<ProcessId>,
    },
    /// All partitions heal.
    PartitionHeal,
    /// A network-degradation episode begins: burst loss, message
    /// duplication, and/or inflated delays (see `NetState::degrade`).
    NetDegrade {
        extra_drop: f64,
        dup_probability: f64,
        delay_factor: f64,
    },
    /// Degradation ends; the network returns to its configured behaviour.
    NetRestore,
}

/// An event with its scheduled time and tie-breaking sequence number.
#[derive(Debug)]
pub struct Event<M> {
    pub at: SimTime,
    pub seq: u64,
    pub kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<M> Eq for Event<M> {}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority queue of simulation events.
#[derive(Debug)]
pub struct EventQueue<M> {
    heap: BinaryHeap<Event<M>>,
    next_seq: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `kind` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, kind });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event<M>> {
        self.heap.pop()
    }

    /// Returns the time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(proc: usize) -> EventKind<()> {
        EventKind::Timer {
            proc: ProcessId(proc),
            timer: TimerId(0),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(30), timer(3));
        q.push(SimTime::from_micros(10), timer(1));
        q.push(SimTime::from_micros(20), timer(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.as_micros())
            .collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn same_time_pops_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_micros(5), timer(i));
        }
        let seqs: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
        let sorted = {
            let mut s = seqs.clone();
            s.sort_unstable();
            s
        };
        assert_eq!(seqs, sorted, "ties must break by insertion order");
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(7), timer(0));
        q.push(SimTime::from_micros(3), timer(1));
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(3)));
        assert_eq!(q.pop().unwrap().at, SimTime::from_micros(3));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
