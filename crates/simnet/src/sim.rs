//! The simulator: event loop, fault injection, and run control.

use crate::event::{EventKind, EventQueue};
use crate::metrics::Metrics;
use crate::net::{NetConfig, NetState};
use crate::process::{Ctx, Process, ProcessId, TimerId};
use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceEvent};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::any::Any;
use std::fmt::Debug;

/// Builds a [`Sim`] with a seed and network configuration.
///
/// # Example
///
/// ```
/// use simnet::prelude::*;
/// let sim = SimBuilder::new(1)
///     .net(NetConfig::ideal(SimDuration::from_millis(1)))
///     .trace()
///     .build::<()>();
/// assert_eq!(sim.now(), SimTime::ZERO);
/// ```
#[derive(Debug)]
pub struct SimBuilder {
    seed: u64,
    net: NetConfig,
    trace: bool,
    sample_every: Option<SimDuration>,
}

impl SimBuilder {
    /// Starts a builder with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        SimBuilder {
            seed,
            net: NetConfig::default(),
            trace: false,
            sample_every: None,
        }
    }

    /// Sets the network configuration.
    pub fn net(mut self, cfg: NetConfig) -> Self {
        self.net = cfg;
        self
    }

    /// Enables event-trace recording.
    pub fn trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Enables time-series sampling: every `cadence` of virtual time,
    /// every live process's [`Process::sample`] gauges are folded into
    /// `ts.<name>.sum` / `ts.<name>.max` series in the run's metrics
    /// (plus a built-in `ts.sim.queue` series for event-queue depth).
    /// Sampling touches no RNG and schedules no events, so a sampled run
    /// replays byte-identically to an unsampled one.
    pub fn sample_every(mut self, cadence: SimDuration) -> Self {
        assert!(cadence > SimDuration::ZERO, "sampling cadence must be > 0");
        self.sample_every = Some(cadence);
        self
    }

    /// Builds the simulator for message type `M`.
    pub fn build<M: Debug>(self) -> Sim<M> {
        let mut trace = Trace::new();
        if self.trace {
            trace.enable();
        }
        Sim {
            procs: Vec::new(),
            alive: Vec::new(),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            cfg: self.net,
            net: NetState::new(),
            rng: SmallRng::seed_from_u64(self.seed),
            trace,
            metrics: Metrics::new(),
            stop: false,
            sample_every: self.sample_every,
            next_sample: self.sample_every.map(|c| SimTime::ZERO + c),
            group_sampler: None,
        }
    }
}

/// A single-threaded, deterministic discrete-event simulation.
pub struct Sim<M> {
    procs: Vec<Box<dyn AnyProcess<M>>>,
    alive: Vec<bool>,
    queue: EventQueue<M>,
    now: SimTime,
    cfg: NetConfig,
    net: NetState,
    rng: SmallRng,
    trace: Trace,
    metrics: Metrics,
    stop: bool,
    sample_every: Option<SimDuration>,
    next_sample: Option<SimTime>,
    group_sampler: Option<GroupSampler>,
}

/// A whole-group sampling hook, run after the per-process gauge pass on
/// every sampling tick: it sees every process (as `&dyn Any`, with its
/// liveness) at once, so it can compute cross-process aggregates — e.g.
/// the wait-graph stall analysis — that no single process can. Hooks
/// must be read-only with respect to process state (they only get shared
/// references) and must not touch RNG or the event queue, so installing
/// one cannot perturb a run.
pub type GroupSampler = Box<dyn FnMut(SimTime, &[(&dyn Any, bool)], &mut Metrics)>;

/// Object-safe union of `Process<M>` and `Any`, enabling typed access to a
/// process's final state after a run (see [`Sim::process`]).
pub trait AnyProcess<M>: Process<M> + Any {
    /// Upcast helper.
    fn as_any(&self) -> &dyn Any;
    /// Upcast helper (mutable).
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<M, T: Process<M> + Any> AnyProcess<M> for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl<M: Debug + Clone + 'static> Sim<M> {
    /// Adds a process; it will receive `on_start` when the clock first
    /// advances (or immediately upon [`Sim::run_until`]).
    pub fn add_process<P: Process<M> + Any>(&mut self, p: P) -> ProcessId {
        let id = ProcessId(self.procs.len());
        self.procs.push(Box::new(p));
        self.alive.push(true);
        self.queue.push(self.now, EventKind::Start { proc: id });
        id
    }

    /// Number of processes added so far.
    pub fn n_processes(&self) -> usize {
        self.procs.len()
    }

    /// The IDs of all processes, in order of addition.
    pub fn all_processes(&self) -> Vec<ProcessId> {
        (0..self.procs.len()).map(ProcessId).collect()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The run's metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The run's metrics (mutable, for harness-level annotations).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// The recorded trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Typed view of a process's state (e.g. to read results post-run).
    pub fn process<T: 'static>(&self, id: ProcessId) -> Option<&T> {
        self.procs.get(id.0)?.as_any().downcast_ref::<T>()
    }

    /// Typed mutable view of a process's state.
    pub fn process_mut<T: 'static>(&mut self, id: ProcessId) -> Option<&mut T> {
        self.procs.get_mut(id.0)?.as_any_mut().downcast_mut::<T>()
    }

    /// Whether the process is currently up.
    pub fn is_alive(&self, id: ProcessId) -> bool {
        self.alive.get(id.0).copied().unwrap_or(false)
    }

    /// Schedules a crash of `p` at absolute time `at`.
    pub fn crash_at(&mut self, p: ProcessId, at: SimTime) {
        self.queue.push(at, EventKind::Crash { proc: p });
    }

    /// Schedules a recovery of `p` at absolute time `at`.
    pub fn recover_at(&mut self, p: ProcessId, at: SimTime) {
        self.queue.push(at, EventKind::Recover { proc: p });
    }

    /// Schedules a bidirectional partition between `a` and `b` at `at`.
    pub fn partition_at(&mut self, a: &[ProcessId], b: &[ProcessId], at: SimTime) {
        self.queue.push(
            at,
            EventKind::PartitionStart {
                a: a.to_vec(),
                b: b.to_vec(),
            },
        );
    }

    /// Schedules healing of all partitions at `at`.
    pub fn heal_at(&mut self, at: SimTime) {
        self.queue.push(at, EventKind::PartitionHeal);
    }

    /// Schedules a network-degradation episode (burst loss, duplication,
    /// delay inflation) starting at `at`.
    pub fn degrade_at(
        &mut self,
        at: SimTime,
        extra_drop: f64,
        dup_probability: f64,
        delay_factor: f64,
    ) {
        self.queue.push(
            at,
            EventKind::NetDegrade {
                extra_drop,
                dup_probability,
                delay_factor,
            },
        );
    }

    /// Schedules the end of any degradation episode at `at`.
    pub fn restore_at(&mut self, at: SimTime) {
        self.queue.push(at, EventKind::NetRestore);
    }

    /// Runs until the queue is empty or simulated time reaches `deadline`.
    ///
    /// Returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut processed = 0;
        while let Some(t) = self.queue.peek_time() {
            if t > deadline || self.stop {
                break;
            }
            // Fire any sample points due strictly before the next event.
            self.sample_until(t.min(deadline));
            let Some(ev) = self.queue.pop() else {
                break;
            };
            self.now = ev.at;
            self.dispatch(ev.kind);
            processed += 1;
        }
        if !self.stop {
            self.sample_until(deadline);
        }
        if self.now < deadline && !self.stop {
            self.now = deadline;
        }
        processed
    }

    /// Takes every pending sample at or before `upto`, advancing the
    /// virtual clock to each sample point in turn.
    fn sample_until(&mut self, upto: SimTime) {
        let Some(cadence) = self.sample_every else {
            return;
        };
        while let Some(at) = self.next_sample {
            if at > upto {
                break;
            }
            self.now = self.now.max(at);
            self.take_samples(at);
            self.next_sample = Some(at + cadence);
        }
    }

    /// One sampling pass: fold every live process's gauges into
    /// per-name sum/max series, plus the built-in event-queue depth.
    fn take_samples(&mut self, at: SimTime) {
        use std::collections::BTreeMap;
        let mut agg: BTreeMap<String, (f64, f64)> = BTreeMap::new();
        for (i, p) in self.procs.iter().enumerate() {
            if !self.alive[i] {
                continue;
            }
            p.sample(&mut |name: &str, v: f64| {
                let e = agg.entry(name.to_string()).or_insert((0.0, f64::MIN));
                e.0 += v;
                e.1 = e.1.max(v);
            });
        }
        for (name, (sum, max)) in agg {
            self.metrics.sample(&format!("ts.{name}.sum"), at, sum);
            self.metrics.sample(&format!("ts.{name}.max"), at, max);
        }
        self.metrics
            .sample("ts.sim.queue", at, self.queue.len() as f64);
        // Whole-group hook last, so it can see the same instant the
        // per-process series describe. Taken out and restored to keep
        // the borrows disjoint.
        if let Some(mut hook) = self.group_sampler.take() {
            let views: Vec<(&dyn Any, bool)> = self
                .procs
                .iter()
                .zip(self.alive.iter())
                .map(|(p, &alive)| (p.as_any(), alive))
                .collect();
            hook(at, &views, &mut self.metrics);
            self.group_sampler = Some(hook);
        }
    }

    /// Installs a whole-group sampling hook (see [`GroupSampler`]); it
    /// fires on the [`SimBuilder::sample_every`] cadence after the
    /// per-process gauge pass. Replaces any previous hook.
    pub fn set_group_sampler(&mut self, hook: GroupSampler) {
        self.group_sampler = Some(hook);
    }

    /// Runs until no events remain (or `max` is reached as a safety net).
    pub fn run_to_quiescence(&mut self, max: SimTime) -> u64 {
        self.run_until(max)
    }

    fn dispatch(&mut self, kind: EventKind<M>) {
        match kind {
            EventKind::Start { proc } => {
                if self.alive[proc.0] {
                    self.invoke(proc, Stimulus::Start);
                }
            }
            EventKind::Deliver {
                to,
                from,
                msg,
                sent_at,
            } => {
                if !self.alive.get(to.0).copied().unwrap_or(false) {
                    // Dead — or addressed to a process that does not
                    // exist (a protocol bug surfaced as a drop, not a
                    // panic, so fault campaigns keep running).
                    self.metrics.incr("net.dropped_dead", 1);
                    return;
                }
                self.metrics.incr("net.delivered", 1);
                self.metrics
                    .observe("net.latency", self.now.saturating_since(sent_at));
                let at = self.now;
                self.trace.record_with(|| TraceEvent::Deliver {
                    at,
                    from,
                    to,
                    label: truncate(format!("{msg:?}"), 60),
                });
                self.invoke(to, Stimulus::Message { from, msg });
            }
            EventKind::Timer { proc, timer } => {
                if self.alive[proc.0] {
                    self.invoke(proc, Stimulus::Timer(timer));
                }
            }
            EventKind::Crash { proc } => {
                // Fault boundary: a plan may target a process that was
                // never added — record and ignore rather than panic.
                if self.alive.get(proc.0).copied().unwrap_or(false) {
                    self.alive[proc.0] = false;
                    self.metrics.incr("faults.crash", 1);
                    self.trace.record(TraceEvent::Fault {
                        at: self.now,
                        proc,
                        crashed: true,
                    });
                }
            }
            EventKind::Recover { proc } => {
                if self.alive.get(proc.0) == Some(&false) {
                    self.alive[proc.0] = true;
                    self.metrics.incr("faults.recover", 1);
                    self.trace.record(TraceEvent::Fault {
                        at: self.now,
                        proc,
                        crashed: false,
                    });
                    self.invoke(proc, Stimulus::Recover);
                }
            }
            EventKind::PartitionStart { a, b } => {
                let at = self.now;
                self.trace.record_with(|| {
                    let a: Vec<usize> = a.iter().map(|p| p.0).collect();
                    let b: Vec<usize> = b.iter().map(|p| p.0).collect();
                    TraceEvent::NetFault {
                        at,
                        label: format!("partition {a:?} | {b:?}"),
                    }
                });
                self.net.partition(&a, &b);
                self.metrics.incr("faults.partition", 1);
            }
            EventKind::PartitionHeal => {
                self.net.heal();
                self.metrics.incr("faults.heal", 1);
                self.trace.record(TraceEvent::NetFault {
                    at: self.now,
                    label: "heal".into(),
                });
            }
            EventKind::NetDegrade {
                extra_drop,
                dup_probability,
                delay_factor,
            } => {
                self.net.degrade(extra_drop, dup_probability, delay_factor);
                self.metrics.incr("faults.degrade", 1);
                let at = self.now;
                self.trace.record_with(|| TraceEvent::NetFault {
                    at,
                    label: format!(
                        "degrade drop+{extra_drop:.2} dup={dup_probability:.2} delay x{delay_factor:.1}"
                    ),
                });
            }
            EventKind::NetRestore => {
                self.net.restore();
                self.metrics.incr("faults.restore", 1);
                self.trace.record(TraceEvent::NetFault {
                    at: self.now,
                    label: "restore".into(),
                });
            }
        }
    }

    fn invoke(&mut self, proc: ProcessId, stim: Stimulus<M>) {
        let Sim {
            procs,
            queue,
            now,
            cfg,
            net,
            rng,
            trace,
            metrics,
            stop,
            alive,
            ..
        } = self;
        let n_processes = procs.len();
        let mut ctx = Ctx {
            me: proc,
            now: *now,
            rng,
            outgoing: Vec::new(),
            timers: Vec::new(),
            trace,
            metrics,
            n_processes,
            stop_requested: stop,
        };
        let p = &mut procs[proc.0];
        match stim {
            Stimulus::Start => p.on_start(&mut ctx),
            Stimulus::Message { from, msg } => p.on_message(&mut ctx, from, msg),
            Stimulus::Timer(t) => p.on_timer(&mut ctx, t),
            Stimulus::Recover => p.on_recover(&mut ctx),
        }
        let outgoing = std::mem::take(&mut ctx.outgoing);
        let timers = std::mem::take(&mut ctx.timers);
        drop(ctx);
        let _ = alive;
        for t in timers {
            queue.push(*now + t.after, EventKind::Timer { proc, timer: t.id });
        }
        for o in outgoing {
            metrics.incr("net.sent", 1);
            let label = if trace.is_enabled() {
                o.label
                    .clone()
                    .unwrap_or_else(|| truncate(format!("{:?}", o.msg), 60))
            } else {
                String::new()
            };
            let unreachable = !net.reachable(proc, o.to);
            // During a degradation episode, burst loss stacks on top of
            // the configured drop probability. The guard keeps the RNG
            // draw sequence identical to the undegraded simulator when no
            // episode is active, so existing seeds replay byte-for-byte.
            let drop_p = (cfg.drop_probability + net.extra_drop()).clamp(0.0, 1.0);
            let dropped = unreachable || (drop_p > 0.0 && rng.gen_bool(drop_p));
            if dropped {
                metrics.incr("net.dropped", 1);
                trace.record(TraceEvent::Drop {
                    at: *now,
                    from: proc,
                    to: o.to,
                    label,
                });
                continue;
            }
            trace.record(TraceEvent::Send {
                at: *now,
                from: proc,
                to: o.to,
                label,
            });
            // Duplication samples the RNG only while an episode sets
            // dup_probability > 0, again preserving replay of old seeds.
            let dup_p = net.dup_probability();
            let duplicated = dup_p > 0.0 && rng.gen_bool(dup_p);
            if duplicated {
                metrics.incr("net.duplicated", 1);
            }
            let factor = net.delay_factor();
            let scale = |d: crate::time::SimDuration| {
                if factor == 1.0 {
                    d
                } else {
                    crate::time::SimDuration::from_micros(
                        (d.as_micros() as f64 * factor).round() as u64
                    )
                }
            };
            let delay = scale(cfg.latency.sample(rng, &cfg.topology, proc, o.to));
            let at = net.arrival_time(cfg, proc, o.to, *now, delay);
            if duplicated {
                let delay2 = scale(cfg.latency.sample(rng, &cfg.topology, proc, o.to));
                let at2 = net.arrival_time(cfg, proc, o.to, *now, delay2);
                queue.push(
                    at2,
                    EventKind::Deliver {
                        to: o.to,
                        from: proc,
                        msg: o.msg.clone(),
                        sent_at: *now,
                    },
                );
            }
            queue.push(
                at,
                EventKind::Deliver {
                    to: o.to,
                    from: proc,
                    msg: o.msg,
                    sent_at: *now,
                },
            );
        }
    }
}

enum Stimulus<M> {
    Start,
    Message { from: ProcessId, msg: M },
    Timer(TimerId),
    Recover,
}

fn truncate(mut s: String, max: usize) -> String {
    if s.len() > max {
        let mut cut = max;
        while !s.is_char_boundary(cut) {
            cut -= 1;
        }
        s.truncate(cut);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[derive(Clone, Debug)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    #[derive(Default)]
    struct Pinger {
        got: Vec<u32>,
    }

    impl Process<Msg> for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            if ctx.me().0 == 0 {
                for i in 0..5 {
                    ctx.send(ProcessId(1), Msg::Ping(i));
                }
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: ProcessId, msg: Msg) {
            match msg {
                Msg::Ping(i) => ctx.send(from, Msg::Pong(i)),
                Msg::Pong(i) => self.got.push(i),
            }
        }
    }

    fn build(seed: u64) -> Sim<Msg> {
        let mut sim = SimBuilder::new(seed)
            .net(NetConfig::ideal(SimDuration::from_millis(1)))
            .build::<Msg>();
        sim.add_process(Pinger::default());
        sim.add_process(Pinger::default());
        sim
    }

    #[test]
    fn ping_pong_roundtrip() {
        let mut sim = build(1);
        sim.run_until(SimTime::from_secs(1));
        let p0: &Pinger = sim.process(ProcessId(0)).unwrap();
        assert_eq!(p0.got, vec![0, 1, 2, 3, 4]);
        assert_eq!(sim.metrics().counter("net.sent"), 10);
        assert_eq!(sim.metrics().counter("net.delivered"), 10);
    }

    #[test]
    fn deterministic_replay() {
        let digest = |seed| {
            let mut sim = SimBuilder::new(seed)
                .net(NetConfig::lossy_lan(0.1))
                .trace()
                .build::<Msg>();
            sim.add_process(Pinger::default());
            sim.add_process(Pinger::default());
            sim.run_until(SimTime::from_secs(1));
            sim.trace().digest()
        };
        assert_eq!(digest(42), digest(42));
        assert_ne!(digest(42), digest(43));
    }

    #[test]
    fn crash_stops_delivery() {
        let mut sim = build(1);
        sim.crash_at(ProcessId(1), SimTime::ZERO);
        sim.run_until(SimTime::from_secs(1));
        let p0: &Pinger = sim.process(ProcessId(0)).unwrap();
        assert!(p0.got.is_empty());
        assert_eq!(sim.metrics().counter("net.dropped_dead"), 5);
        assert!(!sim.is_alive(ProcessId(1)));
    }

    #[test]
    fn recover_after_crash() {
        let mut sim = build(1);
        sim.crash_at(ProcessId(1), SimTime::ZERO);
        sim.recover_at(ProcessId(1), SimTime::from_millis(500));
        sim.run_until(SimTime::from_secs(1));
        assert!(sim.is_alive(ProcessId(1)));
        assert_eq!(sim.metrics().counter("faults.recover"), 1);
    }

    #[test]
    fn partition_blocks_messages() {
        let mut sim = SimBuilder::new(1)
            .net(NetConfig::ideal(SimDuration::from_millis(1)))
            .build::<Msg>();
        // Install the partition before the processes start sending.
        sim.partition_at(&[ProcessId(0)], &[ProcessId(1)], SimTime::ZERO);
        sim.add_process(Pinger::default());
        sim.add_process(Pinger::default());
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.metrics().counter("net.dropped"), 5);
        assert_eq!(sim.metrics().counter("net.delivered"), 0);
    }

    #[test]
    fn heal_restores_connectivity() {
        struct Late;
        impl Process<Msg> for Late {
            fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _t: TimerId) {
                ctx.send(ProcessId(1), Msg::Ping(9));
            }
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                ctx.set_timer(TimerId(0), SimDuration::from_millis(200));
            }
        }
        let mut sim = SimBuilder::new(1)
            .net(NetConfig::ideal(SimDuration::from_millis(1)))
            .build::<Msg>();
        sim.add_process(Late);
        sim.add_process(Pinger::default());
        sim.partition_at(&[ProcessId(0)], &[ProcessId(1)], SimTime::ZERO);
        sim.heal_at(SimTime::from_millis(100));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.metrics().counter("net.delivered"), 2); // ping + pong
    }

    #[test]
    fn timers_fire_in_order() {
        struct Timers {
            fired: Vec<u64>,
        }
        impl Process<Msg> for Timers {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                ctx.set_timer(TimerId(2), SimDuration::from_millis(20));
                ctx.set_timer(TimerId(1), SimDuration::from_millis(10));
                ctx.set_timer(TimerId(3), SimDuration::from_millis(30));
            }
            fn on_timer(&mut self, _ctx: &mut Ctx<'_, Msg>, t: TimerId) {
                self.fired.push(t.0);
            }
        }
        let mut sim = SimBuilder::new(1).build::<Msg>();
        let id = sim.add_process(Timers { fired: vec![] });
        sim.run_until(SimTime::from_secs(1));
        let t: &Timers = sim.process(id).unwrap();
        assert_eq!(t.fired, vec![1, 2, 3]);
    }

    #[test]
    fn stop_halts_the_run() {
        struct Stopper;
        impl Process<Msg> for Stopper {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                ctx.set_timer(TimerId(0), SimDuration::from_millis(1));
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _t: TimerId) {
                ctx.stop();
                ctx.set_timer(TimerId(0), SimDuration::from_millis(1));
            }
        }
        let mut sim = SimBuilder::new(1).build::<Msg>();
        sim.add_process(Stopper);
        let n = sim.run_until(SimTime::from_secs(10));
        // Start + one timer fire; the re-armed timer never runs.
        assert_eq!(n, 2);
        assert!(sim.now() < SimTime::from_secs(1));
    }

    #[test]
    fn run_until_advances_clock_to_deadline_when_idle() {
        let mut sim = SimBuilder::new(1).build::<Msg>();
        sim.run_until(SimTime::from_secs(3));
        assert_eq!(sim.now(), SimTime::from_secs(3));
    }

    #[test]
    fn sampler_records_series_at_cadence() {
        struct Depth {
            d: usize,
        }
        impl Process<Msg> for Depth {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                ctx.set_timer(TimerId(0), SimDuration::from_millis(100));
            }
            fn on_timer(&mut self, _ctx: &mut Ctx<'_, Msg>, _t: TimerId) {
                self.d += 10;
            }
            fn sample(&self, emit: &mut dyn FnMut(&str, f64)) {
                emit("depth", self.d as f64);
            }
        }
        let mut sim = SimBuilder::new(1)
            .sample_every(SimDuration::from_millis(50))
            .build::<Msg>();
        sim.add_process(Depth { d: 1 });
        sim.add_process(Depth { d: 3 });
        sim.run_until(SimTime::from_millis(250));
        // Sample points: 50, 100, 150, 200, 250ms = 5 samples.
        let sum = sim
            .metrics()
            .series_get("ts.depth.sum")
            .expect("sum series");
        let max = sim
            .metrics()
            .series_get("ts.depth.max")
            .expect("max series");
        assert_eq!(sum.len(), 5);
        assert_eq!(max.len(), 5);
        // Before the 100ms timer: 1 + 3; after: 11 + 13.
        let vals: Vec<f64> = sum.iter().map(|(_, v)| v).collect();
        assert_eq!(vals, vec![4.0, 4.0, 24.0, 24.0, 24.0]);
        assert_eq!(max.last().unwrap().1, 13.0);
        assert!(sim.metrics().series_get("ts.sim.queue").is_some());
    }

    #[test]
    fn sampling_does_not_perturb_replay() {
        let digest = |sampled: bool| {
            let mut b = SimBuilder::new(42).net(NetConfig::lossy_lan(0.1)).trace();
            if sampled {
                b = b.sample_every(SimDuration::from_millis(10));
            }
            let mut sim = b.build::<Msg>();
            sim.add_process(Pinger::default());
            sim.add_process(Pinger::default());
            sim.run_until(SimTime::from_secs(1));
            sim.trace().digest()
        };
        assert_eq!(digest(false), digest(true));
    }

    #[test]
    fn multicast_excludes_self_when_asked() {
        struct Caster {
            got: u32,
        }
        impl Process<Msg> for Caster {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                if ctx.me().0 == 0 {
                    let everyone: Vec<ProcessId> = (0..ctx.n_processes()).map(ProcessId).collect();
                    ctx.multicast(&everyone, Msg::Ping(1), false);
                }
            }
            fn on_message(&mut self, _ctx: &mut Ctx<'_, Msg>, _f: ProcessId, _m: Msg) {
                self.got += 1;
            }
        }
        let mut sim = SimBuilder::new(1).build::<Msg>();
        let a = sim.add_process(Caster { got: 0 });
        let b = sim.add_process(Caster { got: 0 });
        let c = sim.add_process(Caster { got: 0 });
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.process::<Caster>(a).unwrap().got, 0);
        assert_eq!(sim.process::<Caster>(b).unwrap().got, 1);
        assert_eq!(sim.process::<Caster>(c).unwrap().got, 1);
    }
}
