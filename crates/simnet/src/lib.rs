//! # simnet — deterministic discrete-event network simulator
//!
//! `simnet` is the substrate every other crate in this workspace runs on.
//! It provides:
//!
//! - a discrete-event scheduler with virtual [`time::SimTime`],
//! - a configurable network model ([`net`]): per-link latency
//!   distributions, reordering, loss, crashes and partitions,
//! - a [`process::Process`] trait for protocol state machines,
//! - an event [`trace`] that can render the paper's event diagrams
//!   (Figures 1–4) as ASCII charts and hash a run for determinism tests,
//! - lightweight [`metrics`] (counters and histograms) used by the
//!   experiment harness.
//!
//! Determinism is a hard requirement: the same seed and configuration must
//! produce the same trace, byte for byte, so that every anomaly in the
//! paper is reproducible. All randomness flows from a single seeded RNG and
//! ties in the event queue are broken by insertion sequence number.
//!
//! # Example
//!
//! ```
//! use simnet::prelude::*;
//!
//! #[derive(Clone, Debug)]
//! enum Msg {
//!     Ping,
//!     Pong,
//! }
//!
//! struct Node;
//! impl Process<Msg> for Node {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
//!         if ctx.me().index() == 0 {
//!             ctx.send(ProcessId(1), Msg::Ping);
//!         }
//!     }
//!     fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: ProcessId, msg: Msg) {
//!         if matches!(msg, Msg::Ping) {
//!             ctx.send(from, Msg::Pong);
//!         }
//!     }
//! }
//!
//! let mut sim = SimBuilder::new(42).build::<Msg>();
//! sim.add_process(Node);
//! sim.add_process(Node);
//! sim.run_until(SimTime::from_millis(10));
//! assert!(sim.metrics().counter("net.delivered") >= 2);
//! ```

pub mod event;
pub mod fault;
pub mod json;
pub mod metrics;
pub mod net;
pub mod obs;
pub mod process;
pub mod sim;
pub mod time;
pub mod topology;
pub mod trace;

/// Convenience re-exports for simulation authors.
pub mod prelude {
    pub use crate::{
        fault::{FaultKind, FaultPlan, FaultPlanConfig},
        metrics::{Histogram, Metrics, TimeSeries},
        net::{LatencyModel, NetConfig},
        obs::{FlightRecorder, ObsEvent, Probe, ProbeHandle, SpanId},
        process::{Ctx, Process, ProcessId, TimerId},
        sim::{Sim, SimBuilder},
        time::{SimDuration, SimTime},
        topology::Topology,
        trace::{Trace, TraceEvent},
    };
}

pub use net::{LatencyModel, NetConfig};
pub use process::{Ctx, Process, ProcessId, TimerId};
pub use sim::{Sim, SimBuilder};
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceEvent};
