//! Observability: causal spans, probes, the flight recorder, and
//! Perfetto export.
//!
//! The paper's quantitative story (§5) is about *invisible* protocol
//! internals — how long messages sit in holdback, how far stability
//! lags, what a view change stalls on. This module gives every layer one
//! instrumentation surface for those internals:
//!
//! - a [`SpanId`] names one message's lifecycle across every process
//!   (send → wire → holdback-enter → deliverable → delivered/dropped);
//! - the [`Probe`] trait receives [`ObsEvent`]s from protocol code. The
//!   default implementation is a no-op and [`ProbeHandle::emit`] takes a
//!   closure, so disabled runs never format a label or allocate — the
//!   same zero-cost discipline `Trace::record_with` uses;
//! - the [`FlightRecorder`] is a bounded per-process ring of recent
//!   events. The chaos campaigns dump it automatically on the first
//!   invariant violation, so every pinned seed ships an incident report
//!   (ASCII event diagram + JSON lines);
//! - [`perfetto_json`] converts a [`Trace`] and/or recorder contents to
//!   Chrome trace-event JSON — one track per process, flow events for
//!   message arrows — viewable in `ui.perfetto.dev`.
//!
//! Determinism contract: probes observe, they never mutate protocol
//! state or touch the simulator RNG, so a probed run produces the same
//! digests as an unprobed one.

use crate::json::escape;
use crate::process::ProcessId;
use crate::time::SimTime;
use crate::trace::{Trace, TraceEvent};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::fmt::Write as _;
use std::rc::Rc;

/// Identifies one message's lifecycle span: the member that originated
/// it and its sender sequence number. Printed `m<origin>.<seq>`, the
/// notation the holdback/vsync layers already use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId {
    /// Originating member index.
    pub origin: usize,
    /// Sender sequence number.
    pub seq: u64,
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}.{}", self.origin, self.seq)
    }
}

/// A stage in a message span's lifecycle at one process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// The message left the application at its origin.
    Send,
    /// The message arrived off the wire at a receiver.
    Wire,
    /// The message entered the holdback queue (possibly already
    /// deliverable — the note records what it still waits on).
    HoldbackEnter,
    /// Every causal predecessor is in; the message left the holdback
    /// queue for delivery.
    Deliverable,
    /// The message was handed to the application.
    Delivered,
    /// The message was discarded (duplicate, decode error, or beyond a
    /// removed sender's flush cut — the note says which).
    Dropped,
    /// A delta-stamped copy arrived ahead of its decode base and was
    /// parked undecoded.
    Parked,
    /// A constant-metadata copy arrived out of position and entered a
    /// per-link reorder buffer (pccast fast path).
    ReorderEnter,
    /// A skip marker was consumed for this message's position: the
    /// receiver will obtain the copy elsewhere (another link, or the
    /// holdback repair path).
    SkipConsume,
}

impl Stage {
    /// Stable lowercase name, used in dumps and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Send => "send",
            Stage::Wire => "wire",
            Stage::HoldbackEnter => "holdback-enter",
            Stage::Deliverable => "deliverable",
            Stage::Delivered => "delivered",
            Stage::Dropped => "dropped",
            Stage::Parked => "parked",
            Stage::ReorderEnter => "reorder-enter",
            Stage::SkipConsume => "skip-consume",
        }
    }
}

/// A protocol phase a process passes through.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PhaseKind {
    /// View-change flush: from delivery freeze to view install.
    Flush,
    /// A view install (point event carrying the members and cut).
    Install,
    /// Total-order token rotation (token-passing abcast).
    TokenRotation,
    /// Sequencer order assignment (fixed-sequencer abcast).
    OrderAssign,
    /// A stability round: ack gossip sent / stable frontier advanced.
    StabilityRound,
    /// A pccast link acknowledgement: the cumulative per-link cursor a
    /// receiver reported, letting the sender GC its link log.
    LinkAck,
}

impl PhaseKind {
    /// Stable lowercase name, used in dumps and JSON.
    pub fn name(self) -> &'static str {
        match self {
            PhaseKind::Flush => "flush",
            PhaseKind::Install => "install",
            PhaseKind::TokenRotation => "token-rotation",
            PhaseKind::OrderAssign => "order-assign",
            PhaseKind::StabilityRound => "stability-round",
            PhaseKind::LinkAck => "link-ack",
        }
    }
}

/// Whether a phase event opens, closes, or is a point occurrence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PhaseEdge {
    /// The phase started.
    Begin,
    /// The phase ended.
    End,
    /// A point occurrence (no duration).
    Point,
}

/// Why a message waited before delivery — the latency-ledger cause
/// taxonomy. Each delivered message's send→deliver interval decomposes
/// into wire transit plus zero or more of these waits; the ledger
/// ([`catocs::ledger`] downstream) tiles them into an exact latency
/// attribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WaitKind {
    /// Held in the holdback queue for a causal predecessor from another
    /// sender.
    CausalDep,
    /// Held for an earlier message from the *same* sender (FIFO gap).
    FifoGap,
    /// Held while a NACK-requested retransmission was in flight (the
    /// missing predecessor had been chased).
    NackRepair,
    /// Held in a pccast per-link reorder buffer behind the link cursor.
    LinkReorder,
    /// Causally delivered but held for the abcast total-order watermark
    /// (its gseq slot, or an earlier one, was not yet released).
    OrderWatermark,
    /// Held at a receiver for the token-stamped global sequence to become
    /// contiguous (an earlier gseq's data had not arrived).
    TokenRotation,
    /// Held at the *origin* in the submit queue until the token arrived
    /// (pre-send wait; applies to every receiver of the message).
    TokenHold,
    /// Held by a view-change flush: delivery frozen between the freeze
    /// and the view install.
    FlushBarrier,
}

impl WaitKind {
    /// Stable lowercase name, used in dumps and JSON.
    pub fn name(self) -> &'static str {
        match self {
            WaitKind::CausalDep => "causal-dep",
            WaitKind::FifoGap => "fifo-gap",
            WaitKind::NackRepair => "nack-repair",
            WaitKind::LinkReorder => "link-reorder",
            WaitKind::OrderWatermark => "order-watermark",
            WaitKind::TokenRotation => "token-rotation",
            WaitKind::TokenHold => "token-hold",
            WaitKind::FlushBarrier => "flush-barrier",
        }
    }
}

/// One observability event.
#[derive(Clone, Debug, PartialEq)]
pub enum ObsEvent {
    /// A message-lifecycle stage at one process.
    Span {
        /// When.
        at: SimTime,
        /// Observing process (member index).
        who: usize,
        /// Which message.
        span: SpanId,
        /// Lifecycle stage.
        stage: Stage,
        /// Free-form detail (what it waits on, why it was dropped, ...).
        note: String,
    },
    /// A protocol-phase edge at one process.
    Phase {
        /// When.
        at: SimTime,
        /// Observing process (member index).
        who: usize,
        /// Which phase.
        kind: PhaseKind,
        /// Begin / end / point.
        edge: PhaseEdge,
        /// Free-form detail.
        note: String,
    },
    /// An attributed wait interval `[since, at)` a message spent blocked
    /// at one process, emitted when the wait *ends*. The latency ledger
    /// tiles these into per-message phase decompositions.
    Wait {
        /// When the wait ended.
        at: SimTime,
        /// Observing process (member index).
        who: usize,
        /// Which message waited.
        span: SpanId,
        /// Why it waited.
        kind: WaitKind,
        /// When the wait began.
        since: SimTime,
        /// The message whose delivery (or arrival) ended the wait, when
        /// one can be named.
        blocker: Option<SpanId>,
        /// Free-form detail.
        note: String,
    },
}

impl ObsEvent {
    /// The instant the event occurred.
    pub fn at(&self) -> SimTime {
        match self {
            ObsEvent::Span { at, .. } | ObsEvent::Phase { at, .. } | ObsEvent::Wait { at, .. } => {
                *at
            }
        }
    }

    /// The observing process.
    pub fn who(&self) -> usize {
        match self {
            ObsEvent::Span { who, .. }
            | ObsEvent::Phase { who, .. }
            | ObsEvent::Wait { who, .. } => *who,
        }
    }

    /// One line of JSON (hand-rolled; the offline serde stand-in has no
    /// serializer). Parses back with [`crate::json::JsonValue`].
    pub fn to_json(&self) -> String {
        match self {
            ObsEvent::Span {
                at,
                who,
                span,
                stage,
                note,
            } => format!(
                "{{\"kind\":\"span\",\"at\":{},\"who\":{},\"span\":\"{}\",\"origin\":{},\"seq\":{},\"stage\":\"{}\",\"note\":\"{}\"}}",
                at.as_micros(),
                who,
                span,
                span.origin,
                span.seq,
                stage.name(),
                escape(note)
            ),
            ObsEvent::Phase {
                at,
                who,
                kind,
                edge,
                note,
            } => format!(
                "{{\"kind\":\"phase\",\"at\":{},\"who\":{},\"phase\":\"{}\",\"edge\":\"{}\",\"note\":\"{}\"}}",
                at.as_micros(),
                who,
                kind.name(),
                match edge {
                    PhaseEdge::Begin => "begin",
                    PhaseEdge::End => "end",
                    PhaseEdge::Point => "point",
                },
                escape(note)
            ),
            ObsEvent::Wait {
                at,
                who,
                span,
                kind,
                since,
                blocker,
                note,
            } => format!(
                "{{\"kind\":\"wait\",\"at\":{},\"who\":{},\"span\":\"{}\",\"wait\":\"{}\",\"since\":{},\"blocker\":\"{}\",\"note\":\"{}\"}}",
                at.as_micros(),
                who,
                span,
                kind.name(),
                since.as_micros(),
                blocker.map(|b| b.to_string()).unwrap_or_default(),
                escape(note)
            ),
        }
    }

    /// Compact one-line rendering for ASCII dumps (no time/who — the
    /// diagram supplies those).
    pub fn label(&self) -> String {
        match self {
            ObsEvent::Span {
                span, stage, note, ..
            } => {
                if note.is_empty() {
                    format!("{span} {}", stage.name())
                } else {
                    format!("{span} {} ({note})", stage.name())
                }
            }
            ObsEvent::Phase {
                kind, edge, note, ..
            } => {
                let e = match edge {
                    PhaseEdge::Begin => "begin",
                    PhaseEdge::End => "end",
                    PhaseEdge::Point => "",
                };
                let mut s = format!("[{}", kind.name());
                if !e.is_empty() {
                    let _ = write!(s, " {e}");
                }
                s.push(']');
                if !note.is_empty() {
                    let _ = write!(s, " {note}");
                }
                s
            }
            ObsEvent::Wait {
                span,
                kind,
                since,
                at,
                blocker,
                note,
                ..
            } => {
                let mut s = format!(
                    "{span} waited {}us [{}]",
                    at.as_micros().saturating_sub(since.as_micros()),
                    kind.name()
                );
                if let Some(b) = blocker {
                    let _ = write!(s, " on {b}");
                }
                if !note.is_empty() {
                    let _ = write!(s, " ({note})");
                }
                s
            }
        }
    }
}

/// A sink for [`ObsEvent`]s. Every method defaults to a no-op, so a
/// probe-carrying component costs nothing until someone installs a real
/// implementation.
pub trait Probe {
    /// Whether events are being recorded. Emitters gate any expensive
    /// note construction on this (or use [`ProbeHandle::emit`], which
    /// does it for them).
    fn enabled(&self) -> bool {
        false
    }

    /// Records one event.
    fn record(&mut self, ev: ObsEvent) {
        let _ = ev;
    }
}

/// The do-nothing default probe.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopProbe;

impl Probe for NoopProbe {}

/// A cheap, clonable handle protocol components hold. The default
/// handle is empty: [`ProbeHandle::emit`] is then a branch on a `None`
/// and the event-building closure never runs.
#[derive(Clone, Default)]
pub struct ProbeHandle {
    inner: Option<Rc<RefCell<dyn Probe>>>,
}

impl ProbeHandle {
    /// The disabled handle (same as `default()`).
    pub fn none() -> Self {
        ProbeHandle { inner: None }
    }

    /// Wraps an installed probe.
    pub fn new(probe: Rc<RefCell<dyn Probe>>) -> Self {
        ProbeHandle { inner: Some(probe) }
    }

    /// Creates a [`FlightRecorder`] with per-process capacity `cap` and
    /// returns both the handle to install and a typed reference for
    /// reading the rings back after the run.
    pub fn recorder(cap: usize) -> (Self, Rc<RefCell<FlightRecorder>>) {
        let rec = Rc::new(RefCell::new(FlightRecorder::new(cap)));
        (ProbeHandle::new(rec.clone()), rec)
    }

    /// Whether an enabled probe is installed. Gate any preparatory work
    /// (wait-set reconstruction, label formatting) on this.
    pub fn is_enabled(&self) -> bool {
        self.inner.as_ref().is_some_and(|p| p.borrow().enabled())
    }

    /// Records the event produced by `f`, invoking `f` only when an
    /// enabled probe is installed.
    pub fn emit(&self, f: impl FnOnce() -> ObsEvent) {
        if let Some(p) = &self.inner {
            let mut p = p.borrow_mut();
            if p.enabled() {
                let ev = f();
                p.record(ev);
            }
        }
    }
}

impl fmt::Debug for ProbeHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ProbeHandle({})",
            if self.inner.is_some() { "on" } else { "off" }
        )
    }
}

/// A bounded ring buffer of recent [`ObsEvent`]s per process — the
/// flight recorder. When a ring is full the oldest event is evicted, so
/// after a long run each process retains the events leading up to the
/// end (or the violation) — exactly what an incident report needs.
#[derive(Debug)]
pub struct FlightRecorder {
    cap: usize,
    rings: Vec<VecDeque<ObsEvent>>,
    evicted: Vec<u64>,
}

impl FlightRecorder {
    /// Creates a recorder retaining up to `cap` events per process.
    pub fn new(cap: usize) -> Self {
        FlightRecorder {
            cap: cap.max(1),
            rings: Vec::new(),
            evicted: Vec::new(),
        }
    }

    /// Per-process ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of process rings seen so far.
    pub fn processes(&self) -> usize {
        self.rings.len()
    }

    /// The retained events for process `who`, oldest first.
    pub fn events(&self, who: usize) -> &VecDeque<ObsEvent> {
        static EMPTY: VecDeque<ObsEvent> = VecDeque::new();
        self.rings.get(who).unwrap_or(&EMPTY)
    }

    /// How many events process `who`'s ring has evicted.
    pub fn evicted(&self, who: usize) -> u64 {
        self.evicted.get(who).copied().unwrap_or(0)
    }

    /// All retained events merged across processes, ordered by time
    /// (ties broken by process index, then ring order).
    pub fn merged(&self) -> Vec<&ObsEvent> {
        let mut all: Vec<(SimTime, usize, usize, &ObsEvent)> = Vec::new();
        for (who, ring) in self.rings.iter().enumerate() {
            for (i, ev) in ring.iter().enumerate() {
                all.push((ev.at(), who, i, ev));
            }
        }
        all.sort_by_key(|(at, who, i, _)| (*at, *who, *i));
        all.into_iter().map(|(_, _, _, ev)| ev).collect()
    }

    /// JSON lines: every retained event, merged time order.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for ev in self.merged() {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }

    /// Renders the retained events as the repo's ASCII event diagram:
    /// one column per process, time advancing downward.
    pub fn render_ascii(&self, names: &[&str]) -> String {
        let n = self.rings.len().max(1);
        let mut t = Trace::new();
        t.enable();
        for ev in self.merged() {
            t.record(TraceEvent::Mark {
                at: ev.at(),
                proc: ProcessId(ev.who()),
                label: ev.label(),
            });
        }
        let mut out = t.render_event_diagram(n, names);
        let dropped: u64 = (0..n).map(|p| self.evicted(p)).sum();
        if dropped > 0 {
            let _ = writeln!(
                out,
                "({dropped} older events evicted from the ring; cap {} per process)",
                self.cap
            );
        }
        out
    }
}

impl Probe for FlightRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, ev: ObsEvent) {
        let who = ev.who();
        if who >= self.rings.len() {
            self.rings.resize_with(who + 1, VecDeque::new);
            self.evicted.resize(who + 1, 0);
        }
        let ring = &mut self.rings[who];
        if ring.len() == self.cap {
            ring.pop_front();
            self.evicted[who] += 1;
        }
        ring.push_back(ev);
    }
}

/// Converts a [`Trace`] and/or [`FlightRecorder`] contents to Chrome
/// trace-event JSON (the format `ui.perfetto.dev` and `chrome://tracing`
/// load): one `pid` per process, `tid 0` for network activity from the
/// trace, `tid 1` for message spans, `tid 2` for protocol phases. Flow
/// events (`ph:"s"`/`ph:"f"`) draw the message arrows — trace sends are
/// matched to their deliveries, span sends to each receiver's wire
/// arrival.
pub fn perfetto_json(
    trace: Option<&Trace>,
    rec: Option<&FlightRecorder>,
    n_procs: usize,
    names: &[&str],
) -> String {
    let mut evs: Vec<String> = Vec::new();
    let mut flow_id = 0u64;
    let n = n_procs.max(rec.map_or(0, |r| r.processes())).max(1);
    for p in 0..n {
        let name = names.get(p).copied().unwrap_or("");
        let full = if name.is_empty() {
            format!("P{p}")
        } else {
            format!("P{p}:{name}")
        };
        evs.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{p},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
            escape(&full)
        ));
        for (tid, tname) in [(0, "net"), (1, "spans"), (2, "phases"), (3, "waits")] {
            evs.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{p},\"tid\":{tid},\"args\":{{\"name\":\"{tname}\"}}}}"
            ));
        }
    }

    // Trace events: sends/deliveries as 1us slices on tid 0, with flow
    // arrows matching each Send to the next Deliver of the same
    // (from, to, label).
    if let Some(trace) = trace {
        use std::collections::HashMap;
        let mut open: HashMap<(usize, usize, &str), VecDeque<u64>> = HashMap::new();
        for e in trace.events() {
            let ts = e.at().as_micros();
            match e {
                TraceEvent::Send {
                    from, to, label, ..
                } => {
                    let id = flow_id;
                    flow_id += 1;
                    open.entry((from.0, to.0, label.as_str()))
                        .or_default()
                        .push_back(id);
                    let l = escape(label);
                    evs.push(format!(
                        "{{\"name\":\"{l}\",\"cat\":\"net\",\"ph\":\"X\",\"ts\":{ts},\"dur\":1,\"pid\":{},\"tid\":0}}",
                        from.0
                    ));
                    evs.push(format!(
                        "{{\"name\":\"msg\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":{id},\"ts\":{ts},\"pid\":{},\"tid\":0}}",
                        from.0
                    ));
                }
                TraceEvent::Deliver {
                    from, to, label, ..
                } => {
                    let l = escape(label);
                    evs.push(format!(
                        "{{\"name\":\"{l}\",\"cat\":\"net\",\"ph\":\"X\",\"ts\":{ts},\"dur\":1,\"pid\":{},\"tid\":0}}",
                        to.0
                    ));
                    if let Some(id) = open
                        .get_mut(&(from.0, to.0, label.as_str()))
                        .and_then(|q| q.pop_front())
                    {
                        evs.push(format!(
                            "{{\"name\":\"msg\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{id},\"ts\":{ts},\"pid\":{},\"tid\":0}}",
                            to.0
                        ));
                    }
                }
                TraceEvent::Drop {
                    from, to, label, ..
                } => {
                    evs.push(format!(
                        "{{\"name\":\"drop: {} ->P{}\",\"cat\":\"net\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":{},\"tid\":0}}",
                        escape(label),
                        to.0,
                        from.0
                    ));
                }
                TraceEvent::Mark { proc, label, .. } => {
                    evs.push(format!(
                        "{{\"name\":\"{}\",\"cat\":\"mark\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":{},\"tid\":0}}",
                        escape(label),
                        proc.0
                    ));
                }
                TraceEvent::Fault { proc, crashed, .. } => {
                    evs.push(format!(
                        "{{\"name\":\"{}\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"p\",\"ts\":{ts},\"pid\":{},\"tid\":0}}",
                        if *crashed { "CRASH" } else { "recover" },
                        proc.0
                    ));
                }
                TraceEvent::NetFault { label, .. } => {
                    evs.push(format!(
                        "{{\"name\":\"{}\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"g\",\"ts\":{ts},\"pid\":0,\"tid\":0}}",
                        escape(label)
                    ));
                }
            }
        }
    }

    // Recorder events: spans on tid 1 (held intervals as slices, stages
    // as 1us anchors with flow arrows from each origin send to its wire
    // arrivals), phases on tid 2 (Begin/End pairs as B/E).
    if let Some(rec) = rec {
        use std::collections::HashMap;
        // Flow ids per span: started at the origin's Send event.
        let mut span_flow: HashMap<SpanId, u64> = HashMap::new();
        // Holdback intervals: (who, span) -> enter ts.
        let mut entered: HashMap<(usize, SpanId), u64> = HashMap::new();
        for ev in rec.merged() {
            let ts = ev.at().as_micros();
            match ev {
                ObsEvent::Span {
                    who,
                    span,
                    stage,
                    note,
                    ..
                } => {
                    let name = escape(&format!(
                        "{span} {}{}",
                        stage.name(),
                        if note.is_empty() {
                            String::new()
                        } else {
                            format!(": {note}")
                        }
                    ));
                    evs.push(format!(
                        "{{\"name\":\"{name}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{ts},\"dur\":1,\"pid\":{who},\"tid\":1}}"
                    ));
                    match stage {
                        Stage::Send => {
                            let id = flow_id;
                            flow_id += 1;
                            span_flow.insert(*span, id);
                            evs.push(format!(
                                "{{\"name\":\"{span}\",\"cat\":\"span-flow\",\"ph\":\"s\",\"id\":{id},\"ts\":{ts},\"pid\":{who},\"tid\":1}}"
                            ));
                        }
                        Stage::Wire => {
                            if let Some(id) = span_flow.get(span) {
                                evs.push(format!(
                                    "{{\"name\":\"{span}\",\"cat\":\"span-flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{id},\"ts\":{ts},\"pid\":{who},\"tid\":1}}"
                                ));
                            }
                        }
                        Stage::HoldbackEnter | Stage::ReorderEnter => {
                            entered.insert((*who, *span), ts);
                        }
                        Stage::Delivered => {
                            if let Some(t0) = entered.remove(&(*who, *span)) {
                                if ts > t0 {
                                    evs.push(format!(
                                        "{{\"name\":\"{span} held\",\"cat\":\"holdback\",\"ph\":\"X\",\"ts\":{t0},\"dur\":{},\"pid\":{who},\"tid\":1}}",
                                        ts - t0
                                    ));
                                }
                            }
                        }
                        _ => {}
                    }
                }
                ObsEvent::Phase {
                    who,
                    kind,
                    edge,
                    note,
                    ..
                } => {
                    let name = escape(&if note.is_empty() {
                        kind.name().to_string()
                    } else {
                        format!("{}: {note}", kind.name())
                    });
                    match edge {
                        PhaseEdge::Begin => evs.push(format!(
                            "{{\"name\":\"{}\",\"cat\":\"phase\",\"ph\":\"B\",\"ts\":{ts},\"pid\":{who},\"tid\":2}}",
                            escape(kind.name())
                        )),
                        PhaseEdge::End => evs.push(format!(
                            "{{\"name\":\"{}\",\"cat\":\"phase\",\"ph\":\"E\",\"ts\":{ts},\"pid\":{who},\"tid\":2}}",
                            escape(kind.name())
                        )),
                        PhaseEdge::Point => evs.push(format!(
                            "{{\"name\":\"{name}\",\"cat\":\"phase\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":{who},\"tid\":2}}"
                        )),
                    }
                }
                ObsEvent::Wait {
                    who,
                    span,
                    kind,
                    since,
                    at,
                    ..
                } => {
                    // Phase-colored duration slice on the waits track:
                    // the `cat` is the wait kind, so Perfetto assigns a
                    // distinct color per attribution phase.
                    let t0 = since.as_micros();
                    let dur = at.as_micros().saturating_sub(t0).max(1);
                    evs.push(format!(
                        "{{\"name\":\"{span} {}\",\"cat\":\"wait-{}\",\"ph\":\"X\",\"ts\":{t0},\"dur\":{dur},\"pid\":{who},\"tid\":3}}",
                        kind.name(),
                        kind.name()
                    ));
                }
            }
        }
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in evs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(e);
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    fn span_ev(at_us: u64, who: usize, seq: u64, stage: Stage) -> ObsEvent {
        ObsEvent::Span {
            at: SimTime::from_micros(at_us),
            who,
            span: SpanId { origin: 0, seq },
            stage,
            note: String::new(),
        }
    }

    #[test]
    fn noop_probe_is_disabled_and_handle_is_lazy() {
        let handle = ProbeHandle::none();
        assert!(!handle.is_enabled());
        let mut called = false;
        handle.emit(|| {
            called = true;
            span_ev(0, 0, 1, Stage::Send)
        });
        assert!(!called, "disabled handle must not build events");
        // An installed NoopProbe is still disabled.
        let noop = ProbeHandle::new(Rc::new(RefCell::new(NoopProbe)));
        assert!(!noop.is_enabled());
        noop.emit(|| {
            called = true;
            span_ev(0, 0, 1, Stage::Send)
        });
        assert!(!called);
    }

    #[test]
    fn ring_evicts_oldest_first() {
        let (handle, rec) = ProbeHandle::recorder(3);
        assert!(handle.is_enabled());
        for seq in 1..=5 {
            handle.emit(|| span_ev(seq * 10, 0, seq, Stage::Send));
        }
        let rec = rec.borrow();
        let kept: Vec<u64> = rec
            .events(0)
            .iter()
            .map(|e| match e {
                ObsEvent::Span { span, .. } => span.seq,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![3, 4, 5], "oldest evicted first");
        assert_eq!(rec.evicted(0), 2);
        assert_eq!(rec.evicted(1), 0);
    }

    #[test]
    fn rings_are_per_process() {
        let (handle, rec) = ProbeHandle::recorder(2);
        handle.emit(|| span_ev(1, 0, 1, Stage::Send));
        handle.emit(|| span_ev(2, 2, 1, Stage::Wire));
        let rec = rec.borrow();
        assert_eq!(rec.processes(), 3);
        assert_eq!(rec.events(0).len(), 1);
        assert_eq!(rec.events(1).len(), 0);
        assert_eq!(rec.events(2).len(), 1);
    }

    #[test]
    fn merged_orders_by_time_then_process() {
        let (handle, rec) = ProbeHandle::recorder(8);
        handle.emit(|| span_ev(20, 1, 2, Stage::Wire));
        handle.emit(|| span_ev(10, 0, 1, Stage::Send));
        handle.emit(|| span_ev(20, 0, 2, Stage::Send));
        let rec = rec.borrow();
        let order: Vec<(u64, usize)> = rec
            .merged()
            .iter()
            .map(|e| (e.at().as_micros(), e.who()))
            .collect();
        assert_eq!(order, vec![(10, 0), (20, 0), (20, 1)]);
    }

    #[test]
    fn json_lines_parse_back() {
        let (handle, rec) = ProbeHandle::recorder(8);
        handle.emit(|| ObsEvent::Span {
            at: SimTime::from_micros(7),
            who: 1,
            span: SpanId { origin: 0, seq: 3 },
            stage: Stage::HoldbackEnter,
            note: "waiting on m2.1 \"quoted\"".into(),
        });
        handle.emit(|| ObsEvent::Phase {
            at: SimTime::from_micros(9),
            who: 1,
            kind: PhaseKind::Flush,
            edge: PhaseEdge::Begin,
            note: "3 unstable".into(),
        });
        let lines = rec.borrow().to_json_lines();
        for line in lines.lines() {
            let v = JsonValue::parse(line).expect("valid JSON line");
            assert!(v.get("kind").is_some());
            assert!(v.get("at").unwrap().as_u64().is_some());
        }
        let first = JsonValue::parse(lines.lines().next().unwrap()).unwrap();
        assert_eq!(first.get("span").unwrap().as_str(), Some("m0.3"));
        assert_eq!(
            first.get("note").unwrap().as_str(),
            Some("waiting on m2.1 \"quoted\"")
        );
    }

    #[test]
    fn ascii_dump_renders_columns() {
        let (handle, rec) = ProbeHandle::recorder(8);
        handle.emit(|| span_ev(10, 0, 1, Stage::Send));
        handle.emit(|| span_ev(25, 1, 1, Stage::Delivered));
        let d = rec.borrow().render_ascii(&["a", "b"]);
        assert!(d.contains("P0:a"), "{d}");
        assert!(d.contains("m0.1 send"), "{d}");
        assert!(d.contains("m0.1 delivered"), "{d}");
    }

    #[test]
    fn wait_events_render_in_json_label_and_perfetto() {
        let (handle, rec) = ProbeHandle::recorder(8);
        handle.emit(|| ObsEvent::Wait {
            at: SimTime::from_micros(40),
            who: 1,
            span: SpanId { origin: 0, seq: 2 },
            kind: WaitKind::CausalDep,
            since: SimTime::from_micros(15),
            blocker: Some(SpanId { origin: 2, seq: 1 }),
            note: "released by drain".into(),
        });
        let lines = rec.borrow().to_json_lines();
        let v = JsonValue::parse(lines.lines().next().unwrap()).expect("valid JSON");
        assert_eq!(v.get("kind").unwrap().as_str(), Some("wait"));
        assert_eq!(v.get("wait").unwrap().as_str(), Some("causal-dep"));
        assert_eq!(v.get("since").unwrap().as_u64(), Some(15));
        assert_eq!(v.get("blocker").unwrap().as_str(), Some("m2.1"));
        let ev = &rec.borrow().events(1)[0].clone();
        let label = ev.label();
        assert!(
            label.contains("m0.2 waited 25us [causal-dep] on m2.1"),
            "{label}"
        );
        // Perfetto: a duration slice on the waits track, phase-colored by cat.
        let out = perfetto_json(None, Some(&rec.borrow()), 2, &[]);
        let doc = JsonValue::parse(&out).expect("perfetto output parses");
        let evs = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let slice = evs
            .iter()
            .find(|e| {
                e.get("cat")
                    .is_some_and(|c| c.as_str() == Some("wait-causal-dep"))
            })
            .expect("wait slice present");
        assert_eq!(slice.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(slice.get("ts").unwrap().as_u64(), Some(15));
        assert_eq!(slice.get("dur").unwrap().as_u64(), Some(25));
        assert_eq!(slice.get("tid").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn perfetto_export_is_valid_and_balanced() {
        let mut trace = Trace::new();
        trace.enable();
        trace.record(TraceEvent::Send {
            at: SimTime::from_micros(10),
            from: ProcessId(0),
            to: ProcessId(1),
            label: "m0.1".into(),
        });
        trace.record(TraceEvent::Deliver {
            at: SimTime::from_micros(30),
            from: ProcessId(0),
            to: ProcessId(1),
            label: "m0.1".into(),
        });
        let (handle, rec) = ProbeHandle::recorder(16);
        handle.emit(|| span_ev(10, 0, 1, Stage::Send));
        handle.emit(|| span_ev(30, 1, 1, Stage::Wire));
        handle.emit(|| span_ev(30, 1, 1, Stage::HoldbackEnter));
        handle.emit(|| span_ev(45, 1, 1, Stage::Delivered));
        handle.emit(|| ObsEvent::Phase {
            at: SimTime::from_micros(50),
            who: 1,
            kind: PhaseKind::Flush,
            edge: PhaseEdge::Begin,
            note: String::new(),
        });
        handle.emit(|| ObsEvent::Phase {
            at: SimTime::from_micros(60),
            who: 1,
            kind: PhaseKind::Flush,
            edge: PhaseEdge::End,
            note: String::new(),
        });
        let out = perfetto_json(Some(&trace), Some(&rec.borrow()), 2, &["a", "b"]);
        let doc = JsonValue::parse(&out).expect("perfetto output parses");
        let evs = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(evs.len() >= 10, "got {}", evs.len());
        let mut begins = 0i64;
        let mut flows = (0u64, 0u64);
        for e in evs {
            let ph = e.get("ph").unwrap().as_str().unwrap();
            assert!(e.get("pid").unwrap().as_u64().is_some());
            if ph != "M" {
                assert!(e.get("ts").unwrap().as_u64().is_some());
            }
            match ph {
                "B" => begins += 1,
                "E" => begins -= 1,
                "s" => flows.0 += 1,
                "f" => flows.1 += 1,
                _ => {}
            }
        }
        assert_eq!(begins, 0, "B/E balanced");
        assert_eq!(flows.0, 2, "one trace flow + one span flow started");
        assert_eq!(flows.1, 2, "both flows finished");
        // The held interval shows up as a duration slice.
        assert!(out.contains("m0.1 held"), "{out}");
    }
}
