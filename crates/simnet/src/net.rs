//! The network model: latency, jitter, loss, reordering and partitions.
//!
//! The model is deliberately adversarial toward ordering protocols, in the
//! way real datagram networks are: unless per-link FIFO is requested,
//! messages between the same pair of processes may be reordered by jitter.
//! CATOCS protocols must therefore do real work to provide their
//! guarantees, and the state-level alternatives must survive the same
//! conditions.

use crate::process::ProcessId;
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// How the one-way latency of a message is sampled.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum LatencyModel {
    /// A constant one-way delay.
    Fixed(SimDuration),
    /// Uniform in `[min, max]`.
    Uniform { min: SimDuration, max: SimDuration },
    /// `base` plus exponentially-distributed jitter with the given mean —
    /// a standard heavy-ish tail model for queueing delay.
    ExpJitter {
        base: SimDuration,
        mean_jitter: SimDuration,
    },
    /// Distance-derived: `per_unit` times the topology distance, plus
    /// uniform jitter in `[0, jitter × distance]` — longer paths cross
    /// more queues, so their delay variance grows with distance. Used by
    /// the §5 scaling experiments and the clustered-LAN scenarios.
    Spatial {
        per_unit: SimDuration,
        jitter: SimDuration,
    },
}

impl LatencyModel {
    /// A convenient LAN-ish default: 1ms ± exponential 300us jitter.
    pub fn lan() -> Self {
        LatencyModel::ExpJitter {
            base: SimDuration::from_micros(1_000),
            mean_jitter: SimDuration::from_micros(300),
        }
    }

    /// Samples a one-way delay for a message from `a` to `b`.
    pub fn sample(
        &self,
        rng: &mut SmallRng,
        topo: &Topology,
        a: ProcessId,
        b: ProcessId,
    ) -> SimDuration {
        match self {
            LatencyModel::Fixed(d) => *d,
            LatencyModel::Uniform { min, max } => {
                let lo = min.as_micros();
                let hi = max.as_micros().max(lo);
                SimDuration::from_micros(rng.gen_range(lo..=hi))
            }
            LatencyModel::ExpJitter { base, mean_jitter } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let jitter = -(u.ln()) * mean_jitter.as_micros() as f64;
                *base + SimDuration::from_micros(jitter.round() as u64)
            }
            LatencyModel::Spatial { per_unit, jitter } => {
                let dist = topo.distance(a, b);
                let prop = topo.propagation(a, b, *per_unit);
                let jitter_cap = (jitter.as_micros() as f64 * dist).round() as u64;
                let j = if jitter_cap == 0 {
                    0
                } else {
                    rng.gen_range(0..=jitter_cap)
                };
                prop + SimDuration::from_micros(j)
            }
        }
    }
}

/// Full configuration of the simulated network.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NetConfig {
    /// Latency model applied to every message.
    pub latency: LatencyModel,
    /// Spatial arrangement used by `LatencyModel::Spatial`.
    pub topology: Topology,
    /// Probability in `[0,1]` that any given message is silently dropped.
    pub drop_probability: f64,
    /// When true, messages between each ordered pair of processes are
    /// delivered in the order sent (per-link FIFO). When false the network
    /// may reorder, as UDP/IP-multicast does.
    pub fifo_links: bool,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            latency: LatencyModel::lan(),
            topology: Topology::Flat,
            drop_probability: 0.0,
            fifo_links: false,
        }
    }
}

impl NetConfig {
    /// A lossless, fixed-latency, FIFO network — useful in unit tests where
    /// protocol behaviour should be isolated from network nondeterminism.
    pub fn ideal(latency: SimDuration) -> Self {
        NetConfig {
            latency: LatencyModel::Fixed(latency),
            topology: Topology::Flat,
            drop_probability: 0.0,
            fifo_links: true,
        }
    }

    /// A jittery, reordering LAN.
    pub fn lossy_lan(drop_probability: f64) -> Self {
        NetConfig {
            latency: LatencyModel::lan(),
            topology: Topology::Flat,
            drop_probability,
            fifo_links: false,
        }
    }
}

/// Runtime network state: partitions, per-link FIFO clocks, and temporary
/// degradation (burst loss, duplication, delay inflation) installed by
/// fault schedules.
#[derive(Debug)]
pub struct NetState {
    /// Pairs (a,b) that cannot currently communicate (stored both ways).
    blocked: HashSet<(ProcessId, ProcessId)>,
    /// For FIFO links: the earliest time the next message on (from,to) may
    /// arrive, ensuring non-decreasing arrival times per link.
    link_clock: HashMap<(ProcessId, ProcessId), SimTime>,
    /// Drop probability added to the config's while degraded (burst loss).
    extra_drop: f64,
    /// Probability a delivered message is duplicated while degraded.
    dup_probability: f64,
    /// Multiplier applied to sampled one-way delays while degraded.
    delay_factor: f64,
}

impl Default for NetState {
    fn default() -> Self {
        NetState {
            blocked: HashSet::new(),
            link_clock: HashMap::new(),
            extra_drop: 0.0,
            dup_probability: 0.0,
            delay_factor: 1.0,
        }
    }
}

impl NetState {
    /// Creates an unpartitioned network state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a network-degradation episode: `extra_drop` is added to
    /// the configured drop probability, `dup_probability` duplicates
    /// delivered messages, and sampled delays are multiplied by
    /// `delay_factor`.
    pub fn degrade(&mut self, extra_drop: f64, dup_probability: f64, delay_factor: f64) {
        self.extra_drop = extra_drop.clamp(0.0, 1.0);
        self.dup_probability = dup_probability.clamp(0.0, 1.0);
        self.delay_factor = delay_factor.max(0.0);
    }

    /// Ends any degradation episode.
    pub fn restore(&mut self) {
        self.extra_drop = 0.0;
        self.dup_probability = 0.0;
        self.delay_factor = 1.0;
    }

    /// Extra drop probability currently in force.
    pub fn extra_drop(&self) -> f64 {
        self.extra_drop
    }

    /// Duplication probability currently in force.
    pub fn dup_probability(&self) -> f64 {
        self.dup_probability
    }

    /// Delay multiplier currently in force.
    pub fn delay_factor(&self) -> f64 {
        self.delay_factor
    }

    /// Installs a bidirectional partition between groups `a` and `b`.
    pub fn partition(&mut self, a: &[ProcessId], b: &[ProcessId]) {
        for &x in a {
            for &y in b {
                self.blocked.insert((x, y));
                self.blocked.insert((y, x));
            }
        }
    }

    /// Removes all partitions.
    pub fn heal(&mut self) {
        self.blocked.clear();
    }

    /// Whether `from` can currently reach `to`.
    pub fn reachable(&self, from: ProcessId, to: ProcessId) -> bool {
        !self.blocked.contains(&(from, to))
    }

    /// Number of blocked directed pairs (test/diagnostic aid).
    pub fn blocked_pairs(&self) -> usize {
        self.blocked.len()
    }

    /// Computes the arrival time for a message sent at `now` with sampled
    /// one-way `delay`, enforcing per-link FIFO when configured.
    pub fn arrival_time(
        &mut self,
        cfg: &NetConfig,
        from: ProcessId,
        to: ProcessId,
        now: SimTime,
        delay: SimDuration,
    ) -> SimTime {
        let mut at = now + delay;
        if cfg.fifo_links {
            let clock = self.link_clock.entry((from, to)).or_insert(SimTime::ZERO);
            if at < *clock {
                at = *clock;
            }
            *clock = at;
        }
        at
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn fixed_latency_is_fixed() {
        let m = LatencyModel::Fixed(SimDuration::from_millis(2));
        let d = m.sample(&mut rng(), &Topology::Flat, ProcessId(0), ProcessId(1));
        assert_eq!(d, SimDuration::from_millis(2));
    }

    #[test]
    fn uniform_latency_in_bounds() {
        let m = LatencyModel::Uniform {
            min: SimDuration::from_micros(100),
            max: SimDuration::from_micros(200),
        };
        let mut r = rng();
        for _ in 0..1000 {
            let d = m.sample(&mut r, &Topology::Flat, ProcessId(0), ProcessId(1));
            assert!((100..=200).contains(&d.as_micros()));
        }
    }

    #[test]
    fn exp_jitter_at_least_base() {
        let m = LatencyModel::ExpJitter {
            base: SimDuration::from_micros(500),
            mean_jitter: SimDuration::from_micros(100),
        };
        let mut r = rng();
        for _ in 0..1000 {
            let d = m.sample(&mut r, &Topology::Flat, ProcessId(0), ProcessId(1));
            assert!(d.as_micros() >= 500);
        }
    }

    #[test]
    fn spatial_latency_reflects_distance() {
        let m = LatencyModel::Spatial {
            per_unit: SimDuration::from_micros(100),
            jitter: SimDuration::ZERO,
        };
        let topo = Topology::Clustered {
            cluster_size: 2,
            wan_factor: 10.0,
        };
        let near = m.sample(&mut rng(), &topo, ProcessId(0), ProcessId(1));
        let far = m.sample(&mut rng(), &topo, ProcessId(0), ProcessId(2));
        assert_eq!(near.as_micros() * 10, far.as_micros());
    }

    #[test]
    fn partition_blocks_and_heals() {
        let mut st = NetState::new();
        st.partition(&[ProcessId(0)], &[ProcessId(1), ProcessId(2)]);
        assert!(!st.reachable(ProcessId(0), ProcessId(1)));
        assert!(!st.reachable(ProcessId(2), ProcessId(0)));
        assert!(st.reachable(ProcessId(1), ProcessId(2)));
        assert_eq!(st.blocked_pairs(), 4);
        st.heal();
        assert!(st.reachable(ProcessId(0), ProcessId(1)));
    }

    #[test]
    fn degrade_and_restore() {
        let mut st = NetState::new();
        assert_eq!(st.extra_drop(), 0.0);
        assert_eq!(st.delay_factor(), 1.0);
        st.degrade(1.5, 0.2, 3.0); // extra_drop clamps to 1.0
        assert_eq!(st.extra_drop(), 1.0);
        assert_eq!(st.dup_probability(), 0.2);
        assert_eq!(st.delay_factor(), 3.0);
        st.restore();
        assert_eq!(st.extra_drop(), 0.0);
        assert_eq!(st.dup_probability(), 0.0);
        assert_eq!(st.delay_factor(), 1.0);
    }

    #[test]
    fn fifo_links_never_reorder() {
        let cfg = NetConfig {
            fifo_links: true,
            ..NetConfig::default()
        };
        let mut st = NetState::new();
        let t1 = st.arrival_time(
            &cfg,
            ProcessId(0),
            ProcessId(1),
            SimTime::ZERO,
            SimDuration::from_millis(10),
        );
        // A later send with a much smaller sampled delay must not overtake.
        let t2 = st.arrival_time(
            &cfg,
            ProcessId(0),
            ProcessId(1),
            SimTime::from_millis(1),
            SimDuration::from_micros(10),
        );
        assert!(t2 >= t1);
    }

    #[test]
    fn non_fifo_links_can_reorder() {
        let cfg = NetConfig::default();
        let mut st = NetState::new();
        let t1 = st.arrival_time(
            &cfg,
            ProcessId(0),
            ProcessId(1),
            SimTime::ZERO,
            SimDuration::from_millis(10),
        );
        let t2 = st.arrival_time(
            &cfg,
            ProcessId(0),
            ProcessId(1),
            SimTime::from_millis(1),
            SimDuration::from_micros(10),
        );
        assert!(t2 < t1, "non-FIFO link should allow overtaking");
    }
}
