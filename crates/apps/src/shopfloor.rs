//! The shop-floor control example — Figure 2 and §3.1 ("unrecognized
//! causality").
//!
//! Two shop-floor-control (SFC) instances share a database. Client A
//! sends "start processing lot A" to instance 1, waits for the reply,
//! then sends "stop processing lot A" to instance 2. Each instance
//! updates the shared database and multicasts the result to the group.
//! The database serializes the two updates — but that ordering flows
//! through a *hidden channel* the multicast layer cannot see, so the two
//! multicasts are concurrent under happens-before and causal multicast
//! may deliver "stop" before "start" at an observer.
//!
//! The state-level fix (§3.1): the database stamps each update with a lot
//! version; observers apply updates through a [`VersionedStore`], which
//! makes delivery order irrelevant.

use catocs::cbcast::CbcastEndpoint;
use catocs::group::GroupConfig;
use catocs::wire::{Delivery, Dest, Out, Wire};
use clocks::versions::{ObjectId, Version, VersionedTag};
use simnet::net::NetConfig;
use simnet::process::{Ctx, Process, ProcessId, TimerId};
use simnet::sim::SimBuilder;
use simnet::time::{SimDuration, SimTime};
use statelevel::versioned::VersionedStore;

/// The lot being controlled.
pub const LOT: ObjectId = ObjectId(42);

/// A group multicast payload: lot state changed.
#[derive(Clone, Debug)]
pub struct LotUpdate {
    /// True = "stop processing", false = "start processing".
    pub stop: bool,
    /// The database-assigned version (the state-level clock).
    pub version: u64,
}

/// Every message in the scenario.
#[derive(Clone, Debug)]
pub enum ShopMsg {
    /// Client → SFC instance: start/stop request.
    Request { stop: bool },
    /// SFC → client: done.
    RequestReply,
    /// SFC → database: apply the update.
    DbWrite { stop: bool },
    /// Database → SFC: serialized, with the assigned version.
    DbReply { stop: bool, version: u64 },
    /// Group traffic (causal multicast layer).
    Group(Wire<LotUpdate>),
}

const TICK: TimerId = TimerId(0);
const TICK_EVERY: SimDuration = SimDuration::from_millis(5);

/// Group member indices → simulator processes: the SFC instances are
/// P0/P1 (colocated with the database P2 and client P3 on the factory
/// LAN); the observer (Client B) is P4, across the jittery link — the
/// paper's clients receive the multicasts over the wide communication
/// substrate while the SFC↔database traffic is local.
fn member_pid(idx: usize) -> ProcessId {
    match idx {
        0 => ProcessId(0),
        1 => ProcessId(1),
        _ => ProcessId(4),
    }
}

fn route(ctx: &mut Ctx<'_, ShopMsg>, me: usize, out: Vec<Out<LotUpdate>>) {
    for (dest, wire) in out {
        match dest {
            Dest::All => {
                for k in 0..3 {
                    if k != me {
                        ctx.send(member_pid(k), ShopMsg::Group(wire.clone()));
                    }
                }
            }
            Dest::One(k) => ctx.send(member_pid(k), ShopMsg::Group(wire)),
        }
    }
}

/// An SFC instance: group member 0 or 1.
pub struct SfcInstance {
    me: usize,
    endpoint: CbcastEndpoint<LotUpdate>,
    client: Option<ProcessId>,
    db: ProcessId,
}

impl SfcInstance {
    /// Creates instance `me` (member index), talking to database `db`.
    pub fn new(me: usize, db: ProcessId) -> Self {
        SfcInstance {
            me,
            endpoint: CbcastEndpoint::new(me, 3, GroupConfig::default()),
            client: None,
            db,
        }
    }
}

impl Process<ShopMsg> for SfcInstance {
    fn on_start(&mut self, ctx: &mut Ctx<'_, ShopMsg>) {
        ctx.set_timer(TICK, TICK_EVERY);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, ShopMsg>, from: ProcessId, msg: ShopMsg) {
        match msg {
            ShopMsg::Request { stop } => {
                self.client = Some(from);
                // The shared database is the hidden channel: this
                // interaction is invisible to the multicast layer.
                ctx.send(self.db, ShopMsg::DbWrite { stop });
            }
            ShopMsg::DbReply { stop, version } => {
                let (_self_delivery, out) = self
                    .endpoint
                    .multicast(ctx.now(), LotUpdate { stop, version });
                route(ctx, self.me, out);
                if let Some(client) = self.client {
                    ctx.send(client, ShopMsg::RequestReply);
                }
            }
            ShopMsg::Group(w) => {
                let (_dels, out) = self.endpoint.on_wire(ctx.now(), w);
                route(ctx, self.me, out);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, ShopMsg>, _t: TimerId) {
        let out = self.endpoint.on_tick(ctx.now());
        route(ctx, self.me, out);
        ctx.set_timer(TICK, TICK_EVERY);
    }
}

/// The observer (Client B): group member 2. Tracks both the naive
/// delivery-order state and the version-checked state.
pub struct Observer {
    endpoint: CbcastEndpoint<LotUpdate>,
    /// Delivery-order state: last delivered update wins.
    pub naive_stopped: Option<bool>,
    /// Version-checked state.
    pub store: VersionedStore<bool>,
    /// The sequence of (version, stop) as delivered.
    pub delivered: Vec<(u64, bool)>,
}

impl Observer {
    /// A fresh observer.
    pub fn new() -> Self {
        Observer {
            endpoint: CbcastEndpoint::new(2, 3, GroupConfig::default()),
            naive_stopped: None,
            store: VersionedStore::new(),
            delivered: Vec::new(),
        }
    }

    fn apply(&mut self, d: &Delivery<LotUpdate>) {
        self.naive_stopped = Some(d.payload.stop);
        self.store.apply_remote(
            VersionedTag::new(LOT, Version(d.payload.version)),
            d.payload.stop,
        );
        self.delivered.push((d.payload.version, d.payload.stop));
    }
}

impl Default for Observer {
    fn default() -> Self {
        Self::new()
    }
}

impl Process<ShopMsg> for Observer {
    fn on_start(&mut self, ctx: &mut Ctx<'_, ShopMsg>) {
        ctx.set_timer(TICK, TICK_EVERY);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, ShopMsg>, _from: ProcessId, msg: ShopMsg) {
        if let ShopMsg::Group(w) = msg {
            let (dels, out) = self.endpoint.on_wire(ctx.now(), w);
            for d in &dels {
                self.apply(d);
            }
            route(ctx, 2, out);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, ShopMsg>, _t: TimerId) {
        let out = self.endpoint.on_tick(ctx.now());
        route(ctx, 2, out);
        ctx.set_timer(TICK, TICK_EVERY);
    }
}

/// The shared database: serializes updates, assigns versions.
pub struct Database {
    version: u64,
}

impl Database {
    /// A fresh database.
    pub fn new() -> Self {
        Database { version: 0 }
    }
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Process<ShopMsg> for Database {
    fn on_message(&mut self, ctx: &mut Ctx<'_, ShopMsg>, from: ProcessId, msg: ShopMsg) {
        if let ShopMsg::DbWrite { stop } = msg {
            self.version += 1;
            ctx.send(
                from,
                ShopMsg::DbReply {
                    stop,
                    version: self.version,
                },
            );
        }
    }
}

/// Client A: starts the lot at instance 1, then stops it at instance 2.
pub struct ClientA {
    sent_stop: bool,
}

impl ClientA {
    /// A fresh client.
    pub fn new() -> Self {
        ClientA { sent_stop: false }
    }
}

impl Default for ClientA {
    fn default() -> Self {
        Self::new()
    }
}

impl Process<ShopMsg> for ClientA {
    fn on_start(&mut self, ctx: &mut Ctx<'_, ShopMsg>) {
        ctx.send(member_pid(0), ShopMsg::Request { stop: false });
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, ShopMsg>, _from: ProcessId, msg: ShopMsg) {
        if matches!(msg, ShopMsg::RequestReply) && !self.sent_stop {
            self.sent_stop = true;
            ctx.send(member_pid(1), ShopMsg::Request { stop: true });
        }
    }
}

/// Results of one shop-floor run.
#[derive(Clone, Debug)]
pub struct ShopfloorResult {
    /// Did the observer deliver "stop" before "start"?
    pub misordered: bool,
    /// Naive (delivery-order) final state says the lot is stopped.
    pub naive_final_stopped: Option<bool>,
    /// Version-checked final state says the lot is stopped.
    pub versioned_final_stopped: Option<bool>,
    /// Stale updates the versioned store rejected.
    pub stale_rejected: u64,
}

/// Runs the Figure-2 scenario once.
pub fn run_shopfloor(seed: u64, net: NetConfig) -> ShopfloorResult {
    let mut sim = SimBuilder::new(seed).net(net).build::<ShopMsg>();
    let db = ProcessId(2);
    sim.add_process(SfcInstance::new(0, db)); // P0, member 0
    sim.add_process(SfcInstance::new(1, db)); // P1, member 1
    sim.add_process(Database::new()); // P2
    sim.add_process(ClientA::new()); // P3
    sim.add_process(Observer::new()); // P4, member 2
    sim.run_until(SimTime::from_secs(2));
    let obs: &Observer = sim.process(ProcessId(4)).expect("observer");
    let misordered = obs.delivered.first().map(|&(v, _)| v != 1).unwrap_or(false);
    ShopfloorResult {
        misordered,
        naive_final_stopped: obs.naive_stopped,
        versioned_final_stopped: obs.store.get(LOT).map(|r| r.value),
        stale_rejected: obs.store.stale_rejected(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::net::LatencyModel;

    /// The paper's Figure-2 geometry: client and database channels are
    /// local and fast (the dashed "outside the substrate" lines), while
    /// the communications substrate between the SFC sites and out to the
    /// observer is wide and jittery.
    fn jittery() -> NetConfig {
        const W: f64 = 30.0; // substrate distance
                             // P0=SFC1, P1=SFC2, P2=DB, P3=client, P4=observer.
        let dist = vec![
            vec![0.0, W, 1.0, 1.0, W],
            vec![W, 0.0, 1.0, 1.0, W],
            vec![1.0, 1.0, 0.0, 1.0, W],
            vec![1.0, 1.0, 1.0, 0.0, W],
            vec![W, W, W, W, 0.0],
        ];
        NetConfig {
            latency: LatencyModel::Spatial {
                per_unit: SimDuration::from_micros(400),
                jitter: SimDuration::from_micros(300),
            },
            topology: simnet::topology::Topology::explicit(dist),
            ..NetConfig::default()
        }
    }

    #[test]
    fn hidden_channel_defeats_causal_multicast() {
        // Across many seeds, at least one run misorders start/stop at the
        // observer — the Figure 2 anomaly.
        let mut anomalies = 0;
        let mut naive_wrong = 0;
        for seed in 0..40 {
            let r = run_shopfloor(seed, jittery());
            assert!(
                r.naive_final_stopped.is_some(),
                "observer saw updates (seed {seed})"
            );
            if r.misordered {
                anomalies += 1;
                if r.naive_final_stopped == Some(false) {
                    naive_wrong += 1;
                }
            }
        }
        assert!(anomalies > 0, "expected at least one misordered run");
        assert!(
            naive_wrong > 0,
            "misordering should corrupt the naive observer state"
        );
    }

    #[test]
    fn version_numbers_fix_the_final_state() {
        // The §3.1 fix: whatever the delivery order, the versioned state
        // ends correct ("stopped").
        for seed in 0..40 {
            let r = run_shopfloor(seed, jittery());
            assert_eq!(
                r.versioned_final_stopped,
                Some(true),
                "seed {seed}: versioned store must end stopped"
            );
            if r.misordered {
                assert!(r.stale_rejected > 0, "seed {seed}: stale update rejected");
            }
        }
    }

    #[test]
    fn without_jitter_no_anomaly() {
        // On an ideal FIFO network the two multicasts arrive in true
        // order; this isolates the jitter as the anomaly trigger.
        let r = run_shopfloor(7, NetConfig::ideal(SimDuration::from_millis(1)));
        assert!(!r.misordered);
        assert_eq!(r.naive_final_stopped, Some(true));
    }
}
