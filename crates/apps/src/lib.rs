//! # apps — the paper's application scenarios
//!
//! Every worked example from the paper, runnable under `simnet`, with the
//! CATOCS approach and the state-level alternative implemented side by
//! side so the experiments can compare them:
//!
//! - [`trading`] — Figure 4: option/theoretical pricing with the false
//!   crossing anomaly; fixed by dependency fields (§4.1).
//! - [`shopfloor`] — Figure 2: shop-floor control with a shared database
//!   as hidden channel; fixed by database version numbers (§3.1).
//! - [`firemon`] — Figure 3: the fire as an external channel; fixed by
//!   real-time timestamps.
//! - [`naming`] — §4.5: replication in the large — a lazily replicated
//!   global name service with the duplicate-binding undo rule.
//! - [`netnews`] — §4.1: inquiry/response ordering via the `References`
//!   field and an order-preserving cache, versus per-inquiry causal
//!   groups.
//! - [`drilling`] — appendix 9.1: distributed CATOCS scheduling versus a
//!   central-controller state approach; message traffic comparison.
//! - [`rpc`] — appendix 9.2: RPC deadlock detection by causal multicast
//!   of every invocation (van Renesse) versus periodic wait-for reports.
//! - [`oven`] — §4.6: real-time oven monitoring; CATOCS holdback
//!   staleness versus latest-wins delivery with synchronized clocks.
//! - [`threads`] — §3.1's second hidden channel: threads of one server
//!   sharing memory, with multicasts inverted by scheduling lag.

pub mod drilling;
pub mod firemon;
pub mod naming;
pub mod netnews;
pub mod oven;
pub mod rpc;
pub mod shopfloor;
pub mod threads;
pub mod trading;
