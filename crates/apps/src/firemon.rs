//! The fire-alarm example — Figure 3 ("an external channel, namely a
//! fire").
//!
//! A furnace-control process P detects a fire on two occasions and
//! multicasts "fire" warnings; a separate monitor R detects the first
//! fire going out and multicasts "fire out". The fire itself is an
//! external channel: the semantic dependency *fire-out(1) precedes
//! fire(2)* exists in the physical world, invisible to the multicast
//! layer. P's second "fire" and R's "fire out" are concurrent under
//! happens-before, so a third process Q can receive "fire out" last and
//! wrongly conclude the fire is out — under causal *and* total multicast.
//!
//! The state-level fix (§4.6): every event carries a synchronized
//! real-time timestamp; Q believes the event with the latest timestamp.
//! Event spacing (tens of ms) dwarfs clock error (<1 ms), so temporal
//! precedence is exact.

use catocs::endpoint::Discipline;
use catocs::group::GroupConfig;
use catocs::harness::{spawn_group, GroupApp, GroupCtx, GroupNode};
use catocs::wire::{Delivery, Wire};
use clocks::realtime::{RtStamp, SyncClock};
use simnet::net::NetConfig;
use simnet::sim::SimBuilder;
use simnet::time::{SimDuration, SimTime};

/// A fire-status event.
#[derive(Clone, Debug)]
pub struct FireMsg {
    /// True = fire burning; false = fire out.
    pub fire: bool,
    /// Synchronized real-time timestamp of the physical detection.
    pub stamp: RtStamp,
}

/// The environment schedule, in app-tick counts (one tick = 5 ms):
/// fire 1 at tick 2, fire-out at tick 3, fire 2 at tick 4. The events
/// are 5 ms apart — well above the clock error bound (<1 ms), well
/// below the network jitter (~18 ms), which is exactly the regime the
/// paper describes: timestamps order the events perfectly while the
/// network cannot.
const FIRE1_TICK: u32 = 2;
const OUT_TICK: u32 = 3;
const FIRE2_TICK: u32 = 4;

/// Member 0: the furnace controller P (detects both fires).
pub struct FurnaceP {
    ticks: u32,
    clock: SyncClock,
}

/// Member 1: the monitor R (detects the fire going out).
pub struct MonitorR {
    ticks: u32,
    clock: SyncClock,
}

/// Member 2: the observer Q.
pub struct ObserverQ {
    /// Naive belief: the last delivered message.
    pub naive_fire: Option<bool>,
    /// Timestamp-ordered belief.
    pub rt_fire: Option<(RtStamp, bool)>,
    /// Deliveries in order, as (fire, stamp).
    pub log: Vec<(bool, RtStamp)>,
}

impl GroupApp<FireMsg> for FurnaceP {
    fn on_tick(&mut self, ctx: &mut GroupCtx<'_>) -> Vec<FireMsg> {
        self.ticks += 1;
        if self.ticks == FIRE1_TICK || self.ticks == FIRE2_TICK {
            vec![FireMsg {
                fire: true,
                stamp: self.clock.stamp(ctx.now, 0),
            }]
        } else {
            Vec::new()
        }
    }
}

impl GroupApp<FireMsg> for MonitorR {
    fn on_tick(&mut self, ctx: &mut GroupCtx<'_>) -> Vec<FireMsg> {
        self.ticks += 1;
        if self.ticks == OUT_TICK {
            vec![FireMsg {
                fire: false,
                stamp: self.clock.stamp(ctx.now, 1),
            }]
        } else {
            Vec::new()
        }
    }
}

impl GroupApp<FireMsg> for ObserverQ {
    fn on_deliver(&mut self, _ctx: &mut GroupCtx<'_>, d: &Delivery<FireMsg>) -> Vec<FireMsg> {
        self.naive_fire = Some(d.payload.fire);
        let better = match self.rt_fire {
            None => true,
            Some((s, _)) => d.payload.stamp > s,
        };
        if better {
            self.rt_fire = Some((d.payload.stamp, d.payload.fire));
        }
        self.log.push((d.payload.fire, d.payload.stamp));
        Vec::new()
    }
}

/// The three roles, boxed for the shared harness.
pub enum FireRole {
    /// Furnace controller P.
    P(FurnaceP),
    /// Fire-out monitor R.
    R(MonitorR),
    /// Observer Q.
    Q(ObserverQ),
}

impl FireRole {
    /// Access the observer, if this role is Q.
    pub fn as_q(&self) -> Option<&ObserverQ> {
        match self {
            FireRole::Q(q) => Some(q),
            _ => None,
        }
    }
}

impl GroupApp<FireMsg> for FireRole {
    fn on_tick(&mut self, ctx: &mut GroupCtx<'_>) -> Vec<FireMsg> {
        match self {
            FireRole::P(p) => p.on_tick(ctx),
            FireRole::R(r) => r.on_tick(ctx),
            FireRole::Q(_) => Vec::new(),
        }
    }
    fn on_deliver(&mut self, ctx: &mut GroupCtx<'_>, d: &Delivery<FireMsg>) -> Vec<FireMsg> {
        match self {
            FireRole::Q(q) => q.on_deliver(ctx, d),
            _ => Vec::new(),
        }
    }
}

/// Results of one fire run.
#[derive(Clone, Debug)]
pub struct FireResult {
    /// Q's naive final belief (false = thinks the fire is out — wrong).
    pub naive_fire: Option<bool>,
    /// Q's timestamp-ordered final belief.
    pub rt_fire: Option<bool>,
    /// Whether Q received "fire out" last (the anomaly).
    pub out_delivered_last: bool,
}

/// Runs the Figure-3 scenario with clocks skewed by up to `skew_us`.
pub fn run_firemon(seed: u64, discipline: Discipline, net: NetConfig, skew_us: i64) -> FireResult {
    let mut sim = SimBuilder::new(seed).net(net).build::<Wire<FireMsg>>();
    let err = SimDuration::from_millis(1); // the paper's "< 1 ms accuracy"
    let members = spawn_group(
        &mut sim,
        3,
        discipline,
        GroupConfig::default(),
        Some(SimDuration::from_millis(5)),
        |me| match me {
            0 => FireRole::P(FurnaceP {
                ticks: 0,
                clock: SyncClock::new(skew_us, 0, err),
            }),
            1 => FireRole::R(MonitorR {
                ticks: 0,
                clock: SyncClock::new(-skew_us, 0, err),
            }),
            _ => FireRole::Q(ObserverQ {
                naive_fire: None,
                rt_fire: None,
                log: Vec::new(),
            }),
        },
    );
    sim.run_until(SimTime::from_secs(2));
    let node = sim
        .process::<GroupNode<FireMsg, FireRole>>(members[2])
        .expect("observer node");
    let q = node.app().as_q().expect("role Q");
    FireResult {
        naive_fire: q.naive_fire,
        rt_fire: q.rt_fire.map(|(_, f)| f),
        out_delivered_last: q.log.last().map(|&(f, _)| !f).unwrap_or(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::net::LatencyModel;

    fn jittery() -> NetConfig {
        NetConfig {
            latency: LatencyModel::Uniform {
                min: SimDuration::from_micros(100),
                max: SimDuration::from_millis(18),
            },
            ..NetConfig::default()
        }
    }

    #[test]
    fn external_channel_defeats_causal_multicast() {
        let mut anomalies = 0;
        for seed in 0..40 {
            let r = run_firemon(seed, Discipline::Causal, jittery(), 300);
            if r.out_delivered_last {
                anomalies += 1;
                assert_eq!(
                    r.naive_fire,
                    Some(false),
                    "seed {seed}: naive Q must believe the fire is out"
                );
            }
        }
        assert!(anomalies > 0, "expected the Figure 3 anomaly to occur");
    }

    #[test]
    fn same_anomaly_under_total_order() {
        // "Note that the same behavior could be exhibited using a
        // total-ordered multicast."
        let mut anomalies = 0;
        for seed in 0..40 {
            let r = run_firemon(seed, Discipline::Total { sequencer: 0 }, jittery(), 300);
            if r.out_delivered_last {
                anomalies += 1;
            }
        }
        assert!(anomalies > 0);
    }

    #[test]
    fn real_time_stamps_fix_the_belief() {
        // Even with ±300us clock skew, 20ms event spacing makes temporal
        // precedence exact: Q's rt belief is always "fire burning".
        for seed in 0..40 {
            let r = run_firemon(seed, Discipline::Causal, jittery(), 300);
            assert_eq!(r.rt_fire, Some(true), "seed {seed}");
        }
    }

    #[test]
    fn all_messages_delivered() {
        let r = run_firemon(3, Discipline::Causal, jittery(), 0);
        assert!(r.naive_fire.is_some());
        assert!(r.rt_fire.is_some());
    }
}
