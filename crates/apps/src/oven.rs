//! Real-time oven monitoring — §4.6.
//!
//! Sensors stream temperature samples; the controller's view is correct
//! to the extent its stored value tracks the physical oven ("sufficient
//! consistency"). The paper's claim: CATOCS *reduces* correctness here,
//! because holdback delays and retransmission of lost old samples keep
//! the monitor's value stale, whereas the right design delivers the most
//! recent reading immediately and simply drops older ones
//! (latest-wins by real-time timestamp).
//!
//! Experiment T13 measures mean/max staleness (age of the monitor's
//! stored sample) for the CATOCS path versus the state-level path under
//! identical loss and jitter.

use catocs::endpoint::Discipline;
use catocs::group::GroupConfig;
use catocs::harness::{spawn_group, GroupApp, GroupCtx, GroupNode};
use catocs::wire::{Delivery, Wire};
use clocks::versions::{ObjectId, Version};
use simnet::net::NetConfig;
use simnet::process::{Ctx, Process, ProcessId, TimerId};
use simnet::sim::SimBuilder;
use simnet::time::{SimDuration, SimTime};
use statelevel::prescriptive::{PrescriptiveInbox, PrescriptivePolicy};

/// A sensor sample.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Which sensor.
    pub sensor: usize,
    /// Sample sequence number at that sensor.
    pub seq: u64,
    /// Sampled temperature (deci-degrees).
    pub temp: i64,
    /// Real-time timestamp of the physical sample.
    pub taken_at: SimTime,
}

/// Ground-truth oven temperature at `t` (a slow ramp plus oscillation).
pub fn oven_truth(t: SimTime) -> i64 {
    let secs = t.as_secs_f64();
    (2000.0 + 20.0 * secs + 150.0 * (secs * 3.0).sin()) as i64
}

/// Staleness statistics accumulated by a monitor.
#[derive(Clone, Debug, Default)]
pub struct Staleness {
    samples: u64,
    total_us: u64,
    max_us: u64,
}

impl Staleness {
    /// Records the age of the stored value at an observation instant.
    pub fn record(&mut self, age: SimDuration) {
        self.samples += 1;
        self.total_us += age.as_micros();
        self.max_us = self.max_us.max(age.as_micros());
    }

    /// Mean age.
    pub fn mean(&self) -> SimDuration {
        match self.total_us.checked_div(self.samples) {
            None => SimDuration::ZERO,
            Some(mean) => SimDuration::from_micros(mean),
        }
    }

    /// Maximum age.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_micros(self.max_us)
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.samples
    }
}

// ---------------------------------------------------------------------
// CATOCS path: sensors + monitor in a causal group.
// ---------------------------------------------------------------------

/// Group member roles for the CATOCS path.
pub enum OvenRole {
    /// A sensor publishing on every app tick.
    Sensor {
        /// Sensor index.
        me: usize,
        /// Next sequence number.
        seq: u64,
        /// Samples still to publish.
        remaining: u32,
    },
    /// The monitoring controller.
    Monitor(OvenMonitor),
}

/// The monitor state shared by both paths.
#[derive(Default)]
pub struct OvenMonitor {
    /// Latest stored sample time.
    pub latest_taken_at: Option<SimTime>,
    /// Latest stored temperature.
    pub latest_temp: i64,
    /// Staleness sampled at every delivery.
    pub staleness: Staleness,
}

impl OvenMonitor {
    fn observe(&mut self, now: SimTime, taken_at: SimTime, temp: i64) {
        if self.latest_taken_at.map(|t| taken_at > t).unwrap_or(true) {
            self.latest_taken_at = Some(taken_at);
            self.latest_temp = temp;
        }
        // Age of the *stored* value right now.
        if let Some(t) = self.latest_taken_at {
            self.staleness.record(now.saturating_since(t));
        }
    }
}

impl OvenRole {
    /// Access the monitor, if this role is one.
    pub fn as_monitor(&self) -> Option<&OvenMonitor> {
        match self {
            OvenRole::Monitor(m) => Some(m),
            _ => None,
        }
    }
}

impl GroupApp<Sample> for OvenRole {
    fn on_tick(&mut self, ctx: &mut GroupCtx<'_>) -> Vec<Sample> {
        match self {
            OvenRole::Sensor { me, seq, remaining } => {
                if *remaining == 0 {
                    return Vec::new();
                }
                *remaining -= 1;
                *seq += 1;
                vec![Sample {
                    sensor: *me,
                    seq: *seq,
                    temp: oven_truth(ctx.now),
                    taken_at: ctx.now,
                }]
            }
            OvenRole::Monitor(_) => Vec::new(),
        }
    }

    fn on_deliver(&mut self, ctx: &mut GroupCtx<'_>, d: &Delivery<Sample>) -> Vec<Sample> {
        if let OvenRole::Monitor(m) = self {
            m.observe(ctx.now, d.payload.taken_at, d.payload.temp);
        }
        Vec::new()
    }
}

/// Results of one oven run.
#[derive(Clone, Debug)]
pub struct OvenResult {
    /// Mean age of the monitor's stored value at observation points.
    pub mean_staleness: SimDuration,
    /// Worst-case age.
    pub max_staleness: SimDuration,
    /// Updates the monitor processed.
    pub observations: u64,
    /// Messages on the wire.
    pub net_sent: u64,
}

/// Runs the CATOCS path: `sensors` sensors + 1 monitor in a causal group.
pub fn run_oven_catocs(
    seed: u64,
    sensors: usize,
    samples_per_sensor: u32,
    period: SimDuration,
    net: NetConfig,
) -> OvenResult {
    let mut sim = SimBuilder::new(seed).net(net).build::<Wire<Sample>>();
    let members = spawn_group(
        &mut sim,
        sensors + 1,
        Discipline::Causal,
        GroupConfig::default(),
        Some(period),
        |me| {
            if me < sensors {
                OvenRole::Sensor {
                    me,
                    seq: 0,
                    remaining: samples_per_sensor,
                }
            } else {
                OvenRole::Monitor(OvenMonitor::default())
            }
        },
    );
    sim.run_until(SimTime::ZERO + period.saturating_mul(samples_per_sensor as u64 + 20));
    let node = sim
        .process::<GroupNode<Sample, OvenRole>>(members[sensors])
        .expect("monitor");
    let m = node.app().as_monitor().expect("monitor role");
    OvenResult {
        mean_staleness: m.staleness.mean(),
        max_staleness: m.staleness.max(),
        observations: m.staleness.count(),
        net_sent: sim.metrics().counter("net.sent"),
    }
}

// ---------------------------------------------------------------------
// State-level path: raw datagrams + latest-wins inbox.
// ---------------------------------------------------------------------

/// A sensor in the state-level path: sends directly to the monitor.
pub struct RawSensor {
    me: usize,
    monitor: ProcessId,
    period: SimDuration,
    seq: u64,
    remaining: u32,
}

const SAMPLE_TICK: TimerId = TimerId(0);

impl Process<Sample> for RawSensor {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Sample>) {
        ctx.set_timer(SAMPLE_TICK, self.period);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Sample>, _t: TimerId) {
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        self.seq += 1;
        ctx.send(
            self.monitor,
            Sample {
                sensor: self.me,
                seq: self.seq,
                temp: oven_truth(ctx.now()),
                taken_at: ctx.now(),
            },
        );
        ctx.set_timer(SAMPLE_TICK, self.period);
    }
}

/// The state-level monitor: latest-wins per sensor, no holdback ever.
pub struct RawMonitor {
    inbox: PrescriptiveInbox<(i64, SimTime)>,
    /// Shared monitor state.
    pub core: OvenMonitor,
}

impl Process<Sample> for RawMonitor {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Sample>, _from: ProcessId, msg: Sample) {
        let released = self.inbox.offer(
            ObjectId(msg.sensor as u64),
            Version(msg.seq),
            (msg.temp, msg.taken_at),
            ctx.now(),
        );
        for r in released {
            self.core.observe(ctx.now(), r.body.1, r.body.0);
        }
    }
}

/// Runs the state-level path with identical workload and network.
pub fn run_oven_state(
    seed: u64,
    sensors: usize,
    samples_per_sensor: u32,
    period: SimDuration,
    net: NetConfig,
) -> OvenResult {
    let mut sim = SimBuilder::new(seed).net(net).build::<Sample>();
    let monitor_pid = ProcessId(sensors);
    for me in 0..sensors {
        sim.add_process(RawSensor {
            me,
            monitor: monitor_pid,
            period,
            seq: 0,
            remaining: samples_per_sensor,
        });
    }
    sim.add_process(RawMonitor {
        inbox: PrescriptiveInbox::new(PrescriptivePolicy::LatestWins),
        core: OvenMonitor::default(),
    });
    sim.run_until(SimTime::ZERO + period.saturating_mul(samples_per_sensor as u64 + 20));
    let m: &RawMonitor = sim.process(monitor_pid).expect("monitor");
    OvenResult {
        mean_staleness: m.core.staleness.mean(),
        max_staleness: m.core.staleness.max(),
        observations: m.core.staleness.count(),
        net_sent: sim.metrics().counter("net.sent"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::net::LatencyModel;

    fn lossy(p: f64) -> NetConfig {
        NetConfig {
            latency: LatencyModel::Uniform {
                min: SimDuration::from_micros(500),
                max: SimDuration::from_millis(6),
            },
            drop_probability: p,
            ..NetConfig::default()
        }
    }

    #[test]
    fn truth_is_smooth() {
        let a = oven_truth(SimTime::from_millis(0));
        let b = oven_truth(SimTime::from_millis(100));
        assert!((a - b).abs() < 500);
    }

    #[test]
    fn both_paths_track_the_oven() {
        let c = run_oven_catocs(1, 3, 60, SimDuration::from_millis(10), lossy(0.0));
        let s = run_oven_state(1, 3, 60, SimDuration::from_millis(10), lossy(0.0));
        assert!(c.observations > 100);
        assert!(s.observations > 100);
    }

    #[test]
    fn state_level_staleness_no_worse_under_loss() {
        // Under loss, CATOCS recovery (NACK + retransmit + holdback)
        // costs staleness; latest-wins just waits for the next sample.
        let mut c_total = 0u64;
        let mut s_total = 0u64;
        for seed in 0..3 {
            let c = run_oven_catocs(seed, 3, 80, SimDuration::from_millis(10), lossy(0.15));
            let s = run_oven_state(seed, 3, 80, SimDuration::from_millis(10), lossy(0.15));
            c_total += c.mean_staleness.as_micros();
            s_total += s.mean_staleness.as_micros();
        }
        assert!(
            s_total <= c_total,
            "state mean staleness {s_total} should not exceed catocs {c_total}"
        );
    }

    #[test]
    fn catocs_sends_more_messages() {
        let c = run_oven_catocs(2, 3, 60, SimDuration::from_millis(10), lossy(0.1));
        let s = run_oven_state(2, 3, 60, SimDuration::from_millis(10), lossy(0.1));
        assert!(c.net_sent > s.net_sent);
    }
}
