//! The trading-floor example — Figure 4 and §4.1.
//!
//! Three group members: an option-pricing server multicasting raw option
//! prices, a theoretical-pricing server that derives a theoretical price
//! from each option price (after a compute delay) and multicasts it, and
//! a monitor displaying both series.
//!
//! The paper's semantic ordering constraint: "a theoretical price is
//! ordered after the underlying option price from which it is derived and
//! before all subsequent changes to that underlying price." The new
//! option price and the old theoretical price are *concurrent* under
//! happens-before, so neither causal nor total multicast can enforce the
//! constraint — the monitor observes a **false crossing**. The
//! state-level fix carries a dependency field (base object id + version)
//! and the monitor checks freshness before display.

use catocs::endpoint::Discipline;
use catocs::group::GroupConfig;
use catocs::harness::{spawn_group, GroupApp, GroupCtx, GroupNode};
use catocs::wire::{Delivery, Wire};
use clocks::versions::{DependencyStamp, ObjectId, Version, VersionedTag};
use rand::Rng;
use simnet::net::NetConfig;
use simnet::sim::{Sim, SimBuilder};
use simnet::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// The base (option price) object id.
pub const OPTION_OBJ: ObjectId = ObjectId(1);
/// The derived (theoretical price) object id.
pub const THEO_OBJ: ObjectId = ObjectId(2);

/// Messages on the trading group.
#[derive(Clone, Debug)]
pub enum TickerMsg {
    /// A raw option price (version = per-object state clock).
    OptionPrice { version: u64, cents: i64 },
    /// A theoretical price derived from option-price `based_on`.
    TheoPrice {
        version: u64,
        cents: i64,
        based_on: u64,
    },
}

/// Member 0: the option pricing feed (random walk).
pub struct OptionServer {
    version: u64,
    cents: i64,
    remaining: u32,
}

impl OptionServer {
    /// Prices to publish in total.
    pub fn new(updates: u32) -> Self {
        OptionServer {
            version: 0,
            cents: 2550, // 25.50, as in Figure 4
            remaining: updates,
        }
    }
}

impl GroupApp<TickerMsg> for OptionServer {
    fn on_tick(&mut self, ctx: &mut GroupCtx<'_>) -> Vec<TickerMsg> {
        if self.remaining == 0 {
            return Vec::new();
        }
        self.remaining -= 1;
        self.version += 1;
        self.cents += ctx.rng.gen_range(-40i64..=60);
        vec![TickerMsg::OptionPrice {
            version: self.version,
            cents: self.cents,
        }]
    }
}

/// Member 1: derives theoretical prices after `compute_delay`.
pub struct TheoServer {
    compute_delay: SimDuration,
    queue: VecDeque<(SimTime, u64, i64)>,
    version: u64,
}

impl TheoServer {
    /// Creates the server with the given model-computation delay.
    pub fn new(compute_delay: SimDuration) -> Self {
        TheoServer {
            compute_delay,
            queue: VecDeque::new(),
            version: 0,
        }
    }
}

impl GroupApp<TickerMsg> for TheoServer {
    fn on_deliver(&mut self, ctx: &mut GroupCtx<'_>, d: &Delivery<TickerMsg>) -> Vec<TickerMsg> {
        if let TickerMsg::OptionPrice { version, cents } = d.payload {
            // The model output is worth a premium over the raw price.
            self.queue
                .push_back((ctx.now + self.compute_delay, version, cents + 125));
        }
        Vec::new()
    }

    fn on_tick(&mut self, ctx: &mut GroupCtx<'_>) -> Vec<TickerMsg> {
        let mut out = Vec::new();
        while let Some(&(ready, based_on, cents)) = self.queue.front() {
            if ready > ctx.now {
                break;
            }
            self.queue.pop_front();
            self.version += 1;
            out.push(TickerMsg::TheoPrice {
                version: self.version,
                cents,
                based_on,
            });
        }
        out
    }
}

/// Member 2: the monitor. In CATOCS mode it displays whatever arrives;
/// in state-level mode it checks the dependency field first.
pub struct Monitor {
    /// Use the dependency-tracking fix.
    state_level: bool,
    tracker: statelevel::deps::DependencyTracker,
    /// Highest option version displayed.
    latest_option_displayed: u64,
    /// False crossings observed: a theoretical price derived from an
    /// option version older than one already displayed.
    pub false_crossings: u64,
    /// Stale theoretical prices suppressed by the dependency check.
    pub suppressed_stale: u64,
    /// Total prices displayed.
    pub displayed: u64,
    /// The displayed tape: (is_theo, version-or-base, cents).
    pub tape: Vec<(bool, u64, i64)>,
}

impl Monitor {
    /// Creates a monitor; `state_level` enables the §4.1 fix.
    pub fn new(state_level: bool) -> Self {
        Monitor {
            state_level,
            tracker: statelevel::deps::DependencyTracker::new(),
            latest_option_displayed: 0,
            false_crossings: 0,
            suppressed_stale: 0,
            displayed: 0,
            tape: Vec::new(),
        }
    }
}

impl GroupApp<TickerMsg> for Monitor {
    fn on_deliver(&mut self, _ctx: &mut GroupCtx<'_>, d: &Delivery<TickerMsg>) -> Vec<TickerMsg> {
        match d.payload {
            TickerMsg::OptionPrice { version, cents } => {
                self.tracker
                    .observe_base(VersionedTag::new(OPTION_OBJ, Version(version)));
                self.latest_option_displayed = self.latest_option_displayed.max(version);
                self.displayed += 1;
                self.tape.push((false, version, cents));
            }
            TickerMsg::TheoPrice {
                version,
                cents,
                based_on,
            } => {
                let stamp = DependencyStamp::derived(
                    THEO_OBJ,
                    Version(version),
                    VersionedTag::new(OPTION_OBJ, Version(based_on)),
                );
                let fresh = self.tracker.classify(&stamp);
                let is_stale = based_on < self.latest_option_displayed;
                if self.state_level {
                    if matches!(fresh, statelevel::deps::Freshness::Stale { .. }) {
                        self.suppressed_stale += 1;
                        return Vec::new();
                    }
                    self.displayed += 1;
                    self.tape.push((true, based_on, cents));
                } else {
                    // CATOCS monitor: display blindly; count the anomaly.
                    if is_stale {
                        self.false_crossings += 1;
                    }
                    self.displayed += 1;
                    self.tape.push((true, based_on, cents));
                }
            }
        }
        Vec::new()
    }
}

/// Results of one trading run.
#[derive(Clone, Debug, Default)]
pub struct TradingResult {
    /// False crossings the monitor displayed.
    pub false_crossings: u64,
    /// Stale theoretical prices suppressed (state-level mode).
    pub suppressed_stale: u64,
    /// Prices displayed in total.
    pub displayed: u64,
    /// Deliveries held by the ordering protocol at the monitor.
    pub monitor_held: u64,
    /// Messages sent on the wire in total.
    pub net_sent: u64,
}

/// Runs the Figure-4 scenario.
///
/// * `discipline` — the ordering guarantee under test.
/// * `state_level` — whether the monitor applies the dependency fix.
/// * `updates` — number of option-price updates published.
pub fn run_trading(
    seed: u64,
    discipline: Discipline,
    state_level: bool,
    updates: u32,
    feed_period: SimDuration,
    compute_delay: SimDuration,
    net: NetConfig,
) -> TradingResult {
    let mut sim: Sim<Wire<TickerMsg>> = SimBuilder::new(seed).net(net).build();
    let cfg = GroupConfig {
        tick_interval: SimDuration::from_millis(2),
        ..GroupConfig::default()
    };
    let members = spawn_group(
        &mut sim,
        3,
        discipline,
        cfg,
        Some(feed_period),
        |me| -> Box<dyn TradingRole> {
            match me {
                0 => Box::new(OptionServer::new(updates)),
                1 => Box::new(TheoServer::new(compute_delay)),
                _ => Box::new(Monitor::new(state_level)),
            }
        },
    );
    let horizon =
        SimTime::ZERO + feed_period.saturating_mul(updates as u64 + 4) + SimDuration::from_secs(2);
    sim.run_until(horizon);
    let node = sim
        .process::<GroupNode<TickerMsg, Box<dyn TradingRole>>>(members[2])
        .expect("monitor node");
    let monitor = node.app().as_monitor().expect("member 2 is the monitor");
    TradingResult {
        false_crossings: monitor.false_crossings,
        suppressed_stale: monitor.suppressed_stale,
        displayed: monitor.displayed,
        monitor_held: node.stats().delivered_after_hold,
        net_sent: sim.metrics().counter("net.sent"),
    }
}

/// §4.1's scale argument, made computable: "a large trading floor must
/// monitor price changes on several hundred thousand stocks and
/// derivative instruments, requiring more process groups than we
/// understand current CATOCS implementation can support."
///
/// One process group per instrument (to avoid over-constraining message
/// ordering): returns `(groups, per_workstation_state_bytes)` where each
/// workstation carries one vector clock (8 bytes × members) per group it
/// subscribes to, plus unstable-buffer slots for in-flight traffic.
pub fn catocs_trading_floor_cost(
    instruments: usize,
    members_per_group: usize,
    outstanding_msgs: usize,
    msg_bytes: usize,
) -> (usize, usize) {
    let per_group_clock = 8 * members_per_group;
    let per_group_buffer = outstanding_msgs * msg_bytes;
    (
        instruments,
        instruments * (per_group_clock + per_group_buffer),
    )
}

/// Object-safe union of the three trading roles.
pub trait TradingRole: GroupApp<TickerMsg> {
    /// Downcast to the monitor, if this role is one.
    fn as_monitor(&self) -> Option<&Monitor> {
        None
    }
}

impl TradingRole for OptionServer {}
impl TradingRole for TheoServer {}
impl TradingRole for Monitor {
    fn as_monitor(&self) -> Option<&Monitor> {
        Some(self)
    }
}

impl GroupApp<TickerMsg> for Box<dyn TradingRole> {
    fn on_activate(&mut self, ctx: &mut GroupCtx<'_>) -> Vec<TickerMsg> {
        (**self).on_activate(ctx)
    }
    fn on_deliver(&mut self, ctx: &mut GroupCtx<'_>, d: &Delivery<TickerMsg>) -> Vec<TickerMsg> {
        (**self).on_deliver(ctx, d)
    }
    fn on_tick(&mut self, ctx: &mut GroupCtx<'_>) -> Vec<TickerMsg> {
        (**self).on_tick(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jittery_net() -> NetConfig {
        NetConfig {
            latency: simnet::net::LatencyModel::Uniform {
                min: SimDuration::from_micros(200),
                max: SimDuration::from_millis(8),
            },
            ..NetConfig::default()
        }
    }

    fn run(seed: u64, d: Discipline, state_level: bool) -> TradingResult {
        run_trading(
            seed,
            d,
            state_level,
            120,
            SimDuration::from_millis(4),
            SimDuration::from_millis(3),
            jittery_net(),
        )
    }

    #[test]
    fn causal_multicast_cannot_prevent_false_crossings() {
        // The paper's central claim for Fig. 4: the anomaly survives
        // causal ordering. Aggregate across seeds to avoid flakiness.
        let total: u64 = (0..5)
            .map(|s| run(s, Discipline::Causal, false).false_crossings)
            .sum();
        assert!(
            total > 0,
            "expected at least one false crossing under cbcast"
        );
    }

    #[test]
    fn total_order_cannot_prevent_false_crossings_either() {
        let total: u64 = (0..5)
            .map(|s| run(s, Discipline::Total { sequencer: 0 }, false).false_crossings)
            .sum();
        assert!(total > 0, "abcast should not fix a semantic constraint");
    }

    #[test]
    fn dependency_fields_eliminate_false_crossings() {
        for seed in 0..5 {
            let r = run(seed, Discipline::Causal, true);
            assert_eq!(r.false_crossings, 0, "seed {seed}");
        }
    }

    #[test]
    fn state_level_fix_works_even_on_fifo_transport() {
        // The fix needs no ordered multicast at all.
        for seed in 0..3 {
            let r = run(seed, Discipline::Fifo, true);
            assert_eq!(r.false_crossings, 0, "seed {seed}");
            assert!(r.displayed > 0);
        }
    }

    #[test]
    fn monitor_sees_prices() {
        let r = run(1, Discipline::Causal, false);
        // 120 option updates + ~120 theo updates.
        assert!(r.displayed >= 200, "displayed {}", r.displayed);
        assert!(r.net_sent > 0);
    }

    #[test]
    fn trading_floor_group_cost_is_prohibitive() {
        // 300k instruments, 40-member groups, 2 outstanding 256B msgs.
        let (groups, bytes) = catocs_trading_floor_cost(300_000, 40, 2, 256);
        assert_eq!(groups, 300_000);
        // ~250 MB of pure ordering state per workstation.
        assert!(bytes > 200_000_000, "{bytes}");
        // The state-level dependency utilities carry one (id, version)
        // pair per instrument instead: ~16 bytes each.
        let state_level = 300_000 * 16;
        assert!(bytes / state_level > 20);
    }

    #[test]
    fn suppression_only_in_state_level_mode() {
        let r = run(2, Discipline::Causal, false);
        assert_eq!(r.suppressed_stale, 0);
    }
}
