//! The Netnews example — §4.1.
//!
//! Readers receive inquiries and responses over an unordered flood; a
//! response can arrive before its inquiry. The paper's state-level fix is
//! the `References` field plus a local news database: the
//! [`OrderPreservingCache`] presents a response only after its inquiry,
//! notes missing articles, and lets the user display out-of-order
//! responses anyway.
//!
//! The CATOCS alternative the paper rejects — one causal group per
//! inquiry — is modeled analytically by [`catocs_group_cost`], following
//! §4.1's accounting: "The amount of state maintained by the
//! communication system is proportional to the number of causal groups as
//! well as the amount of traffic that is outstanding."

use clocks::versions::ObjectId;
use rand::Rng;
use simnet::net::NetConfig;
use simnet::process::{Ctx, Process, ProcessId, TimerId};
use simnet::sim::SimBuilder;
use simnet::time::{SimDuration, SimTime};
use statelevel::cache::OrderPreservingCache;

/// A news article.
#[derive(Clone, Debug)]
pub struct Article {
    /// Globally unique id.
    pub id: u64,
    /// The inquiry this responds to (the `References` field).
    pub reference: Option<u64>,
    /// Author node.
    pub author: usize,
}

/// One Usenet node: posts inquiries, responds to others, reads all.
pub struct NewsNode {
    me: usize,
    n: usize,
    inquiries_to_post: u32,
    response_probability: f64,
    next_local_id: u64,
    /// The local news database.
    pub cache: OrderPreservingCache<Article>,
    /// Responses that arrived before their inquiry.
    pub out_of_order_arrivals: u64,
    /// Articles presented, in order.
    pub presented: Vec<u64>,
}

impl NewsNode {
    /// Creates node `me` of `n`, which will post `inquiries_to_post`
    /// inquiries and respond to others' inquiries with the given
    /// probability.
    pub fn new(me: usize, n: usize, inquiries_to_post: u32, response_probability: f64) -> Self {
        NewsNode {
            me,
            n,
            inquiries_to_post,
            response_probability,
            next_local_id: 0,
            cache: OrderPreservingCache::new(),
            out_of_order_arrivals: 0,
            presented: Vec::new(),
        }
    }

    fn fresh_id(&mut self) -> u64 {
        self.next_local_id += 1;
        (self.me as u64) << 32 | self.next_local_id
    }

    fn flood(&self, ctx: &mut Ctx<'_, Article>, a: &Article) {
        for k in 0..self.n {
            if k != self.me {
                ctx.send(ProcessId(k), a.clone());
            }
        }
    }

    fn ingest(&mut self, article: Article) {
        let id = article.id;
        let reference = article.reference;
        if let Some(r) = reference {
            if !self.cache.is_presented(ObjectId(r)) && self.cache.get(ObjectId(r)).is_none() {
                self.out_of_order_arrivals += 1;
            }
        }
        let newly = self
            .cache
            .insert(ObjectId(id), reference.map(ObjectId), article);
        for p in newly {
            self.presented.push(p.0);
        }
    }
}

const POST_TICK: TimerId = TimerId(0);

impl Process<Article> for NewsNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Article>) {
        ctx.set_timer(POST_TICK, SimDuration::from_millis(10 + self.me as u64));
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Article>, _t: TimerId) {
        if self.inquiries_to_post > 0 {
            self.inquiries_to_post -= 1;
            let article = Article {
                id: self.fresh_id(),
                reference: None,
                author: self.me,
            };
            self.ingest(article.clone());
            self.flood(ctx, &article);
            ctx.set_timer(POST_TICK, SimDuration::from_millis(15));
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Article>, _from: ProcessId, msg: Article) {
        let respond = msg.reference.is_none() && ctx.rng().gen_bool(self.response_probability);
        let inquiry_id = msg.id;
        self.ingest(msg);
        if respond {
            let article = Article {
                id: self.fresh_id(),
                reference: Some(inquiry_id),
                author: self.me,
            };
            self.ingest(article.clone());
            self.flood(ctx, &article);
        }
    }
}

/// Results of one Netnews run.
#[derive(Clone, Debug, Default)]
pub struct NetnewsResult {
    /// Total articles in the system.
    pub articles: usize,
    /// Responses that arrived before their inquiry, summed over readers.
    pub out_of_order_arrivals: u64,
    /// Articles still unpresentable at the end (lost dependencies).
    pub still_pending: usize,
    /// Reader-side cache state: total cached items across readers (the
    /// state-level cost — proportional to articles of interest).
    pub cache_items: usize,
    /// Every presented sequence respected inquiry-before-response.
    pub order_respected: bool,
}

/// Runs the Netnews flood.
pub fn run_netnews(
    seed: u64,
    nodes: usize,
    inquiries_per_node: u32,
    response_probability: f64,
    net: NetConfig,
) -> NetnewsResult {
    let mut sim = SimBuilder::new(seed).net(net).build::<Article>();
    for me in 0..nodes {
        sim.add_process(NewsNode::new(
            me,
            nodes,
            inquiries_per_node,
            response_probability,
        ));
    }
    sim.run_until(SimTime::from_secs(10));
    let mut r = NetnewsResult {
        order_respected: true,
        ..Default::default()
    };
    let mut all_articles = std::collections::BTreeSet::new();
    for p in sim.all_processes() {
        let node: &NewsNode = sim.process(p).expect("news node");
        r.out_of_order_arrivals += node.out_of_order_arrivals;
        r.still_pending += node.cache.pending().len();
        r.cache_items += node.cache.len();
        for id in &node.presented {
            all_articles.insert(*id);
        }
        // Check inquiry-before-response in this reader's presentation.
        let mut seen = std::collections::BTreeSet::new();
        for &id in &node.presented {
            if let Some(a) = node.cache.get(ObjectId(id)) {
                if let Some(r2) = a.reference {
                    if !seen.contains(&r2) {
                        r.order_respected = false;
                    }
                }
            }
            seen.insert(id);
        }
    }
    r.articles = all_articles.len();
    r
}

/// §4.1's analytic cost of the CATOCS alternative: one causal group per
/// inquiry. Returns `(groups, comm_state_bytes)` where the per-group
/// communication state is one vector clock (8 bytes × members) per member
/// plus buffered outstanding traffic.
pub fn catocs_group_cost(
    inquiries: usize,
    members: usize,
    outstanding_msgs_per_group: usize,
    msg_bytes: usize,
) -> (usize, usize) {
    let groups = inquiries;
    let clock_state = groups * members * (8 * members);
    let buffer_state = groups * outstanding_msgs_per_group * msg_bytes * members;
    (groups, clock_state + buffer_state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::net::LatencyModel;

    fn jittery() -> NetConfig {
        NetConfig {
            latency: LatencyModel::Uniform {
                min: SimDuration::from_micros(200),
                max: SimDuration::from_millis(25),
            },
            ..NetConfig::default()
        }
    }

    #[test]
    fn responses_can_arrive_before_inquiries() {
        let mut total = 0;
        for seed in 0..5 {
            let r = run_netnews(seed, 6, 3, 0.4, jittery());
            total += r.out_of_order_arrivals;
        }
        assert!(total > 0, "the Usenet misordering should occur");
    }

    #[test]
    fn cache_always_presents_in_reference_order() {
        for seed in 0..5 {
            let r = run_netnews(seed, 6, 3, 0.4, jittery());
            assert!(r.order_respected, "seed {seed}");
        }
    }

    #[test]
    fn lossless_run_presents_everything() {
        let r = run_netnews(1, 5, 2, 0.3, jittery());
        assert_eq!(r.still_pending, 0, "no lost articles → nothing pending");
        assert!(r.articles >= 10);
    }

    #[test]
    fn lossy_run_leaves_noted_gaps() {
        // With loss and no retransmission some dependencies go missing —
        // the cache notes them rather than wedging the reader.
        let net = NetConfig {
            drop_probability: 0.25,
            ..jittery()
        };
        let mut pending = 0;
        for seed in 0..5 {
            pending += run_netnews(seed, 6, 3, 0.5, net.clone()).still_pending;
        }
        assert!(pending > 0, "expected missing articles under loss");
    }

    #[test]
    fn catocs_group_cost_explodes_with_inquiries() {
        let (g1, s1) = catocs_group_cost(1_000, 50, 4, 512);
        let (g2, s2) = catocs_group_cost(100_000, 50, 4, 512);
        assert_eq!(g1, 1_000);
        assert_eq!(g2, 100_000);
        assert!(s2 / s1 == 100, "state grows linearly with group count");
        // Contrast: the reader cache is proportional to articles cached,
        // orders of magnitude smaller than per-inquiry group state.
        assert!(s1 > 1_000 * 512);
    }
}
