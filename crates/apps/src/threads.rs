//! The multi-threaded server hidden channel — §3.1's second example.
//!
//! "It is possible that thread 1 updates the shared memory data
//! structures first, but is delayed by scheduling in sending its
//! multicast message so that the second update by thread 2 is actually
//! multicast first and therefore is delivered by CATOCS out of order with
//! respect to the actual shared state update and the true causal
//! dependencies."
//!
//! The model: one server process hosts two logical threads sharing a
//! counter. Each thread increments the counter (the shared-memory event)
//! and then multicasts the new value — but the multicast is delayed by a
//! random scheduling lag. Because both multicasts originate from the
//! *same* process endpoint, cbcast stamps them in send order, which may
//! invert the true shared-state order. The observer's naive state is then
//! wrong; the shared-memory version number carried in the payload fixes
//! it.
//!
//! (Forcing the threads to communicate through the message system instead
//! would fix the inversion but, as the paper notes, "would impractically
//! reduce the performance of multi-threaded servers".)

use catocs::cbcast::CbcastEndpoint;
use catocs::group::GroupConfig;
use catocs::wire::{Dest, Out, Wire};
use clocks::versions::{ObjectId, Version, VersionedTag};
use rand::Rng;
use simnet::net::NetConfig;
use simnet::process::{Ctx, Process, ProcessId, TimerId};
use simnet::sim::SimBuilder;
use simnet::time::{SimDuration, SimTime};
use statelevel::versioned::VersionedStore;

/// The shared counter object.
pub const COUNTER: ObjectId = ObjectId(7);

/// A multicast update: the counter's new value and its shared-memory
/// version (the state-level clock the fix relies on).
#[derive(Clone, Debug)]
pub struct CounterUpdate {
    /// Which logical thread produced it.
    pub thread: usize,
    /// The value written.
    pub value: i64,
    /// The shared-memory version at the write.
    pub version: u64,
}

const TICK: TimerId = TimerId(0);
/// Thread i's multicast fires as timer 10+i after its scheduling lag.
const THREAD_SEND_BASE: u64 = 10;

/// The server process hosting two logical threads.
pub struct ThreadedServer {
    endpoint: CbcastEndpoint<CounterUpdate>,
    /// The shared data structure (and its version counter).
    counter: i64,
    version: u64,
    /// Updates written to shared memory but not yet multicast (indexed
    /// by thread): the scheduling gap of the paper.
    staged: [Option<CounterUpdate>; 2],
    max_lag: SimDuration,
}

impl ThreadedServer {
    fn route(&self, ctx: &mut Ctx<'_, Wire<CounterUpdate>>, out: Vec<Out<CounterUpdate>>) {
        for (dest, w) in out {
            match dest {
                Dest::All => ctx.send(ProcessId(1), w),
                Dest::One(_) => ctx.send(ProcessId(1), w),
            }
        }
    }
}

impl Process<Wire<CounterUpdate>> for ThreadedServer {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Wire<CounterUpdate>>) {
        ctx.set_timer(TICK, SimDuration::from_millis(5));
        // Both threads update shared memory "now", in thread order:
        // thread 0 writes first, thread 1 second. The multicasts are
        // issued after independent random scheduling lags.
        for thread in 0..2usize {
            self.version += 1;
            self.counter += 100 + thread as i64;
            self.staged[thread] = Some(CounterUpdate {
                thread,
                value: self.counter,
                version: self.version,
            });
            let lag = SimDuration::from_micros(ctx.rng().gen_range(0..=self.max_lag.as_micros()));
            ctx.set_timer(TimerId(THREAD_SEND_BASE + thread as u64), lag);
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, Wire<CounterUpdate>>,
        _f: ProcessId,
        m: Wire<CounterUpdate>,
    ) {
        let (_d, out) = self.endpoint.on_wire(ctx.now(), m);
        self.route(ctx, out);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Wire<CounterUpdate>>, t: TimerId) {
        match t {
            TICK => {
                let out = self.endpoint.on_tick(ctx.now());
                self.route(ctx, out);
                ctx.set_timer(TICK, SimDuration::from_millis(5));
            }
            TimerId(x) if x >= THREAD_SEND_BASE => {
                let thread = (x - THREAD_SEND_BASE) as usize;
                if let Some(update) = self.staged[thread].take() {
                    let (_d, out) = self.endpoint.multicast(ctx.now(), update);
                    self.route(ctx, out);
                }
            }
            _ => {}
        }
    }
}

/// The observing group member.
pub struct ThreadObserver {
    endpoint: CbcastEndpoint<CounterUpdate>,
    /// Naive: last delivered value wins.
    pub naive_value: Option<i64>,
    /// Version-checked state.
    pub store: VersionedStore<i64>,
    /// Deliveries as (version, value).
    pub delivered: Vec<(u64, i64)>,
}

impl Process<Wire<CounterUpdate>> for ThreadObserver {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Wire<CounterUpdate>>) {
        ctx.set_timer(TICK, SimDuration::from_millis(5));
    }

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, Wire<CounterUpdate>>,
        _f: ProcessId,
        m: Wire<CounterUpdate>,
    ) {
        let (dels, out) = self.endpoint.on_wire(ctx.now(), m);
        for d in dels {
            self.naive_value = Some(d.payload.value);
            self.store.apply_remote(
                VersionedTag::new(COUNTER, Version(d.payload.version)),
                d.payload.value,
            );
            self.delivered.push((d.payload.version, d.payload.value));
        }
        for (_, w) in out {
            ctx.send(ProcessId(0), w);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Wire<CounterUpdate>>, _t: TimerId) {
        let out = self.endpoint.on_tick(ctx.now());
        for (_, w) in out {
            ctx.send(ProcessId(0), w);
        }
        ctx.set_timer(TICK, SimDuration::from_millis(5));
    }
}

/// Results of one run.
#[derive(Clone, Debug)]
pub struct ThreadsResult {
    /// The multicasts left the server in inverted order.
    pub inverted: bool,
    /// Naive observer's final value.
    pub naive_value: Option<i64>,
    /// Version-checked final value.
    pub versioned_value: Option<i64>,
    /// The true final counter value.
    pub truth: i64,
}

/// Runs the two-thread scenario once. `max_lag` is the scheduling delay
/// bound between a shared-memory write and its multicast.
pub fn run_threads(seed: u64, max_lag: SimDuration, net: NetConfig) -> ThreadsResult {
    let mut sim = SimBuilder::new(seed)
        .net(net)
        .build::<Wire<CounterUpdate>>();
    let cfg = GroupConfig::default();
    sim.add_process(ThreadedServer {
        endpoint: CbcastEndpoint::new(0, 2, cfg.clone()),
        counter: 0,
        version: 0,
        staged: [None, None],
        max_lag,
    });
    sim.add_process(ThreadObserver {
        endpoint: CbcastEndpoint::new(1, 2, cfg),
        naive_value: None,
        store: VersionedStore::new(),
        delivered: Vec::new(),
    });
    sim.run_until(SimTime::from_secs(2));
    // Truth: thread 0 wrote 100, thread 1 then wrote 201 → counter 201.
    let truth = 201;
    let obs: &ThreadObserver = sim.process(ProcessId(1)).expect("observer");
    let inverted = obs.delivered.first().map(|&(v, _)| v != 1).unwrap_or(false);
    ThreadsResult {
        inverted,
        naive_value: obs.naive_value,
        versioned_value: obs.store.get(COUNTER).map(|r| r.value),
        truth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduling_lag_inverts_the_multicast_order() {
        // cbcast stamps in send order, so the inversion happens *inside*
        // the endpoint: delivery is causal yet semantically wrong.
        let mut inverted = 0;
        let mut naive_wrong = 0;
        for seed in 0..40 {
            let r = run_threads(
                seed,
                SimDuration::from_millis(10),
                NetConfig::ideal(SimDuration::from_millis(1)),
            );
            if r.inverted {
                inverted += 1;
                if r.naive_value != Some(r.truth) {
                    naive_wrong += 1;
                }
            }
        }
        assert!(inverted > 0, "scheduling must invert some runs");
        assert!(naive_wrong > 0, "inversion corrupts the naive observer");
    }

    #[test]
    fn shared_memory_version_fixes_the_state() {
        for seed in 0..40 {
            let r = run_threads(
                seed,
                SimDuration::from_millis(10),
                NetConfig::ideal(SimDuration::from_millis(1)),
            );
            assert_eq!(
                r.versioned_value,
                Some(r.truth),
                "seed {seed}: version check must restore the true value"
            );
        }
    }

    #[test]
    fn no_lag_no_inversion() {
        let r = run_threads(
            1,
            SimDuration::ZERO,
            NetConfig::ideal(SimDuration::from_millis(1)),
        );
        assert!(!r.inverted);
        assert_eq!(r.naive_value, Some(r.truth));
    }
}
