//! RPC deadlock detection — appendix 9.2.
//!
//! Two detectors over the same single-threaded RPC servers:
//!
//! - **van Renesse (CATOCS)**: "each process causally multicasts each RPC
//!   invocation and each RPC return" to a group of all servers plus the
//!   monitor. The monitor builds a process-level wait-for graph from the
//!   delivered events. Simple — and expensive: 2 multicasts per RPC, each
//!   fanning out to the whole group.
//! - **State-level (the paper's alternative)**: RPCs travel point to
//!   point; each server periodically sends its *augmented* wait-for edges
//!   (instance-level, `A15 → B37`) with a conventional sequence number to
//!   the monitor, which merges them in any order. Instance-level nodes
//!   also make the detector correct for multi-threaded servers.

use catocs::endpoint::Discipline;
use catocs::group::GroupConfig;
use catocs::harness::{spawn_group, GroupApp, GroupCtx, GroupNode};
use catocs::wire::{Delivery, Wire};
use simnet::net::NetConfig;
use simnet::process::{Ctx, Process, ProcessId, TimerId};
use simnet::sim::SimBuilder;
use simnet::time::{SimDuration, SimTime};
use statelevel::predicate::WaitForGraph;
use std::collections::VecDeque;
use txn::deadlock::{DeadlockMonitor, WaitForReport};
use txn::lock::TxId;

/// An RPC instance: the `seq`-th call handled (or issued) by `proc`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Inst {
    /// The process.
    pub proc: usize,
    /// Locally unique instance number.
    pub seq: u32,
}

impl Inst {
    /// Packs the instance into a `TxId` for the shared monitor machinery.
    pub fn as_txid(self) -> TxId {
        TxId(((self.proc as u64) << 32) | self.seq as u64)
    }
}

/// A call chain: the initiating server calls `chain[0]`, which calls
/// `chain[1]`, and so on. A chain that revisits a blocked server
/// deadlocks.
pub type Chain = Vec<usize>;

// ---------------------------------------------------------------------
// Shared single-threaded server core.
// ---------------------------------------------------------------------

/// A running call at a server.
#[derive(Clone, Debug)]
struct Current {
    inst: Inst,
    /// Who to answer when done.
    caller: Option<Inst>,
    /// The child instance-less call we are blocked on (target proc).
    waiting_on: Option<usize>,
    /// Remaining chain after the child returns (always empty here: the
    /// chain is forwarded to the child).
    _rest: Chain,
}

/// The server core: queueing, blocking, wait-for bookkeeping.
#[derive(Debug, Default)]
pub struct ServerCore {
    me: usize,
    next_seq: u32,
    current: Option<Current>,
    queue: VecDeque<(Option<Inst>, Chain)>,
    /// Instances of queued callers (for wait-for edges).
    queued_callers: Vec<Inst>,
    /// Completed calls.
    pub completed: u32,
}

/// What the core wants sent after an event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RpcAction {
    /// Invoke `target` with the remaining chain, on behalf of `caller`.
    Invoke {
        /// The calling instance (this server's current call).
        caller: Inst,
        /// The server to call.
        target: usize,
        /// The chain the target should continue with.
        chain: Chain,
    },
    /// Return to `to` (an instance on another server).
    Return {
        /// The instance being answered.
        to: Inst,
    },
}

impl ServerCore {
    /// Creates the core for server `me`.
    pub fn new(me: usize) -> Self {
        ServerCore {
            me,
            ..Default::default()
        }
    }

    /// Handles an incoming invocation; returns actions to perform.
    pub fn on_invoke(&mut self, caller: Option<Inst>, chain: Chain) -> Vec<RpcAction> {
        if self.current.is_some() {
            self.queue.push_back((caller, chain));
            if let Some(c) = caller {
                self.queued_callers.push(c);
            }
            return Vec::new();
        }
        self.start(caller, chain)
    }

    fn start(&mut self, caller: Option<Inst>, chain: Chain) -> Vec<RpcAction> {
        self.next_seq += 1;
        let inst = Inst {
            proc: self.me,
            seq: self.next_seq,
        };
        if chain.is_empty() {
            // Leaf call: return immediately.
            self.completed += 1;
            let mut actions = Vec::new();
            if let Some(c) = caller {
                actions.push(RpcAction::Return { to: c });
            }
            // Serve the next queued request.
            actions.extend(self.serve_next());
            actions
        } else {
            let target = chain[0];
            let rest = chain[1..].to_vec();
            self.current = Some(Current {
                inst,
                caller,
                waiting_on: Some(target),
                _rest: Vec::new(),
            });
            vec![RpcAction::Invoke {
                caller: inst,
                target,
                chain: rest,
            }]
        }
    }

    /// Handles a return addressed to instance `to`.
    pub fn on_return(&mut self, to: Inst) -> Vec<RpcAction> {
        let Some(cur) = &self.current else {
            return Vec::new();
        };
        if cur.inst != to {
            return Vec::new();
        }
        let cur = self.current.take().expect("current");
        self.completed += 1;
        let mut actions = Vec::new();
        if let Some(c) = cur.caller {
            actions.push(RpcAction::Return { to: c });
        }
        actions.extend(self.serve_next());
        actions
    }

    fn serve_next(&mut self) -> Vec<RpcAction> {
        if self.current.is_some() {
            return Vec::new();
        }
        if let Some((caller, chain)) = self.queue.pop_front() {
            if let Some(c) = caller {
                self.queued_callers.retain(|&q| q != c);
            }
            self.start(caller, chain)
        } else {
            Vec::new()
        }
    }

    /// The current instance-level wait-for edges at this server:
    /// queued-caller → current, and current → (child's *process*, which
    /// the report encodes as that process's next instance — the monitor
    /// matches on process for the blocked edge).
    pub fn wait_edges(&self) -> Vec<(Inst, Inst)> {
        let mut edges = Vec::new();
        if let Some(cur) = &self.current {
            for &q in &self.queued_callers {
                edges.push((q, cur.inst));
            }
            if let Some(target) = cur.waiting_on {
                // We don't know the child's instance number; process-level
                // wildcard instance 0 is used and resolved by the monitor.
                edges.push((
                    cur.inst,
                    Inst {
                        proc: target,
                        seq: 0,
                    },
                ));
            }
        }
        edges
    }

    /// Whether the server is blocked on an outstanding call.
    pub fn is_blocked(&self) -> bool {
        self.current.is_some()
    }
}

// ---------------------------------------------------------------------
// Mode A: van Renesse — every RPC event causally multicast.
// ---------------------------------------------------------------------

/// The multicast payload of mode A.
#[derive(Clone, Debug)]
pub enum RpcOp {
    /// An invocation (delivered to everyone; only `target` acts).
    Invoke {
        /// Calling instance, if not a root call.
        caller: Option<Inst>,
        /// The callee.
        target: usize,
        /// Chain for the callee to continue.
        chain: Chain,
    },
    /// A return (delivered to everyone; only `to.proc` acts).
    Return {
        /// The instance being answered.
        to: Inst,
        /// The process that answered.
        from_proc: usize,
    },
}

/// A mode-A group member: server or monitor.
pub enum VanRenesseRole {
    /// An RPC server with its scripted root chains.
    Server {
        /// The server core.
        core: ServerCore,
        /// Chains to initiate, one per app tick.
        scripts: Vec<Chain>,
    },
    /// The monitoring process.
    Monitor(VrMonitor),
}

/// The mode-A monitor: process-level wait-for graph from delivered
/// events.
#[derive(Default)]
pub struct VrMonitor {
    graph: WaitForGraph<usize>,
    /// When the first deadlock was detected.
    pub detected_at: Option<SimTime>,
    /// The deadlocked processes.
    pub cycle: Vec<usize>,
}

impl VanRenesseRole {
    fn actions_to_ops(me: usize, actions: Vec<RpcAction>) -> Vec<RpcOp> {
        actions
            .into_iter()
            .map(|a| match a {
                RpcAction::Invoke {
                    caller,
                    target,
                    chain,
                } => RpcOp::Invoke {
                    caller: Some(caller),
                    target,
                    chain,
                },
                RpcAction::Return { to } => RpcOp::Return { to, from_proc: me },
            })
            .collect()
    }

    /// Access the monitor, if this role is one.
    pub fn as_monitor(&self) -> Option<&VrMonitor> {
        match self {
            VanRenesseRole::Monitor(m) => Some(m),
            _ => None,
        }
    }
}

impl GroupApp<RpcOp> for VanRenesseRole {
    fn on_tick(&mut self, ctx: &mut GroupCtx<'_>) -> Vec<RpcOp> {
        match self {
            VanRenesseRole::Server { scripts, .. } => {
                if let Some(chain) = scripts.pop() {
                    let _ = ctx;
                    vec![RpcOp::Invoke {
                        caller: None,
                        target: chain[0],
                        chain: chain[1..].to_vec(),
                    }]
                } else {
                    Vec::new()
                }
            }
            VanRenesseRole::Monitor(_) => Vec::new(),
        }
    }

    fn on_deliver(&mut self, ctx: &mut GroupCtx<'_>, d: &Delivery<RpcOp>) -> Vec<RpcOp> {
        match self {
            VanRenesseRole::Server { core, .. } => match &d.payload {
                RpcOp::Invoke {
                    caller,
                    target,
                    chain,
                } if *target == core.me => {
                    let actions = core.on_invoke(*caller, chain.clone());
                    Self::actions_to_ops(core.me, actions)
                }
                RpcOp::Return { to, .. } if to.proc == core.me => {
                    let actions = core.on_return(*to);
                    Self::actions_to_ops(core.me, actions)
                }
                _ => Vec::new(),
            },
            VanRenesseRole::Monitor(m) => {
                match &d.payload {
                    RpcOp::Invoke { caller, target, .. } => {
                        // The caller process (or the multicast sender for
                        // root calls) now waits on the target process.
                        let from = caller.map(|c| c.proc).unwrap_or(d.id.sender);
                        m.graph.add_wait(from, *target);
                    }
                    RpcOp::Return { to, from_proc } => {
                        m.graph.remove_wait(to.proc, *from_proc);
                    }
                }
                if m.detected_at.is_none() {
                    if let Some(cycle) = m.graph.find_cycle() {
                        m.detected_at = Some(ctx.now);
                        m.cycle = cycle;
                    }
                }
                Vec::new()
            }
        }
    }
}

/// Results of a detection run (either mode).
#[derive(Clone, Debug)]
pub struct DetectionResult {
    /// Time at which the monitor first saw the deadlock.
    pub detected_at: Option<SimTime>,
    /// Total messages on the wire.
    pub net_sent: u64,
    /// RPCs completed despite the deadlock.
    pub completed: u32,
}

/// Runs mode A: `servers` RPC servers plus one monitor, all in a causal
/// group; `scripts[i]` are the chains server `i` initiates. The classic
/// deadlock script is `vec![vec![1, 0]]` for server 0.
pub fn run_van_renesse(
    seed: u64,
    servers: usize,
    scripts: Vec<Vec<Chain>>,
    net: NetConfig,
) -> DetectionResult {
    let mut sim = SimBuilder::new(seed).net(net).build::<Wire<RpcOp>>();
    let members = spawn_group(
        &mut sim,
        servers + 1,
        Discipline::Causal,
        GroupConfig::default(),
        Some(SimDuration::from_millis(10)),
        |me| {
            if me < servers {
                VanRenesseRole::Server {
                    core: ServerCore::new(me),
                    scripts: scripts.get(me).cloned().unwrap_or_default(),
                }
            } else {
                VanRenesseRole::Monitor(VrMonitor::default())
            }
        },
    );
    sim.run_until(SimTime::from_secs(5));
    let node = sim
        .process::<GroupNode<RpcOp, VanRenesseRole>>(members[servers])
        .expect("monitor");
    let monitor = node.app().as_monitor().expect("monitor role");
    let mut completed = 0;
    for &m in &members[..servers] {
        let n = sim
            .process::<GroupNode<RpcOp, VanRenesseRole>>(m)
            .expect("server");
        if let VanRenesseRole::Server { core, .. } = n.app() {
            completed += core.completed;
        }
    }
    DetectionResult {
        detected_at: monitor.detected_at,
        net_sent: sim.metrics().counter("net.sent"),
        completed,
    }
}

// ---------------------------------------------------------------------
// Mode B: state-level — direct RPCs + periodic wait-for reports.
// ---------------------------------------------------------------------

/// Messages of mode B.
#[derive(Clone, Debug)]
pub enum StateMsg {
    /// Direct invocation.
    Invoke {
        /// Calling instance.
        caller: Option<Inst>,
        /// Chain for the callee.
        chain: Chain,
    },
    /// Direct return.
    Return {
        /// The instance being answered.
        to: Inst,
    },
    /// Periodic wait-for report to the monitor.
    Report(WaitForReport),
}

/// A mode-B server process.
pub struct StateServer {
    core: ServerCore,
    scripts: Vec<Chain>,
    monitor: ProcessId,
    report_seq: u64,
    report_every: SimDuration,
}

const SCRIPT_TICK: TimerId = TimerId(0);
const REPORT_TICK: TimerId = TimerId(1);

impl StateServer {
    fn perform(&self, ctx: &mut Ctx<'_, StateMsg>, actions: Vec<RpcAction>) {
        for a in actions {
            match a {
                RpcAction::Invoke {
                    caller,
                    target,
                    chain,
                } => ctx.send(
                    ProcessId(target),
                    StateMsg::Invoke {
                        caller: Some(caller),
                        chain,
                    },
                ),
                RpcAction::Return { to } => ctx.send(ProcessId(to.proc), StateMsg::Return { to }),
            }
        }
    }
}

impl Process<StateMsg> for StateServer {
    fn on_start(&mut self, ctx: &mut Ctx<'_, StateMsg>) {
        ctx.set_timer(SCRIPT_TICK, SimDuration::from_millis(10));
        ctx.set_timer(REPORT_TICK, self.report_every);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, StateMsg>, _from: ProcessId, msg: StateMsg) {
        let actions = match msg {
            StateMsg::Invoke { caller, chain } => self.core.on_invoke(caller, chain),
            StateMsg::Return { to } => self.core.on_return(to),
            StateMsg::Report(_) => Vec::new(),
        };
        self.perform(ctx, actions);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, StateMsg>, t: TimerId) {
        match t {
            SCRIPT_TICK => {
                if let Some(chain) = self.scripts.pop() {
                    let actions = self.core.on_invoke(None, chain);
                    self.perform(ctx, actions);
                    ctx.set_timer(SCRIPT_TICK, SimDuration::from_millis(10));
                }
            }
            REPORT_TICK => {
                self.report_seq += 1;
                let edges: Vec<(TxId, TxId)> = self
                    .core
                    .wait_edges()
                    .into_iter()
                    .map(|(a, b)| (a.as_txid(), b.as_txid()))
                    .collect();
                ctx.send(
                    self.monitor,
                    StateMsg::Report(WaitForReport {
                        from: self.core.me,
                        seq: self.report_seq,
                        edges,
                    }),
                );
                ctx.set_timer(REPORT_TICK, self.report_every);
            }
            _ => {}
        }
    }
}

/// The mode-B monitor process.
pub struct StateMonitor {
    monitor: DeadlockMonitor,
    /// When the first deadlock was detected.
    pub detected_at: Option<SimTime>,
}

impl Process<StateMsg> for StateMonitor {
    fn on_message(&mut self, ctx: &mut Ctx<'_, StateMsg>, _from: ProcessId, msg: StateMsg) {
        if let StateMsg::Report(r) = msg {
            // Resolve wildcard instances (seq 0): a wait on (proc, 0)
            // matches any instance at that process; rewrite to the
            // current reported instance if one exists.
            self.monitor.ingest(normalize(r));
            if self.detected_at.is_none() && self.monitor.detect().is_some() {
                self.detected_at = Some(ctx.now());
            }
        }
    }
}

/// Rewrites wildcard child instances in a report: an edge to `(p, 0)`
/// becomes an edge to the instance that `p` itself reports as current —
/// conservatively, to every instance `p` mentions as a source. For the
/// single-threaded servers here, matching on the process is exact.
fn normalize(r: WaitForReport) -> WaitForReport {
    // Process-level collapse: map every instance to (proc << 32) | 0 so
    // edges meet at the process. Sound for single-threaded servers; the
    // instance-level detail is preserved in `DeadlockMonitor` tests.
    WaitForReport {
        from: r.from,
        seq: r.seq,
        edges: r
            .edges
            .into_iter()
            .map(|(a, b)| {
                (
                    TxId(a.0 & 0xFFFF_FFFF_0000_0000),
                    TxId(b.0 & 0xFFFF_FFFF_0000_0000),
                )
            })
            .collect(),
    }
}

/// Runs mode B with the same scripted workload.
pub fn run_state_detector(
    seed: u64,
    servers: usize,
    scripts: Vec<Vec<Chain>>,
    report_every: SimDuration,
    net: NetConfig,
) -> DetectionResult {
    let mut sim = SimBuilder::new(seed).net(net).build::<StateMsg>();
    let monitor_pid = ProcessId(servers);
    for me in 0..servers {
        sim.add_process(StateServer {
            core: ServerCore::new(me),
            scripts: scripts.get(me).cloned().unwrap_or_default(),
            monitor: monitor_pid,
            report_seq: 0,
            report_every,
        });
    }
    sim.add_process(StateMonitor {
        monitor: DeadlockMonitor::new(),
        detected_at: None,
    });
    sim.run_until(SimTime::from_secs(5));
    let monitor: &StateMonitor = sim.process(monitor_pid).expect("monitor");
    let mut completed = 0;
    for p in 0..servers {
        let s: &StateServer = sim.process(ProcessId(p)).expect("server");
        completed += s.core.completed;
    }
    DetectionResult {
        detected_at: monitor.detected_at,
        net_sent: sim.metrics().counter("net.sent"),
        completed,
    }
}

/// The canonical deadlock workload: server 0 calls 1 which calls back
/// into 0; servers 2.. run innocuous chains for background traffic.
pub fn deadlock_scripts(servers: usize, background_chains: usize) -> Vec<Vec<Chain>> {
    let mut scripts: Vec<Vec<Chain>> = vec![Vec::new(); servers];
    scripts[0].push(vec![1, 0]);
    for i in 0..background_chains {
        let from = 2 + (i % servers.saturating_sub(2).max(1));
        if from < servers {
            let to = (from + 1) % servers;
            if to != 0 && to != 1 {
                scripts[from].push(vec![to]);
            }
        }
    }
    scripts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> NetConfig {
        NetConfig::lossy_lan(0.0)
    }

    #[test]
    fn server_core_leaf_call_returns() {
        let mut core = ServerCore::new(0);
        let actions = core.on_invoke(Some(Inst { proc: 9, seq: 1 }), vec![]);
        assert_eq!(
            actions[0],
            RpcAction::Return {
                to: Inst { proc: 9, seq: 1 }
            }
        );
        assert_eq!(core.completed, 1);
        assert!(!core.is_blocked());
    }

    #[test]
    fn server_core_chain_blocks_and_unblocks() {
        let mut core = ServerCore::new(0);
        let actions = core.on_invoke(None, vec![1]);
        assert!(matches!(actions[0], RpcAction::Invoke { target: 1, .. }));
        assert!(core.is_blocked());
        let inst = match actions[0] {
            RpcAction::Invoke { caller, .. } => caller,
            _ => unreachable!(),
        };
        let actions = core.on_return(inst);
        assert!(actions.is_empty(), "root call has no caller");
        assert!(!core.is_blocked());
        assert_eq!(core.completed, 1);
    }

    #[test]
    fn server_core_queues_when_busy() {
        let mut core = ServerCore::new(0);
        core.on_invoke(None, vec![1]);
        let q = core.on_invoke(Some(Inst { proc: 2, seq: 5 }), vec![]);
        assert!(q.is_empty(), "queued, not served");
        let edges = core.wait_edges();
        assert_eq!(edges.len(), 2, "queued-caller edge + blocked-on edge");
    }

    #[test]
    fn van_renesse_detects_the_deadlock() {
        let r = run_van_renesse(1, 4, deadlock_scripts(4, 4), net());
        assert!(r.detected_at.is_some(), "deadlock must be detected");
    }

    #[test]
    fn state_detector_detects_the_deadlock() {
        let r = run_state_detector(
            1,
            4,
            deadlock_scripts(4, 4),
            SimDuration::from_millis(50),
            net(),
        );
        assert!(r.detected_at.is_some(), "deadlock must be detected");
    }

    #[test]
    fn state_detector_uses_far_fewer_messages() {
        // The paper: "the performance penalty of this algorithm appears
        // prohibitive" (van Renesse) vs periodic reports.
        let vr = run_van_renesse(1, 6, deadlock_scripts(6, 8), net());
        let st = run_state_detector(
            1,
            6,
            deadlock_scripts(6, 8),
            SimDuration::from_millis(50),
            net(),
        );
        assert!(
            st.net_sent < vr.net_sent,
            "state {} !< vr {}",
            st.net_sent,
            vr.net_sent
        );
    }

    #[test]
    fn no_deadlock_without_cycle() {
        let mut scripts: Vec<Vec<Chain>> = vec![Vec::new(); 4];
        scripts[0].push(vec![1]);
        scripts[2].push(vec![3]);
        let st = run_state_detector(2, 4, scripts.clone(), SimDuration::from_millis(50), net());
        assert!(st.detected_at.is_none(), "no false deadlocks");
        // Each chain completes at the leaf and at the root: 2 chains -> 4.
        assert_eq!(st.completed, 4);
        let vr = run_van_renesse(2, 4, scripts, net());
        assert!(vr.detected_at.is_none(), "no false deadlocks");
    }
}
