//! The drilling example — appendix 9.1.
//!
//! A factory cell must drill a set of holes across several driller
//! controllers; no hole may be drilled twice; failures leave holes to be
//! checked.
//!
//! Two implementations, compared by message traffic:
//!
//! - **CATOCS / distributed** (Birman's design): the hole list is
//!   broadcast once; every driller schedules independently; every
//!   completion is causally multicast to all drillers so their schedules
//!   stay consistent. Traffic: one multicast of D−1 messages per hole —
//!   `H·(D−1)` data messages, quadratic when work scales with drillers.
//! - **Central / state-level** (the paper's alternative): a central cell
//!   controller assigns holes and receives completions — `2·H` messages
//!   (+`2·H` to mirror state to a backup), linear regardless of D.

use catocs::endpoint::Discipline;
use catocs::group::GroupConfig;
use catocs::harness::{spawn_group, GroupApp, GroupCtx, GroupNode};
use catocs::wire::{Delivery, Wire};
use simnet::net::NetConfig;
use simnet::process::{Ctx, Process, ProcessId, TimerId};
use simnet::sim::SimBuilder;
use simnet::time::{SimDuration, SimTime};
use std::collections::BTreeSet;

// ---------------------------------------------------------------------
// Distributed (CATOCS) implementation.
// ---------------------------------------------------------------------

/// Group payload: a completed hole.
#[derive(Clone, Debug)]
pub struct HoleDone {
    /// The hole index.
    pub hole: u32,
}

/// One driller controller in the distributed design: drills the holes
/// assigned to it by the (deterministic) shared schedule, multicasting
/// each completion.
pub struct DistributedDriller {
    me: usize,
    n: usize,
    holes_total: u32,
    /// Next of my holes to drill.
    cursor: u32,
    /// All completions seen (mine and peers').
    pub completed: BTreeSet<u32>,
    /// Holes I drilled.
    pub drilled_by_me: Vec<u32>,
}

impl DistributedDriller {
    fn my_next_hole(&self) -> Option<u32> {
        let mut h = self.cursor;
        while h < self.holes_total {
            if h as usize % self.n == self.me && !self.completed.contains(&h) {
                return Some(h);
            }
            h += 1;
        }
        None
    }
}

impl GroupApp<HoleDone> for DistributedDriller {
    fn on_tick(&mut self, _ctx: &mut GroupCtx<'_>) -> Vec<HoleDone> {
        // One hole per tick (the drill time).
        if let Some(h) = self.my_next_hole() {
            self.cursor = h + 1;
            self.completed.insert(h);
            self.drilled_by_me.push(h);
            vec![HoleDone { hole: h }]
        } else {
            Vec::new()
        }
    }

    fn on_deliver(&mut self, _ctx: &mut GroupCtx<'_>, d: &Delivery<HoleDone>) -> Vec<HoleDone> {
        self.completed.insert(d.payload.hole);
        Vec::new()
    }
}

/// Results of a distributed drilling run.
#[derive(Clone, Debug)]
pub struct DrillingResult {
    /// Total messages on the wire (data + protocol).
    pub net_sent: u64,
    /// Application data messages only.
    pub data_msgs: u64,
    /// Every hole drilled exactly once?
    pub each_hole_once: bool,
    /// Holes drilled in total.
    pub holes_drilled: usize,
    /// Simulated completion time.
    pub makespan: SimTime,
}

/// Runs the distributed (CATOCS) drilling design.
pub fn run_drilling_distributed(
    seed: u64,
    drillers: usize,
    holes: u32,
    net: NetConfig,
) -> DrillingResult {
    let mut sim = SimBuilder::new(seed).net(net).build::<Wire<HoleDone>>();
    let members = spawn_group(
        &mut sim,
        drillers,
        Discipline::Causal,
        GroupConfig::default(),
        Some(SimDuration::from_millis(20)),
        |me| DistributedDriller {
            me,
            n: drillers,
            holes_total: holes,
            cursor: 0,
            completed: BTreeSet::new(),
            drilled_by_me: Vec::new(),
        },
    );
    sim.run_until(SimTime::from_secs(30));
    let mut all: Vec<u32> = Vec::new();
    let mut data_msgs = 0;
    for &m in &members {
        let node = sim
            .process::<GroupNode<HoleDone, DistributedDriller>>(m)
            .expect("driller");
        all.extend(&node.app().drilled_by_me);
        data_msgs += node.stats().sent * (drillers as u64 - 1);
    }
    all.sort_unstable();
    let each_hole_once =
        all.len() == holes as usize && all.iter().enumerate().all(|(i, &h)| h == i as u32);
    DrillingResult {
        net_sent: sim.metrics().counter("net.sent"),
        data_msgs,
        each_hole_once,
        holes_drilled: all.len(),
        makespan: sim.now(),
    }
}

// ---------------------------------------------------------------------
// Central-controller (state-level) implementation.
// ---------------------------------------------------------------------

/// Messages of the central design.
#[derive(Clone, Debug)]
pub enum CellMsg {
    /// Controller → driller: drill this hole.
    Assign { hole: u32 },
    /// Driller → controller: done.
    Done { hole: u32, driller: usize },
    /// Controller → backup: state mirror.
    Mirror { hole: u32, state: HoleState },
    /// Controller → driller: nothing left.
    Idle,
}

/// Hole lifecycle in the controller's state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HoleState {
    /// Not yet assigned.
    Undrilled,
    /// Assigned to a driller.
    BeingDrilled(usize),
    /// Completed.
    Completed,
    /// Driller failed mid-hole: must be checked, never re-drilled.
    ToBeChecked,
}

/// The central cell controller.
pub struct CellController {
    drillers: Vec<ProcessId>,
    backup: Option<ProcessId>,
    /// Per-hole state — the replicated object of the appendix.
    pub holes: Vec<HoleState>,
    /// The final checklist of holes needing inspection.
    pub checklist: Vec<u32>,
    assigned: usize,
}

impl CellController {
    /// Creates a controller over the given drillers and optional backup.
    pub fn new(drillers: Vec<ProcessId>, backup: Option<ProcessId>, holes: u32) -> Self {
        CellController {
            drillers,
            backup,
            holes: vec![HoleState::Undrilled; holes as usize],
            checklist: Vec::new(),
            assigned: 0,
        }
    }

    fn next_hole(&mut self) -> Option<u32> {
        let h = self.holes.iter().position(|s| *s == HoleState::Undrilled)?;
        Some(h as u32)
    }

    fn assign_to(&mut self, ctx: &mut Ctx<'_, CellMsg>, driller_idx: usize) {
        if let Some(h) = self.next_hole() {
            self.holes[h as usize] = HoleState::BeingDrilled(driller_idx);
            self.assigned += 1;
            ctx.send(self.drillers[driller_idx], CellMsg::Assign { hole: h });
            if let Some(b) = self.backup {
                ctx.send(
                    b,
                    CellMsg::Mirror {
                        hole: h,
                        state: HoleState::BeingDrilled(driller_idx),
                    },
                );
            }
        } else {
            ctx.send(self.drillers[driller_idx], CellMsg::Idle);
        }
    }

    /// Marks every hole being drilled by `driller_idx` as to-be-checked
    /// (the failure path).
    pub fn driller_failed(&mut self, driller_idx: usize) {
        for (h, s) in self.holes.iter_mut().enumerate() {
            if *s == HoleState::BeingDrilled(driller_idx) {
                *s = HoleState::ToBeChecked;
                self.checklist.push(h as u32);
            }
        }
    }
}

impl Process<CellMsg> for CellController {
    fn on_start(&mut self, ctx: &mut Ctx<'_, CellMsg>) {
        for i in 0..self.drillers.len() {
            self.assign_to(ctx, i);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, CellMsg>, _from: ProcessId, msg: CellMsg) {
        if let CellMsg::Done { hole, driller } = msg {
            self.holes[hole as usize] = HoleState::Completed;
            if let Some(b) = self.backup {
                ctx.send(
                    b,
                    CellMsg::Mirror {
                        hole,
                        state: HoleState::Completed,
                    },
                );
            }
            self.assign_to(ctx, driller);
        }
    }
}

/// A driller in the central design.
pub struct CentralDriller {
    me_idx: usize,
    controller: ProcessId,
    drill_time: SimDuration,
    current: Option<u32>,
    /// Holes this driller completed.
    pub drilled: Vec<u32>,
}

const DRILL_DONE: TimerId = TimerId(7);

impl Process<CellMsg> for CentralDriller {
    fn on_message(&mut self, ctx: &mut Ctx<'_, CellMsg>, _from: ProcessId, msg: CellMsg) {
        if let CellMsg::Assign { hole } = msg {
            self.current = Some(hole);
            ctx.set_timer(DRILL_DONE, self.drill_time);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, CellMsg>, _t: TimerId) {
        if let Some(h) = self.current.take() {
            self.drilled.push(h);
            ctx.send(
                self.controller,
                CellMsg::Done {
                    hole: h,
                    driller: self.me_idx,
                },
            );
        }
    }
}

/// The backup controller: passively mirrors state.
#[derive(Default)]
pub struct BackupController {
    /// Mirrored hole states.
    pub mirrored: std::collections::BTreeMap<u32, HoleState>,
}

impl Process<CellMsg> for BackupController {
    fn on_message(&mut self, _ctx: &mut Ctx<'_, CellMsg>, _from: ProcessId, msg: CellMsg) {
        if let CellMsg::Mirror { hole, state } = msg {
            self.mirrored.insert(hole, state);
        }
    }
}

/// Runs the central-controller drilling design (with a backup mirror).
pub fn run_drilling_central(
    seed: u64,
    drillers: usize,
    holes: u32,
    net: NetConfig,
) -> DrillingResult {
    let mut sim = SimBuilder::new(seed).net(net).build::<CellMsg>();
    let controller_pid = ProcessId(0);
    let backup_pid = ProcessId(1);
    let driller_pids: Vec<ProcessId> = (0..drillers).map(|i| ProcessId(2 + i)).collect();
    sim.add_process(CellController::new(
        driller_pids.clone(),
        Some(backup_pid),
        holes,
    ));
    sim.add_process(BackupController::default());
    for (i, _) in driller_pids.iter().enumerate() {
        sim.add_process(CentralDriller {
            me_idx: i,
            controller: controller_pid,
            drill_time: SimDuration::from_millis(20),
            current: None,
            drilled: Vec::new(),
        });
    }
    sim.run_until(SimTime::from_secs(30));
    let mut all: Vec<u32> = Vec::new();
    for &p in &driller_pids {
        let d: &CentralDriller = sim.process(p).expect("driller");
        all.extend(&d.drilled);
    }
    all.sort_unstable();
    let each_hole_once =
        all.len() == holes as usize && all.iter().enumerate().all(|(i, &h)| h == i as u32);
    DrillingResult {
        net_sent: sim.metrics().counter("net.sent"),
        data_msgs: sim.metrics().counter("net.sent"),
        each_hole_once,
        holes_drilled: all.len(),
        makespan: sim.now(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> NetConfig {
        NetConfig::lossy_lan(0.0)
    }

    #[test]
    fn distributed_drills_each_hole_once() {
        let r = run_drilling_distributed(1, 4, 40, net());
        assert!(r.each_hole_once, "{r:?}");
        assert_eq!(r.holes_drilled, 40);
    }

    #[test]
    fn central_drills_each_hole_once() {
        let r = run_drilling_central(1, 4, 40, net());
        assert!(r.each_hole_once, "{r:?}");
    }

    #[test]
    fn central_traffic_is_linear_in_holes_not_drillers() {
        let small = run_drilling_central(1, 4, 40, net());
        let big = run_drilling_central(1, 16, 40, net());
        // Same holes, 4x drillers: message count barely moves (± the
        // initial assignment fan-out).
        let ratio = big.net_sent as f64 / small.net_sent as f64;
        assert!(ratio < 1.5, "central ratio {ratio}");
    }

    #[test]
    fn distributed_data_traffic_scales_with_drillers() {
        let small = run_drilling_distributed(1, 4, 40, net());
        let big = run_drilling_distributed(1, 16, 40, net());
        // Same holes, 4x drillers: each completion multicast now fans out
        // to 15 instead of 3 — data traffic grows ~5x.
        let ratio = big.data_msgs as f64 / small.data_msgs as f64;
        assert!(ratio > 3.0, "distributed ratio {ratio}");
    }

    #[test]
    fn central_failure_produces_checklist() {
        let mut c = CellController::new(vec![ProcessId(2), ProcessId(3)], None, 10);
        c.holes[0] = HoleState::BeingDrilled(0);
        c.holes[1] = HoleState::BeingDrilled(1);
        c.holes[2] = HoleState::Completed;
        c.driller_failed(0);
        assert_eq!(c.checklist, vec![0]);
        assert_eq!(c.holes[0], HoleState::ToBeChecked);
        assert_eq!(c.holes[1], HoleState::BeingDrilled(1));
    }

    #[test]
    fn backup_mirrors_state() {
        let mut sim = SimBuilder::new(3).net(net()).build::<CellMsg>();
        let driller_pids = vec![ProcessId(2)];
        sim.add_process(CellController::new(driller_pids, Some(ProcessId(1)), 5));
        sim.add_process(BackupController::default());
        sim.add_process(CentralDriller {
            me_idx: 0,
            controller: ProcessId(0),
            drill_time: SimDuration::from_millis(10),
            current: None,
            drilled: Vec::new(),
        });
        sim.run_until(SimTime::from_secs(5));
        let b: &BackupController = sim.process(ProcessId(1)).unwrap();
        assert_eq!(b.mirrored.len(), 5);
        assert!(b.mirrored.values().all(|s| *s == HoleState::Completed));
    }
}
