//! Replication in the large — §4.5, Lampson's global name service.
//!
//! "Lampson's design suggests that duplicate name binding can be resolved
//! by undoing one of the name bindings. In the scale of multi-national
//! directory service that this design addresses, tolerating the
//! occasional 'undo' of this nature seems far preferable in practice than
//! having directory operations significantly delayed by message losses or
//! reorderings."
//!
//! The model: directory replicas accept name bindings *locally* (high
//! availability — a bind never waits on remote replicas) and propagate
//! them lazily by anti-entropy gossip. Two replicas may concurrently bind
//! the same name; the conflict is resolved deterministically by an
//! **undo rule** (lowest `(timestamp, origin)` wins), and every replica
//! converges to the same directory without any ordered multicast.
//!
//! Experiment T15 measures: bind latency (always local), convergence
//! time, number of undos, and contrasts the communication state with the
//! CATOCS equivalent (a wide-area causal group over every replica).

use clocks::lamport::TotalStamp;
use rand::Rng;
use serde::{Deserialize, Serialize};
use simnet::net::NetConfig;
use simnet::process::{Ctx, Process, ProcessId, TimerId};
use simnet::sim::SimBuilder;
use simnet::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// A name binding: name → value, stamped for conflict resolution.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Binding {
    /// The bound name.
    pub name: u64,
    /// The bound value.
    pub value: u64,
    /// Conflict-resolution stamp: earliest `(time, origin)` wins — the
    /// deterministic "undo one of the bindings" rule.
    pub stamp: TotalStamp,
}

/// Anti-entropy messages.
#[derive(Clone, Debug)]
pub enum DirMsg {
    /// A gossip digest: a batch of bindings known at the sender.
    Gossip(Vec<Binding>),
}

/// A directory replica.
pub struct DirReplica {
    me: usize,
    n: usize,
    clock: clocks::lamport::LamportClock,
    /// The directory: name → winning binding.
    pub directory: BTreeMap<u64, Binding>,
    /// Bindings undone by the conflict rule (the §4.5 "occasional undo").
    pub undos: u64,
    /// Locally originated binds (all accepted instantly).
    pub local_binds: u64,
    /// Names to bind, drained one per app tick.
    to_bind: Vec<(u64, u64)>,
    gossip_every: SimDuration,
}

const GOSSIP: TimerId = TimerId(0);
const BIND: TimerId = TimerId(1);

impl DirReplica {
    /// Creates replica `me` of `n`, which will bind the given
    /// (name, value) pairs locally over time.
    pub fn new(me: usize, n: usize, to_bind: Vec<(u64, u64)>, gossip_every: SimDuration) -> Self {
        DirReplica {
            me,
            n,
            clock: clocks::lamport::LamportClock::new(),
            directory: BTreeMap::new(),
            undos: 0,
            local_binds: 0,
            to_bind,
            gossip_every,
        }
    }

    /// Applies a binding under the undo rule; returns true if it won.
    fn apply(&mut self, b: Binding) -> bool {
        self.clock.observe(b.stamp.time);
        match self.directory.get(&b.name) {
            None => {
                self.directory.insert(b.name, b);
                true
            }
            Some(existing) if b.stamp < existing.stamp => {
                // The newcomer is older: the existing binding is undone.
                self.undos += 1;
                self.directory.insert(b.name, b);
                true
            }
            Some(existing) if existing.stamp == b.stamp => true, // same
            Some(_) => {
                // The newcomer loses: it is the one undone (if it was
                // ever visible here, it never was — count only real
                // reversals above).
                false
            }
        }
    }
}

impl Process<DirMsg> for DirReplica {
    fn on_start(&mut self, ctx: &mut Ctx<'_, DirMsg>) {
        ctx.set_timer(GOSSIP, self.gossip_every);
        ctx.set_timer(BIND, SimDuration::from_millis(7));
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_, DirMsg>, _f: ProcessId, msg: DirMsg) {
        let DirMsg::Gossip(bindings) = msg;
        for b in bindings {
            self.apply(b);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, DirMsg>, t: TimerId) {
        match t {
            BIND => {
                if let Some((name, value)) = self.to_bind.pop() {
                    // Bind locally, instantly — availability first.
                    let stamp = self.clock.total_stamp(self.me);
                    self.local_binds += 1;
                    self.apply(Binding { name, value, stamp });
                    ctx.set_timer(BIND, SimDuration::from_millis(7));
                }
            }
            GOSSIP => {
                // Push anti-entropy to one random peer.
                let peer = loop {
                    let p = ctx.rng().gen_range(0..self.n);
                    if p != self.me {
                        break p;
                    }
                };
                let batch: Vec<Binding> = self.directory.values().cloned().collect();
                ctx.send(ProcessId(peer), DirMsg::Gossip(batch));
                ctx.set_timer(GOSSIP, self.gossip_every);
            }
            _ => {}
        }
    }
}

/// Results of one naming run.
#[derive(Clone, Debug)]
pub struct NamingResult {
    /// All replicas ended with identical directories.
    pub converged: bool,
    /// Distinct names bound.
    pub names: usize,
    /// Bindings undone by the conflict rule, summed over replicas.
    pub undos: u64,
    /// Local binds (all served without waiting on the network).
    pub local_binds: u64,
    /// Messages on the wire.
    pub msgs: u64,
}

/// Runs `n` replicas binding `names` names (with deliberate conflicts:
/// every name is bound at two replicas).
pub fn run_naming(seed: u64, n: usize, names: u64, loss: f64) -> NamingResult {
    let net = NetConfig {
        drop_probability: loss,
        ..NetConfig::lossy_lan(loss)
    };
    let mut sim = SimBuilder::new(seed).net(net).build::<DirMsg>();
    for me in 0..n {
        // Each replica binds a share of the names; every name is also
        // bound (with a different value) at the next replica → conflicts.
        let mut mine = Vec::new();
        for name in 0..names {
            if name as usize % n == me {
                mine.push((name, 1000 + me as u64));
            }
            if (name as usize + 1) % n == me {
                mine.push((name, 2000 + me as u64));
            }
        }
        sim.add_process(DirReplica::new(me, n, mine, SimDuration::from_millis(25)));
    }
    sim.run_until(SimTime::from_secs(20));
    let dirs: Vec<BTreeMap<u64, Binding>> = (0..n)
        .map(|p| {
            sim.process::<DirReplica>(ProcessId(p))
                .expect("replica")
                .directory
                .clone()
        })
        .collect();
    let converged = dirs.windows(2).all(|w| w[0] == w[1]);
    let mut undos = 0;
    let mut local_binds = 0;
    for p in 0..n {
        let r: &DirReplica = sim.process(ProcessId(p)).expect("replica");
        undos += r.undos;
        local_binds += r.local_binds;
    }
    NamingResult {
        converged,
        names: dirs[0].len(),
        undos,
        local_binds,
        msgs: sim.metrics().counter("net.sent"),
    }
}

/// §4.5's analytic cost of running the same directory over a CATOCS
/// group: per-replica communication state (vector clock over all
/// replicas plus unstable buffers for in-flight traffic).
pub fn catocs_directory_state(replicas: usize, outstanding: usize, msg_bytes: usize) -> usize {
    replicas * (8 * replicas) + replicas * outstanding * msg_bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicas_converge_despite_conflicts() {
        let r = run_naming(1, 5, 40, 0.05);
        assert!(r.converged, "{r:?}");
        assert_eq!(r.names, 40);
    }

    #[test]
    fn conflicts_are_resolved_by_undo() {
        let r = run_naming(2, 5, 40, 0.0);
        assert!(r.undos > 0, "duplicate bindings must be undone: {r:?}");
    }

    #[test]
    fn binds_are_always_local() {
        // 40 names, each bound twice = 80 local binds, none delayed.
        let r = run_naming(3, 5, 40, 0.1);
        assert_eq!(r.local_binds, 80);
    }

    #[test]
    fn undo_rule_is_deterministic() {
        let a = run_naming(7, 4, 30, 0.05);
        let b = run_naming(7, 4, 30, 0.05);
        assert_eq!(a.undos, b.undos);
        assert!(a.converged && b.converged);
    }

    #[test]
    fn catocs_state_grows_quadratically_with_replicas() {
        let small = catocs_directory_state(10, 8, 512);
        let big = catocs_directory_state(100, 8, 512);
        assert!(big > 10 * small);
    }
}
