//! FIFO multicast (`fbcast`): per-sender ordering only.
//!
//! This is the "conventional transport" baseline the paper repeatedly
//! appeals to (§4.3: "the delivery of commit phase messages is easily
//! ordered by conventional transport mechanisms without CATOCS"). Each
//! sender's messages are delivered in the order sent; messages from
//! different senders are delivered in arrival order with *no* holdback —
//! so there is no false-causality delay and the only per-message overhead
//! is a sequence number.

use crate::group::{GroupConfig, MsgId};
use crate::wire::{DataMsg, Delivery, Dest, EndpointStats, Out, Wire};
use clocks::vector::VectorClock;
use simnet::obs::{ObsEvent, ProbeHandle, SpanId, Stage, WaitKind};
use simnet::time::SimTime;
use std::collections::BTreeMap;

fn span_of(id: MsgId) -> SpanId {
    SpanId {
        origin: id.sender,
        seq: id.seq,
    }
}

/// One sender's incoming stream state.
#[derive(Debug)]
struct SenderStream<P> {
    /// Highest seq delivered from this sender.
    delivered: u64,
    /// Out-of-order arrivals waiting for the gap to fill.
    pending: BTreeMap<u64, (DataMsg<P>, SimTime)>,
    /// Last NACK time for the current gap.
    last_nack: Option<SimTime>,
}

impl<P> Default for SenderStream<P> {
    fn default() -> Self {
        SenderStream {
            delivered: 0,
            pending: BTreeMap::new(),
            last_nack: None,
        }
    }
}

/// The FIFO multicast endpoint for one group member.
#[derive(Debug)]
pub struct FbcastEndpoint<P> {
    me: usize,
    n: usize,
    cfg: GroupConfig,
    next_seq: u64,
    streams: Vec<SenderStream<P>>,
    /// Own sent messages retained for retransmission until acked by all.
    sent_buffer: BTreeMap<u64, DataMsg<P>>,
    /// Peers' ack state for our own messages.
    acked_by: Vec<u64>,
    /// Highest sequence known to exist from each sender (via gossip).
    known_max: Vec<u64>,
    /// Observability sink (span + wait events). Disabled by default.
    probe: ProbeHandle,
    stats: EndpointStats,
}

impl<P: Clone> FbcastEndpoint<P> {
    /// Creates the endpoint for member `me` of a group of `n`.
    pub fn new(me: usize, n: usize, cfg: GroupConfig) -> Self {
        assert!(me < n, "member index out of range");
        FbcastEndpoint {
            me,
            n,
            cfg,
            next_seq: 0,
            streams: (0..n).map(|_| SenderStream::default()).collect(),
            sent_buffer: BTreeMap::new(),
            acked_by: vec![0; n],
            known_max: vec![0; n],
            probe: ProbeHandle::none(),
            stats: EndpointStats::default(),
        }
    }

    /// Installs an observability probe; message lifecycle (send, wire
    /// arrival, delivery) and FIFO-gap waits are recorded through it.
    pub fn set_probe(&mut self, probe: ProbeHandle) {
        self.probe = probe;
    }

    /// This member's index.
    pub fn me(&self) -> usize {
        self.me
    }

    /// Endpoint statistics.
    pub fn stats(&self) -> &EndpointStats {
        &self.stats
    }

    /// Messages buffered for retransmission.
    pub fn buffered_len(&self) -> usize {
        self.sent_buffer.len()
    }

    /// Telemetry hook: instantaneous gauges for the time-series sampler.
    pub fn sample(&self, emit: &mut dyn FnMut(&str, f64)) {
        emit("fbcast.buffered", self.sent_buffer.len() as f64);
        emit(
            "fbcast.pending",
            self.streams.iter().map(|s| s.pending.len()).sum::<usize>() as f64,
        );
    }

    /// Contributes this endpoint's live blocking edges to a wait-graph
    /// snapshot (read-only; see [`crate::waitgraph`]): an out-of-order
    /// arrival blocks on the sender's next undelivered sequence (an ARQ
    /// gap chased via NACK). FIFO has no cross-sender holdback, so these
    /// are the only blocking edges it can contribute.
    pub fn wait_edges(&self, out: &mut Vec<crate::waitgraph::WaitEdge>) {
        use crate::waitgraph::{WaitEdge, WaitNode};
        for (sender, s) in self.streams.iter().enumerate() {
            let gap = MsgId {
                sender,
                seq: s.delivered + 1,
            };
            for (&seq, (msg, arrived)) in &s.pending {
                if seq == gap.seq {
                    continue;
                }
                out.push(WaitEdge {
                    from: WaitNode::Msg(msg.id),
                    to: WaitNode::Msg(gap),
                    who: self.me,
                    since: *arrived,
                    reason: "FIFO gap, awaiting retransmit",
                });
            }
        }
    }

    /// The per-sender delivered watermark, as a vector clock for
    /// compatibility with the stability machinery.
    pub fn delivered_clock(&self) -> VectorClock {
        let mut vc = VectorClock::new(self.n);
        for (k, s) in self.streams.iter().enumerate() {
            vc.set(k, s.delivered);
        }
        vc
    }

    /// Multicasts `payload`; returns the immediate self-delivery and the
    /// outbound data message.
    pub fn multicast(&mut self, now: SimTime, payload: P) -> (Delivery<P>, Vec<Out<P>>) {
        self.next_seq += 1;
        let id = MsgId {
            sender: self.me,
            seq: self.next_seq,
        };
        // fbcast carries only the sender's own counter; we reuse the
        // vector-clock slot for uniform wire format but zero the rest.
        let mut vt = VectorClock::new(self.n);
        vt.set(self.me, self.next_seq);
        let msg = DataMsg::new(id, vt, payload.clone());
        self.probe.emit(|| ObsEvent::Span {
            at: now,
            who: self.me,
            span: span_of(id),
            stage: Stage::Send,
            note: String::new(),
        });
        self.streams[self.me].delivered = self.next_seq;
        self.acked_by[self.me] = self.next_seq;
        self.sent_buffer.insert(self.next_seq, msg.clone());
        self.stats.sent += 1;
        self.stats.delivered += 1;
        let wire = Wire::Data(msg);
        self.stats.data_overhead_bytes += wire.overhead_bytes() as u64;
        self.note_buffer();
        (
            Delivery {
                id,
                payload,
                arrived_at: now,
                delivered_at: now,
                gseq: None,
                waited_for: Vec::new(),
            },
            vec![(Dest::All, wire)],
        )
    }

    /// Handles an incoming wire message.
    pub fn on_wire(&mut self, now: SimTime, wire: Wire<P>) -> (Vec<Delivery<P>>, Vec<Out<P>>) {
        let mut out = Vec::new();
        let mut delivered = Vec::new();
        match wire {
            Wire::Data(msg) => {
                self.stats.data_received += 1;
                self.on_data(now, msg, &mut out, &mut delivered);
            }
            Wire::AckGossip { from, delivered: d } => {
                // Peers report the highest seq they have from us.
                if self.acked_by[from] < d.get(self.me) {
                    self.acked_by[from] = d.get(self.me);
                }
                // And reveal messages from any sender that we never saw.
                for k in 0..self.n {
                    if self.known_max[k] < d.get(k) {
                        self.known_max[k] = d.get(k);
                    }
                }
                self.gc_sent();
            }
            Wire::Nack { from, want } => {
                for id in want {
                    if id.sender == self.me {
                        if let Some(m) = self.sent_buffer.get(&id.seq) {
                            let mut copy = m.clone();
                            copy.retransmit = true;
                            self.stats.retransmits_served += 1;
                            let w = Wire::Data(copy);
                            self.stats.control_bytes += w.overhead_bytes() as u64;
                            out.push((Dest::One(from), w));
                        }
                    }
                }
            }
            _ => {}
        }
        (delivered, out)
    }

    /// Periodic maintenance: ack gossip and gap re-NACKs.
    pub fn on_tick(&mut self, now: SimTime) -> Vec<Out<P>> {
        let mut out = Vec::new();
        let gossip = Wire::AckGossip {
            from: self.me,
            delivered: self.delivered_clock(),
        };
        self.stats.acks_sent += 1;
        self.stats.control_bytes += gossip.overhead_bytes() as u64;
        out.push((Dest::All, gossip));
        for k in 0..self.n {
            if k == self.me {
                continue;
            }
            let (gap_want, overdue) = {
                let s = &self.streams[k];
                // A gap exists if something is pending beyond it or gossip
                // says the sender has sent further than we have seen.
                let horizon = s
                    .pending
                    .keys()
                    .next()
                    .map(|&lowest| lowest - 1)
                    .unwrap_or(0)
                    .max(self.known_max[k]);
                if horizon <= s.delivered {
                    continue;
                }
                let overdue = match s.last_nack {
                    None => true,
                    Some(t) => now.saturating_since(t) >= self.cfg.nack_timeout,
                };
                let want: Vec<MsgId> = ((s.delivered + 1)..=horizon)
                    .filter(|seq| !s.pending.contains_key(seq))
                    .take(self.cfg.max_nack_batch)
                    .map(|seq| MsgId { sender: k, seq })
                    .collect();
                (want, overdue)
            };
            if overdue && !gap_want.is_empty() {
                self.streams[k].last_nack = Some(now);
                let w = Wire::Nack {
                    from: self.me,
                    want: gap_want,
                };
                self.stats.nacks_sent += 1;
                self.stats.control_bytes += w.overhead_bytes() as u64;
                out.push((Dest::One(k), w));
            }
        }
        out
    }

    fn on_data(
        &mut self,
        now: SimTime,
        msg: DataMsg<P>,
        out: &mut Vec<Out<P>>,
        delivered: &mut Vec<Delivery<P>>,
    ) {
        let k = msg.id.sender;
        let seq = msg.id.seq;
        let wire_id = msg.id;
        let retransmit = msg.retransmit;
        self.probe.emit(|| ObsEvent::Span {
            at: now,
            who: self.me,
            span: span_of(wire_id),
            stage: Stage::Wire,
            note: if retransmit {
                "retransmit".to_string()
            } else {
                String::new()
            },
        });
        let stream = &mut self.streams[k];
        if seq <= stream.delivered || stream.pending.contains_key(&seq) {
            self.stats.duplicates += 1;
            return;
        }
        if seq > stream.delivered + 1 {
            let gap = stream.delivered + 1;
            self.probe.emit(|| ObsEvent::Span {
                at: now,
                who: self.me,
                span: span_of(wire_id),
                stage: Stage::HoldbackEnter,
                note: format!("FIFO gap: awaiting m{k}.{gap}"),
            });
        }
        let stream = &mut self.streams[k];
        stream.pending.insert(seq, (msg, now));
        // Immediate NACK for a fresh gap.
        if seq > stream.delivered + 1 && stream.last_nack.is_none() {
            stream.last_nack = Some(now);
            let want: Vec<MsgId> = ((stream.delivered + 1)..seq)
                .take(self.cfg.max_nack_batch)
                .map(|s| MsgId { sender: k, seq: s })
                .collect();
            let w = Wire::Nack {
                from: self.me,
                want,
            };
            self.stats.nacks_sent += 1;
            self.stats.control_bytes += w.overhead_bytes() as u64;
            out.push((Dest::One(k), w));
        }
        // Deliver the contiguous prefix.
        let stream = &mut self.streams[k];
        while let Some((m, arrived)) = stream.pending.remove(&(stream.delivered + 1)) {
            stream.delivered += 1;
            stream.last_nack = None;
            let was_held = arrived < now;
            self.stats.delivered += 1;
            if was_held {
                self.stats.delivered_after_hold += 1;
                self.stats.hold_time_total += now.saturating_since(arrived);
            }
            let span = span_of(m.id);
            self.probe.emit(|| ObsEvent::Span {
                at: now,
                who: self.me,
                span,
                stage: Stage::Delivered,
                note: String::new(),
            });
            if was_held {
                let prev = MsgId {
                    sender: k,
                    seq: m.id.seq - 1,
                };
                self.probe.emit(|| ObsEvent::Wait {
                    at: now,
                    who: self.me,
                    span,
                    kind: WaitKind::FifoGap,
                    since: arrived,
                    blocker: Some(span_of(prev)),
                    note: String::new(),
                });
            }
            delivered.push(Delivery {
                id: m.id,
                payload: m.payload,
                arrived_at: arrived,
                delivered_at: now,
                gseq: None,
                waited_for: if was_held {
                    vec![MsgId {
                        sender: k,
                        seq: m.id.seq - 1,
                    }]
                } else {
                    Vec::new()
                },
            });
        }
        let pending_total: usize = self.streams.iter().map(|s| s.pending.len()).sum();
        self.stats.note_holdback(pending_total as u64);
    }

    fn gc_sent(&mut self) {
        let min_acked = self.acked_by.iter().copied().min().unwrap_or(0);
        let before = self.sent_buffer.len();
        self.sent_buffer.retain(|&seq, _| seq > min_acked);
        self.stats.stabilized += (before - self.sent_buffer.len()) as u64;
        self.note_buffer();
    }

    fn note_buffer(&mut self) {
        let msgs = self.sent_buffer.len() as u64;
        let per_msg = (self.cfg.payload_bytes + 12 + 8) as u64;
        self.stats.note_buffer(msgs, msgs * per_msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn data_of(out: &[Out<&'static str>]) -> Wire<&'static str> {
        out.iter()
            .find_map(|(d, w)| match (d, w) {
                (Dest::All, Wire::Data(_)) => Some(w.clone()),
                _ => None,
            })
            .expect("broadcast data")
    }

    #[test]
    fn per_sender_fifo_restored() {
        let cfg = GroupConfig::default();
        let mut a = FbcastEndpoint::new(0, 2, cfg.clone());
        let mut b = FbcastEndpoint::new(1, 2, cfg);
        let (_, o1) = a.multicast(t(0), "m1");
        let (_, o2) = a.multicast(t(1), "m2");
        let (d, nacks) = b.on_wire(t(2), data_of(&o2));
        assert!(d.is_empty());
        assert!(nacks.iter().any(|(_, w)| matches!(w, Wire::Nack { .. })));
        let (d, _) = b.on_wire(t(3), data_of(&o1));
        assert_eq!(
            d.iter().map(|x| x.payload).collect::<Vec<_>>(),
            vec!["m1", "m2"]
        );
        assert!(d[1].was_held());
    }

    #[test]
    fn no_cross_sender_holdback() {
        // The key contrast with cbcast: even if b's message was "caused"
        // by a's, fbcast delivers them in arrival order.
        let cfg = GroupConfig::default();
        let mut a = FbcastEndpoint::new(0, 3, cfg.clone());
        let mut b = FbcastEndpoint::new(1, 3, cfg.clone());
        let mut c = FbcastEndpoint::new(2, 3, cfg);
        let (_, oa) = a.multicast(t(0), "cause");
        b.on_wire(t(1), data_of(&oa));
        let (_, ob) = b.multicast(t(2), "effect");
        // Effect arrives first at c — delivered immediately (the anomaly
        // CATOCS exists to prevent).
        let (d, _) = c.on_wire(t(3), data_of(&ob));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].payload, "effect");
        let (d, _) = c.on_wire(t(4), data_of(&oa));
        assert_eq!(d[0].payload, "cause");
    }

    #[test]
    fn duplicate_discarded() {
        let cfg = GroupConfig::default();
        let mut a = FbcastEndpoint::new(0, 2, cfg.clone());
        let mut b = FbcastEndpoint::new(1, 2, cfg);
        let (_, o) = a.multicast(t(0), "m");
        let m = data_of(&o);
        b.on_wire(t(1), m.clone());
        let (d, _) = b.on_wire(t(2), m);
        assert!(d.is_empty());
        assert_eq!(b.stats().duplicates, 1);
    }

    #[test]
    fn nack_recovery() {
        let cfg = GroupConfig::default();
        let mut a = FbcastEndpoint::new(0, 2, cfg.clone());
        let mut b = FbcastEndpoint::new(1, 2, cfg);
        let (_, o1) = a.multicast(t(0), "m1");
        let (_, o2) = a.multicast(t(1), "m2");
        let (_, nacks) = b.on_wire(t(2), data_of(&o2));
        let nack = nacks
            .into_iter()
            .find(|(_, w)| matches!(w, Wire::Nack { .. }))
            .unwrap();
        let (_, served) = a.on_wire(t(3), nack.1);
        let retrans = served
            .into_iter()
            .find(|(_, w)| matches!(w, Wire::Data(d) if d.retransmit))
            .unwrap();
        let (d, _) = b.on_wire(t(4), retrans.1);
        assert_eq!(
            d.iter().map(|x| x.payload).collect::<Vec<_>>(),
            vec!["m1", "m2"]
        );
        let _ = o1;
    }

    #[test]
    fn ack_gossip_gcs_sent_buffer() {
        let cfg = GroupConfig::default();
        let mut a = FbcastEndpoint::new(0, 2, cfg.clone());
        let mut b = FbcastEndpoint::new(1, 2, cfg);
        let (_, o) = a.multicast(t(0), "m");
        b.on_wire(t(1), data_of(&o));
        assert_eq!(a.buffered_len(), 1);
        let gossip = Wire::AckGossip {
            from: 1,
            delivered: b.delivered_clock(),
        };
        a.on_wire(t(2), gossip);
        assert_eq!(a.buffered_len(), 0);
    }

    #[test]
    fn tick_renacks_gap() {
        let cfg = GroupConfig::default();
        let mut a = FbcastEndpoint::new(0, 2, cfg.clone());
        let mut b = FbcastEndpoint::new(1, 2, cfg.clone());
        let (_, _o1) = a.multicast(t(0), "m1");
        let (_, o2) = a.multicast(t(1), "m2");
        b.on_wire(t(2), data_of(&o2));
        let out = b.on_tick(t(2) + cfg.nack_timeout);
        assert!(out
            .iter()
            .any(|(d, w)| matches!(w, Wire::Nack { .. }) && *d == Dest::One(0)));
    }
}
