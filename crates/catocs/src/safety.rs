//! Deceit-style "write safety level" tracking (§4.4).
//!
//! In the Deceit file system each `cbcast` write waits for `k`
//! acknowledgements before the operation is considered safe. The paper's
//! point: `k = 0` is asynchronous but loses data on a single failure,
//! while any `k ≥ 1` with typical replication degrees collapses into a
//! synchronous update — "the actual asynchrony one achieves with CATOCS
//! systems is limited". This tracker measures the time from multicast to
//! k-safety so experiment T8 can plot write latency against `k`.

use crate::group::MsgId;
use crate::stability::StabilityTracker;
use simnet::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// A pending write awaiting its safety level.
#[derive(Debug, Clone, Copy)]
struct PendingWrite {
    sent_at: SimTime,
}

/// Tracks time-to-k-safety for multicasts issued by one member.
#[derive(Debug)]
pub struct SafetyTracker {
    /// Required acknowledgement count (members known to have delivered),
    /// including the sender itself.
    k: usize,
    pending: BTreeMap<MsgId, PendingWrite>,
    /// Completed (id, latency) records.
    completed: Vec<(MsgId, SimDuration)>,
}

impl SafetyTracker {
    /// Creates a tracker with write-safety level `k` (number of members,
    /// including the sender, that must be known to have the message).
    pub fn new(k: usize) -> Self {
        SafetyTracker {
            k,
            pending: BTreeMap::new(),
            completed: Vec::new(),
        }
    }

    /// The configured safety level.
    pub fn level(&self) -> usize {
        self.k
    }

    /// Registers a just-sent write.
    pub fn register(&mut self, id: MsgId, now: SimTime) {
        if self.k <= 1 {
            // Level 0/1: safe at the sender immediately (asynchronous).
            self.completed.push((id, SimDuration::ZERO));
        } else {
            self.pending.insert(id, PendingWrite { sent_at: now });
        }
    }

    /// Re-evaluates pending writes against current stability knowledge;
    /// returns ids that just became safe.
    pub fn advance(&mut self, stability: &StabilityTracker, now: SimTime) -> Vec<MsgId> {
        let ready: Vec<MsgId> = self
            .pending
            .iter()
            .filter(|(id, _)| stability.ack_count(id.sender, id.seq) >= self.k)
            .map(|(id, _)| *id)
            .collect();
        for id in &ready {
            let w = self.pending.remove(id).expect("present");
            self.completed.push((*id, now.saturating_since(w.sent_at)));
        }
        ready
    }

    /// Writes still awaiting safety.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// All completed (id, time-to-safety) records.
    pub fn completed(&self) -> &[(MsgId, SimDuration)] {
        &self.completed
    }

    /// Mean time-to-safety over completed writes.
    pub fn mean_latency(&self) -> SimDuration {
        if self.completed.is_empty() {
            return SimDuration::ZERO;
        }
        let total: u64 = self.completed.iter().map(|(_, d)| d.as_micros()).sum();
        SimDuration::from_micros(total / self.completed.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clocks::vector::VectorClock;

    fn id(seq: u64) -> MsgId {
        MsgId { sender: 0, seq }
    }

    #[test]
    fn level_zero_is_immediately_safe() {
        let mut s = SafetyTracker::new(0);
        s.register(id(1), SimTime::from_millis(5));
        assert_eq!(s.pending_len(), 0);
        assert_eq!(s.completed().len(), 1);
        assert_eq!(s.mean_latency(), SimDuration::ZERO);
    }

    #[test]
    fn level_k_waits_for_k_members() {
        let mut s = SafetyTracker::new(2);
        let mut st = StabilityTracker::new(3);
        st.record_local_delivery(0, 0, 1); // sender has it
        s.register(id(1), SimTime::from_millis(0));
        assert!(s.advance(&st, SimTime::from_millis(1)).is_empty());
        // Second member acks.
        st.update_row(1, &VectorClock::from_entries(vec![1, 0, 0]));
        let ready = s.advance(&st, SimTime::from_millis(4));
        assert_eq!(ready, vec![id(1)]);
        assert_eq!(s.mean_latency(), SimDuration::from_millis(4));
        assert_eq!(s.pending_len(), 0);
    }

    #[test]
    fn full_replication_waits_for_all() {
        let mut s = SafetyTracker::new(3);
        let mut st = StabilityTracker::new(3);
        st.record_local_delivery(0, 0, 1);
        st.update_row(1, &VectorClock::from_entries(vec![1, 0, 0]));
        s.register(id(1), SimTime::from_millis(0));
        assert!(s.advance(&st, SimTime::from_millis(2)).is_empty());
        st.update_row(2, &VectorClock::from_entries(vec![1, 0, 0]));
        assert_eq!(s.advance(&st, SimTime::from_millis(6)), vec![id(1)]);
        assert_eq!(s.level(), 3);
    }

    #[test]
    fn multiple_pending_resolve_independently() {
        let mut s = SafetyTracker::new(2);
        let mut st = StabilityTracker::new(2);
        st.record_local_delivery(0, 0, 1);
        st.record_local_delivery(0, 0, 2);
        s.register(id(1), SimTime::from_millis(0));
        s.register(id(2), SimTime::from_millis(1));
        // Peer acks only the first.
        st.update_row(1, &VectorClock::from_entries(vec![1, 0]));
        let ready = s.advance(&st, SimTime::from_millis(3));
        assert_eq!(ready, vec![id(1)]);
        assert_eq!(s.pending_len(), 1);
    }
}
