//! Virtual-synchrony chaos campaigns and the invariant checker behind
//! them.
//!
//! A campaign runs a full group — a [`CausalEndpoint`] (cbcast or
//! pccast, per the campaign's [`GroupConfig::discipline`]), [`FailureDetector`]
//! and [`MembershipEngine`] wired into one [`ChaosNode`] per process —
//! under a seed-derived [`FaultPlan`] (partitions, heals, crashes,
//! recoveries, loss/duplication/delay episodes), then replays every
//! process's event log through [`check`], which asserts the
//! virtual-synchrony contract:
//!
//! - **View agreement**: any view id installed by two processes has the
//!   same membership and the same flush cut at both.
//! - **View monotonicity**: each process installs strictly increasing
//!   view ids, and every survivor installs the final view.
//! - **Exactly-once**: no process delivers the same message twice.
//! - **Causal order**: replaying each process's deliveries against the
//!   senders' vector timestamps never finds a FIFO gap or a delivery
//!   ahead of an undelivered causal predecessor — across view changes.
//! - **Cut discipline**: after a process installs a view that removes a
//!   sender, it delivers nothing of that sender beyond the agreed flush
//!   cut (at-or-below the cut is the old view's agreed history and stays
//!   deliverable).
//! - **Convergence**: survivors end with identical delivered clocks,
//!   unfrozen, with no parked delta timestamps and no decode errors —
//!   unless the run ended in a legitimate primary-partition block (the
//!   survivors are not a strict majority of the final view), in which
//!   case the group wedges *by design* and only the safety invariants
//!   above are enforced. See [`is_blocked`].
//!
//! The checker is pure — it sees only [`ProcessLog`]s — so the regression
//! tests can also feed it hand-built histories. [`BugKnobs`] reintroduce
//! the three bugs these campaigns originally flushed out (cold-start
//! false suspicion on recovery, flush retries disabled, stale delta
//! decode chains across view installs) so each fix keeps a failing seed
//! pinned against it.

use crate::cbcast::BlockedReport;
use crate::endpoint::CausalEndpoint;
use crate::failure::FailureDetector;
use crate::group::{GroupConfig, MsgId};
use crate::ledger::{LatencySummary, TeeProbe};
use crate::membership::{FlushAction, MembershipEngine};
use crate::waitgraph::{analyze, PhaseTag, StallSnapshot, StallTracker, WaitEdge, WaitNode};
use crate::wire::{Dest, Out, Wire};
use clocks::vector::VectorClock;
use simnet::fault::{FaultPlan, FaultPlanConfig};
use simnet::metrics::Histogram;
use simnet::net::NetConfig;
use simnet::obs::{Probe, ProbeHandle};
use simnet::process::{Ctx, Process, ProcessId, TimerId};
use simnet::sim::SimBuilder;
use simnet::time::{SimDuration, SimTime};
use std::any::Any;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::rc::Rc;

/// One entry in a process's chronological event log.
#[derive(Clone, Debug, PartialEq)]
pub enum NodeEvent {
    /// This process multicast a message with the given vector timestamp.
    Send { id: MsgId, vt: VectorClock },
    /// This process delivered a message to the application.
    Deliver { id: MsgId },
    /// This process installed a view (id, member indices, flush cut).
    Install {
        id: u64,
        members: Vec<usize>,
        cut: VectorClock,
    },
}

/// Everything the checker knows about one process after a campaign run.
#[derive(Clone, Debug)]
pub struct ProcessLog {
    /// Member index.
    pub who: usize,
    /// Whether the process was up at the horizon.
    pub alive_at_end: bool,
    /// Chronological sends, deliveries and view installs.
    pub events: Vec<NodeEvent>,
    /// The endpoint's delivered clock at the horizon.
    pub final_clock: VectorClock,
    /// Delta-timestamp decode failures over the run.
    pub decode_errors: u64,
    /// Delta messages still parked (undecodable) at the horizon.
    pub parked: u64,
    /// Whether delivery was still frozen (flush never completed).
    pub frozen: bool,
}

/// One virtual-synchrony invariant violation found by [`check`].
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// Two processes installed the same view id with different
    /// membership or a different flush cut.
    ViewDisagreement { id: u64, a: usize, b: usize },
    /// A process installed a view id not greater than its previous one.
    ViewNotMonotone { who: usize, prev: u64, next: u64 },
    /// A live member of the final view never installed it.
    SurvivorMissedFinalView {
        who: usize,
        expected: u64,
        got: Option<u64>,
    },
    /// A process delivered the same message twice.
    DuplicateDelivery { who: usize, id: MsgId },
    /// A delivery skipped or repeated a sender sequence number.
    FifoGap {
        who: usize,
        id: MsgId,
        expected_seq: u64,
    },
    /// A delivery happened before one of its causal predecessors.
    CausalOrder {
        who: usize,
        id: MsgId,
        lagging: usize,
        have: u64,
        need: u64,
    },
    /// A delivery from a removed sender beyond that sender's flush cut,
    /// after the removing view was installed.
    BeyondCutDelivery { who: usize, id: MsgId, cut: u64 },
    /// A delivery of a message no process ever logged sending.
    UnknownMessage { who: usize, id: MsgId },
    /// Two survivors ended with different delivered clocks.
    ClockDivergence { a: usize, b: usize },
    /// A survivor's delivery was still frozen at the horizon.
    FrozenAtEnd { who: usize },
    /// A survivor hit delta-timestamp decode errors.
    DecodeErrors { who: usize, count: u64 },
    /// A survivor still had parked (undecodable) deltas at the horizon.
    ParkedAtEnd { who: usize, count: u64 },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::ViewDisagreement { id, a, b } => {
                write!(f, "view {id} differs between p{a} and p{b}")
            }
            Violation::ViewNotMonotone { who, prev, next } => {
                write!(f, "p{who} installed view {next} after view {prev}")
            }
            Violation::SurvivorMissedFinalView { who, expected, got } => {
                write!(
                    f,
                    "survivor p{who} stopped at view {got:?}, final is {expected}"
                )
            }
            Violation::DuplicateDelivery { who, id } => {
                write!(f, "p{who} delivered {}:{} twice", id.sender, id.seq)
            }
            Violation::FifoGap {
                who,
                id,
                expected_seq,
            } => write!(
                f,
                "p{who} delivered {}:{} but expected seq {expected_seq}",
                id.sender, id.seq
            ),
            Violation::CausalOrder {
                who,
                id,
                lagging,
                have,
                need,
            } => write!(
                f,
                "p{who} delivered {}:{} needing {need} from p{lagging} but had {have}",
                id.sender, id.seq
            ),
            Violation::BeyondCutDelivery { who, id, cut } => write!(
                f,
                "p{who} delivered {}:{} beyond removed sender's cut {cut}",
                id.sender, id.seq
            ),
            Violation::UnknownMessage { who, id } => {
                write!(
                    f,
                    "p{who} delivered unsent message {}:{}",
                    id.sender, id.seq
                )
            }
            Violation::ClockDivergence { a, b } => {
                write!(f, "survivors p{a} and p{b} ended with different clocks")
            }
            Violation::FrozenAtEnd { who } => {
                write!(f, "survivor p{who} still frozen at horizon")
            }
            Violation::DecodeErrors { who, count } => {
                write!(f, "survivor p{who} hit {count} delta decode errors")
            }
            Violation::ParkedAtEnd { who, count } => {
                write!(f, "survivor p{who} still has {count} parked deltas")
            }
        }
    }
}

/// The highest view installed by any live process, with its membership.
fn final_installed_view(logs: &[ProcessLog]) -> Option<(u64, Vec<usize>)> {
    let mut best: Option<(u64, Vec<usize>)> = None;
    for log in logs.iter().filter(|l| l.alive_at_end) {
        for ev in &log.events {
            if let NodeEvent::Install { id, members, .. } = ev {
                if best.as_ref().is_none_or(|(b, _)| id > b) {
                    best = Some((*id, members.clone()));
                }
            }
        }
    }
    best
}

/// Whether the group ended in a legitimate primary-partition block: the
/// live members of the final installed view are not a strict majority of
/// it, so no further view can be installed and flushes in flight wedge
/// by design. (The fault generator bounds *concurrent* crashes to
/// `(n-1)/2` of the original group, but evictions compound: a partition
/// can shrink the view first, and crashes of half the shrunken view then
/// block it — seed 77 of the default campaign is the canonical case.)
pub fn is_blocked(logs: &[ProcessLog]) -> bool {
    match final_installed_view(logs) {
        Some((_, members)) => {
            let live = members
                .iter()
                .filter(|m| logs.iter().any(|l| l.who == **m && l.alive_at_end))
                .count();
            2 * live <= members.len()
        }
        None => {
            let live = logs.iter().filter(|l| l.alive_at_end).count();
            2 * live <= logs.len()
        }
    }
}

/// Replays a set of per-process logs and returns every virtual-synchrony
/// violation found. Empty means the run upheld the contract.
pub fn check(logs: &[ProcessLog]) -> Vec<Violation> {
    let mut violations = Vec::new();

    // Sender timestamps, from the send records. Senders keep their state
    // across crashes in the simulator, so every delivered message has a
    // surviving send record.
    let mut sends: BTreeMap<MsgId, VectorClock> = BTreeMap::new();
    for log in logs {
        for ev in &log.events {
            if let NodeEvent::Send { id, vt } = ev {
                sends.insert(*id, vt.clone());
            }
        }
    }

    // View agreement: same id => same members and cut everywhere.
    let mut views: BTreeMap<u64, (usize, Vec<usize>, VectorClock)> = BTreeMap::new();
    for log in logs {
        for ev in &log.events {
            if let NodeEvent::Install { id, members, cut } = ev {
                match views.get(id) {
                    None => {
                        views.insert(*id, (log.who, members.clone(), cut.clone()));
                    }
                    Some((first, m, c)) => {
                        if m != members || c != cut {
                            violations.push(Violation::ViewDisagreement {
                                id: *id,
                                a: *first,
                                b: log.who,
                            });
                        }
                    }
                }
            }
        }
    }

    // Per-process replay: monotone views, exactly-once, causal order,
    // and the flush-cut rule for removed senders.
    for log in logs {
        let mut vc: Option<VectorClock> = None;
        let mut last_view: Option<u64> = None;
        let mut members: Option<BTreeSet<usize>> = None;
        let mut removed: BTreeMap<usize, u64> = BTreeMap::new();
        let mut delivered: BTreeSet<MsgId> = BTreeSet::new();
        for ev in &log.events {
            match ev {
                NodeEvent::Send { .. } => {}
                NodeEvent::Install {
                    id,
                    members: m,
                    cut,
                } => {
                    if let Some(prev) = last_view {
                        if *id <= prev {
                            violations.push(Violation::ViewNotMonotone {
                                who: log.who,
                                prev,
                                next: *id,
                            });
                        }
                    }
                    last_view = Some(*id);
                    let next: BTreeSet<usize> = m.iter().copied().collect();
                    let prev_members = members.take().unwrap_or_else(|| (0..cut.len()).collect());
                    for s in prev_members.difference(&next) {
                        removed.entry(*s).or_insert_with(|| cut.get(*s));
                    }
                    members = Some(next);
                }
                NodeEvent::Deliver { id } => {
                    if !delivered.insert(*id) {
                        violations.push(Violation::DuplicateDelivery {
                            who: log.who,
                            id: *id,
                        });
                        continue;
                    }
                    if let Some(cut) = removed.get(&id.sender) {
                        if id.seq > *cut {
                            violations.push(Violation::BeyondCutDelivery {
                                who: log.who,
                                id: *id,
                                cut: *cut,
                            });
                        }
                    }
                    let Some(mvt) = sends.get(id) else {
                        violations.push(Violation::UnknownMessage {
                            who: log.who,
                            id: *id,
                        });
                        continue;
                    };
                    let clock = vc.get_or_insert_with(|| VectorClock::new(mvt.len()));
                    if mvt.get(id.sender) != clock.get(id.sender) + 1 {
                        violations.push(Violation::FifoGap {
                            who: log.who,
                            id: *id,
                            expected_seq: clock.get(id.sender) + 1,
                        });
                    }
                    for k in 0..mvt.len() {
                        if k != id.sender && mvt.get(k) > clock.get(k) {
                            violations.push(Violation::CausalOrder {
                                who: log.who,
                                id: *id,
                                lagging: k,
                                have: clock.get(k),
                                need: mvt.get(k),
                            });
                            break;
                        }
                    }
                    // Advance even past a violation so one fault does not
                    // cascade into a violation per subsequent delivery.
                    if id.seq > clock.get(id.sender) {
                        clock.set(id.sender, id.seq);
                    }
                }
            }
        }
    }

    // Survivors: live members of the final view installed by any live
    // process. They must all have installed it, agree on their delivered
    // clocks, and be healthy (thawed, nothing parked, no decode errors).
    //
    // Exception: when the survivors are not a strict majority of the
    // final view, the primary-partition rule *requires* the group to
    // block rather than risk split-brain — survivors legitimately wedge
    // mid-flush, frozen, with diverging clocks. The safety checks above
    // still apply in full; only the convergence checks are waived.
    if is_blocked(logs) {
        return violations;
    }
    let final_view = final_installed_view(logs);
    let survivors: Vec<&ProcessLog> = match &final_view {
        Some((id, members)) => {
            for log in logs.iter().filter(|l| l.alive_at_end) {
                if !members.contains(&log.who) {
                    continue;
                }
                let got = log.events.iter().rev().find_map(|ev| match ev {
                    NodeEvent::Install { id, .. } => Some(*id),
                    _ => None,
                });
                if got != Some(*id) {
                    violations.push(Violation::SurvivorMissedFinalView {
                        who: log.who,
                        expected: *id,
                        got,
                    });
                }
            }
            logs.iter()
                .filter(|l| l.alive_at_end && members.contains(&l.who))
                .collect()
        }
        None => logs.iter().filter(|l| l.alive_at_end).collect(),
    };
    if let Some(first) = survivors.first() {
        for other in &survivors[1..] {
            if other.final_clock != first.final_clock {
                violations.push(Violation::ClockDivergence {
                    a: first.who,
                    b: other.who,
                });
            }
        }
    }
    for s in &survivors {
        if s.frozen {
            violations.push(Violation::FrozenAtEnd { who: s.who });
        }
        if s.decode_errors > 0 {
            violations.push(Violation::DecodeErrors {
                who: s.who,
                count: s.decode_errors,
            });
        }
        if s.parked > 0 {
            violations.push(Violation::ParkedAtEnd {
                who: s.who,
                count: s.parked,
            });
        }
    }

    violations
}

/// Regression knobs: each reintroduces one bug the campaigns flushed
/// out, so a pinned seed can demonstrate the failure the fix removed.
#[derive(Clone, Copy, Debug, Default)]
pub struct BugKnobs {
    /// Skip `FailureDetector::reset` on recovery: the recovered process
    /// reads its stale pre-crash heartbeat table and immediately
    /// suspects live members (the S1 cold-start bug).
    pub no_detector_reset: bool,
    /// Disable flush retransmission: one lost flush message wedges the
    /// view change and freezes delivery forever (the S2 stall bug).
    pub no_flush_retry: bool,
    /// Keep delta decode chains across view installs: parked deltas from
    /// an evicted sender survive the flush and can decode against a
    /// stale base later (the S3 stale-chain bug).
    pub no_chain_reset: bool,
}

/// Tunables for one campaign run.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Group size.
    pub n: usize,
    /// Fault schedule shape (horizon, settle tail, gaps).
    pub plan: FaultPlanConfig,
    /// Endpoint configuration (holdback index, delta timestamps, ...).
    pub group: GroupConfig,
    /// Application multicast period.
    pub app_every: SimDuration,
    /// Baseline network drop probability (faults add on top).
    pub drop_probability: f64,
    /// Reintroduced bugs, if any.
    pub knobs: BugKnobs,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            n: 5,
            plan: FaultPlanConfig::default(),
            group: GroupConfig::default(),
            app_every: SimDuration::from_millis(25),
            drop_probability: 0.02,
            knobs: BugKnobs::default(),
        }
    }
}

/// The outcome of one seeded campaign run.
#[derive(Clone, Debug)]
pub struct CampaignResult {
    /// Seed the run (sim + fault plan) was derived from.
    pub seed: u64,
    /// The fault schedule that was injected.
    pub plan: FaultPlan,
    /// Per-process logs (checker input; useful for post-mortems).
    pub logs: Vec<ProcessLog>,
    /// Violations found by [`check`].
    pub violations: Vec<Violation>,
    /// Highest view id installed anywhere.
    pub views_installed: u64,
    /// Total deliveries across all processes.
    pub delivered_total: u64,
    /// Live processes excluded from the final view (false or healed-away
    /// suspicions, or recovered crashes).
    pub evicted_live: Vec<usize>,
    /// Members of the final view that were up at the horizon.
    pub survivors: Vec<usize>,
    /// The run ended in a legitimate primary-partition block (survivors
    /// short of a strict majority of the final view); convergence checks
    /// were waived, safety checks still ran.
    pub blocked: bool,
    /// Order-sensitive digest of every log (replay determinism check).
    /// Computed from the logs alone, so probed and unprobed runs of the
    /// same seed produce the same digest.
    pub digest: u64,
    /// Per-process holdback wait-graphs at the horizon: for every process
    /// with messages still blocked in holdback, what each waits on and
    /// why. Feeds the `experiments explain` CLI.
    pub blocked_reports: Vec<(usize, Vec<BlockedReport>)>,
    /// Hold-time distribution merged across every node: how long each
    /// remotely-delivered message sat in holdback before release.
    /// Informational — not folded into [`Self::digest`], so it can grow
    /// without invalidating recorded replay digests.
    pub hold_hist: Histogram,
    /// Scheduler events processed by the run (deterministic work proxy).
    pub events_processed: u64,
    /// Final wait-graph analysis: the last sampling snapshot before the
    /// horizon, with its ranked stalls (see [`crate::waitgraph`]).
    /// Informational — not folded into [`Self::digest`].
    pub stalls: StallSnapshot,
    /// Per-snapshot wait-graph analyses on the sampling cadence, for
    /// `experiments waitgraph --at`. Informational — digest-excluded.
    pub stall_timeline: Vec<(SimTime, StallSnapshot)>,
    /// Wait-age distribution: at every sampling snapshot, each blocked
    /// edge's age (µs) across the whole group. Informational —
    /// digest-excluded, like [`Self::hold_hist`].
    pub wait_hist: Histogram,
    /// Per-message latency-provenance ledger: every delivered message's
    /// send→deliver time decomposed into attributed phases, plus the
    /// ordering-tax histograms (see [`crate::ledger`]). Informational —
    /// digest-excluded, like [`Self::hold_hist`].
    pub latency: LatencySummary,
}

const TICK: TimerId = TimerId(0);
const APP: TimerId = TimerId(1);
/// Wait-graph sampling cadence: the same 50 ms the bench time-series
/// use, so `stall.*` metrics line up with the other `ts.*` series.
const SAMPLE_EVERY: SimDuration = SimDuration::from_millis(50);
const TICK_EVERY: SimDuration = SimDuration::from_millis(10);
const HEARTBEAT_EVERY: SimDuration = SimDuration::from_millis(20);
const SUSPECT_AFTER: SimDuration = SimDuration::from_millis(100);

/// A full virtual-synchrony member under chaos: endpoint + failure
/// detector + membership engine, logging everything the checker needs.
pub struct ChaosNode {
    me: usize,
    n: usize,
    endpoint: CausalEndpoint<u64>,
    detector: FailureDetector,
    engine: MembershipEngine,
    knobs: BugKnobs,
    /// No multicasts after this point, so the settle tail can converge.
    send_until: SimTime,
    app_every: SimDuration,
    next: u64,
    /// Chronological log for the invariant checker.
    pub events: Vec<NodeEvent>,
    // Expected fire times. A crash drops the pending timer for a downed
    // process, so `on_recover` re-arms — but a timer armed just before
    // the crash can still fire after recovery, forking a second timer
    // chain. Fires that don't match the expected time are stale chains
    // and get ignored.
    armed_tick: SimTime,
    armed_app: SimTime,
    /// Hold times of held deliveries at this node (µs histogram).
    hold_hist: Histogram,
}

impl ChaosNode {
    /// Creates member `me` under the campaign's config.
    pub fn new(me: usize, cfg: &CampaignConfig) -> Self {
        Self::with_probe(me, cfg, ProbeHandle::none())
    }

    /// Creates member `me` with an observability probe installed on its
    /// endpoint — used by the incident-dump rerun after a violation.
    pub fn with_probe(me: usize, cfg: &CampaignConfig, probe: ProbeHandle) -> Self {
        let mut endpoint = CausalEndpoint::new(me, cfg.n, cfg.group.clone());
        endpoint.set_probe(probe);
        if cfg.knobs.no_chain_reset {
            endpoint.debug_skip_view_reset(true);
        }
        let mut engine = MembershipEngine::new(me, cfg.n);
        if cfg.knobs.no_flush_retry {
            // Effectively never: any lost flush message wedges the change.
            engine.set_retry_interval(SimDuration::from_secs(86_400));
        }
        ChaosNode {
            me,
            n: cfg.n,
            endpoint,
            detector: FailureDetector::new(
                me,
                cfg.n,
                HEARTBEAT_EVERY,
                SUSPECT_AFTER,
                SimTime::ZERO,
            ),
            engine,
            knobs: cfg.knobs,
            send_until: cfg.plan.horizon - cfg.plan.settle,
            app_every: cfg.app_every,
            next: 0,
            events: Vec::new(),
            armed_tick: SimTime::ZERO,
            armed_app: SimTime::ZERO,
            hold_hist: Histogram::new(),
        }
    }

    /// The endpoint (read post-run).
    pub fn endpoint(&self) -> &CausalEndpoint<u64> {
        &self.endpoint
    }

    /// The membership engine (read post-run).
    pub fn engine(&self) -> &MembershipEngine {
        &self.engine
    }

    /// Hold-time distribution of this node's held deliveries (read
    /// post-run; campaigns merge these across the group).
    pub fn hold_histogram(&self) -> &Histogram {
        &self.hold_hist
    }

    /// Every blocking edge this node contributes to a wait-graph
    /// snapshot: the endpoint's holdback and link-reorder waits, plus
    /// the membership layer's flush barrier — any member mid-flush
    /// blocks on the coordinator's flush phase, and at the coordinator
    /// the phase itself blocks on each member whose FlushOk is missing.
    /// Read-only and work-counter-neutral.
    pub fn wait_edges(&self) -> Vec<WaitEdge> {
        let mut edges = Vec::new();
        self.endpoint.wait_edges(&mut edges);
        if let Some(fw) = self.engine.flush_waits() {
            let phase = WaitNode::Phase {
                kind: PhaseTag::Flush,
                at: fw.coordinator,
            };
            edges.push(WaitEdge {
                from: WaitNode::Proc(self.me),
                to: phase,
                who: self.me,
                since: fw.since,
                reason: "mid-flush, delivery blacked out until install",
            });
            for q in fw.missing_acks {
                edges.push(WaitEdge {
                    from: phase,
                    to: WaitNode::Proc(q),
                    who: self.me,
                    since: fw.since,
                    reason: "FlushOk not received",
                });
            }
        }
        edges
    }

    fn route(&self, ctx: &mut Ctx<'_, Wire<u64>>, out: Vec<Out<u64>>) {
        for (dest, w) in out {
            match dest {
                Dest::All => {
                    for k in 0..self.n {
                        if k != self.me {
                            ctx.send(ProcessId(k), w.clone());
                        }
                    }
                }
                Dest::One(k) => ctx.send(ProcessId(k), w),
            }
        }
    }

    fn log_deliveries(&mut self, dels: Vec<crate::wire::Delivery<u64>>) {
        for d in dels {
            if d.was_held() {
                self.hold_hist.record(d.hold_time());
            }
            self.events.push(NodeEvent::Deliver { id: d.id });
        }
    }

    fn handle_action(&mut self, ctx: &mut Ctx<'_, Wire<u64>>, action: FlushAction) {
        match action {
            FlushAction::RetransmitUnstable => {
                let flushed = self.endpoint.flush_unstable();
                self.route(ctx, flushed);
                // Delivery blackout: our FlushOk clock must stay an upper
                // bound on what we have delivered until the view installs.
                self.endpoint.freeze(ctx.now());
            }
            FlushAction::ViewInstalled { view, cut } => {
                let members: Vec<usize> = view.members.iter().map(|p| p.0).collect();
                self.events.push(NodeEvent::Install {
                    id: view.id.0,
                    members: members.clone(),
                    cut: cut.clone(),
                });
                let (thawed, out) =
                    self.endpoint
                        .on_view_install(ctx.now(), view.id.0, &members, &cut);
                // pccast re-forwards thawed deliveries on its fresh
                // links; cbcast emits nothing here.
                self.route(ctx, out);
                self.log_deliveries(thawed);
            }
            FlushAction::None => {}
        }
    }

    fn is_member(&self) -> bool {
        self.engine.view().members.iter().any(|p| p.0 == self.me)
    }
}

impl Process<Wire<u64>> for ChaosNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Wire<u64>>) {
        self.armed_tick = ctx.now() + TICK_EVERY;
        ctx.set_timer(TICK, TICK_EVERY);
        self.armed_app = ctx.now() + self.app_every;
        ctx.set_timer(APP, self.app_every);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Wire<u64>>, _f: ProcessId, msg: Wire<u64>) {
        match &msg {
            Wire::Heartbeat { from, view_id } => {
                self.detector.heard_from(*from, ctx.now());
                let out = self.engine.on_heartbeat(*from, *view_id);
                self.route(ctx, out);
            }
            Wire::Flush { .. } | Wire::FlushOk { .. } | Wire::Install { .. } => {
                let clock = self.endpoint.clock().clone();
                let (action, out) = self.engine.on_wire(ctx.now(), &msg, &clock);
                self.route(ctx, out);
                self.handle_action(ctx, action);
            }
            _ => {
                let (dels, out) = self.endpoint.on_wire(ctx.now(), msg);
                self.route(ctx, out);
                self.log_deliveries(dels);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Wire<u64>>, t: TimerId) {
        match t {
            TICK => {
                if ctx.now() != self.armed_tick {
                    return; // stale chain from before a crash
                }
                let out = self.endpoint.on_tick(ctx.now());
                self.route(ctx, out);
                if self.detector.should_beat(ctx.now()) {
                    let hb = Wire::Heartbeat {
                        from: self.me,
                        view_id: self.engine.view().id,
                    };
                    self.route(ctx, vec![(Dest::All, hb)]);
                }
                // Full suspect set every tick (not just new suspicions):
                // this is what re-derives a completable proposal after a
                // flush wedges on a member that died before acking.
                self.detector.check(ctx.now());
                let suspects = self.detector.suspects();
                if !suspects.is_empty() {
                    let clock = self.endpoint.clock().clone();
                    let (action, out) = self.engine.suspect(ctx.now(), &suspects, &clock);
                    self.route(ctx, out);
                    self.handle_action(ctx, action);
                }
                let clock = self.endpoint.clock().clone();
                let retries = self.engine.on_tick(ctx.now(), &clock);
                self.route(ctx, retries);
                self.armed_tick = ctx.now() + TICK_EVERY;
                ctx.set_timer(TICK, TICK_EVERY);
            }
            APP => {
                if ctx.now() != self.armed_app {
                    return;
                }
                // An evicted member stops originating traffic once it
                // learns it is out; survivors would discard it anyway.
                if ctx.now() < self.send_until && self.engine.can_send() && self.is_member() {
                    self.next += 1;
                    let (d, out) = self.endpoint.multicast(ctx.now(), self.next);
                    let vt = self.endpoint.clock().clone();
                    self.events.push(NodeEvent::Send { id: d.id, vt });
                    self.events.push(NodeEvent::Deliver { id: d.id });
                    self.route(ctx, out);
                }
                self.armed_app = ctx.now() + self.app_every;
                ctx.set_timer(APP, self.app_every);
            }
            _ => {}
        }
    }

    fn on_recover(&mut self, ctx: &mut Ctx<'_, Wire<u64>>) {
        if !self.knobs.no_detector_reset {
            // S1 fix: the heartbeat table is stale by the whole outage;
            // without a reset every peer looks dead on the next check.
            self.detector.reset(ctx.now());
        }
        self.armed_tick = ctx.now() + TICK_EVERY;
        ctx.set_timer(TICK, TICK_EVERY);
        self.armed_app = ctx.now() + self.app_every;
        ctx.set_timer(APP, self.app_every);
    }

    fn sample(&self, emit: &mut dyn FnMut(&str, f64)) {
        self.endpoint.sample(emit);
    }
}

fn fnv1a(digest: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *digest ^= b as u64;
        *digest = digest.wrapping_mul(0x100_0000_01b3);
    }
}

fn digest_logs(logs: &[ProcessLog]) -> u64 {
    let mut d: u64 = 0xcbf2_9ce4_8422_2325;
    for log in logs {
        fnv1a(&mut d, &(log.who as u64).to_le_bytes());
        fnv1a(&mut d, &[log.alive_at_end as u8, log.frozen as u8]);
        fnv1a(&mut d, &log.final_clock.encode());
        for ev in &log.events {
            match ev {
                NodeEvent::Send { id, vt } => {
                    fnv1a(&mut d, b"S");
                    fnv1a(&mut d, &(id.sender as u64).to_le_bytes());
                    fnv1a(&mut d, &id.seq.to_le_bytes());
                    fnv1a(&mut d, &vt.encode());
                }
                NodeEvent::Deliver { id } => {
                    fnv1a(&mut d, b"D");
                    fnv1a(&mut d, &(id.sender as u64).to_le_bytes());
                    fnv1a(&mut d, &id.seq.to_le_bytes());
                }
                NodeEvent::Install { id, members, cut } => {
                    fnv1a(&mut d, b"I");
                    fnv1a(&mut d, &id.to_le_bytes());
                    for m in members {
                        fnv1a(&mut d, &(*m as u64).to_le_bytes());
                    }
                    fnv1a(&mut d, &cut.encode());
                }
            }
        }
    }
    d
}

/// Collects the whole group's wait edges at `at` — skipping crashed
/// processes, whose stale holdback is not "blocked" — resolves pccast
/// link-slot waits against the sender side's ARQ logs (only a global
/// view can name the message occupying a constant-metadata link
/// position), and analyses the merged graph. When `hist` is given,
/// every blocked edge's age is recorded into it. Pure over `&self`
/// views: calling this cannot perturb the run.
pub fn snapshot_stalls(
    at: SimTime,
    procs: &[(&dyn Any, bool)],
    tracker: &mut StallTracker,
    hist: Option<&mut Histogram>,
) -> StallSnapshot {
    let nodes: Vec<Option<&ChaosNode>> = procs
        .iter()
        .map(|(p, alive)| {
            if *alive {
                p.downcast_ref::<ChaosNode>()
            } else {
                None
            }
        })
        .collect();
    let mut edges = Vec::new();
    for node in nodes.iter().flatten() {
        edges.extend(node.wait_edges());
    }
    for e in &mut edges {
        if let WaitNode::LinkSlot { to, from, seq } = e.to {
            if let Some(Some(sender)) = nodes.get(from) {
                if let Some(id) = sender.endpoint.link_log_lookup(to, seq) {
                    e.to = WaitNode::Msg(id);
                }
            }
        }
    }
    // Deterministic analysis input regardless of per-endpoint iteration
    // order (indexed holdbacks iterate in hash order).
    edges.sort_by(|a, b| (a.from, a.to, a.since, a.reason).cmp(&(b.from, b.to, b.since, b.reason)));
    if let Some(h) = hist {
        for e in &edges {
            h.record(at.saturating_since(e.since));
        }
    }
    analyze(&edges, at, tracker)
}

/// Runs one seeded campaign: generate the fault plan, run the group
/// under it, extract the logs, and check the invariants.
pub fn run_campaign(seed: u64, cfg: &CampaignConfig) -> CampaignResult {
    run_campaign_with(seed, cfg, ProbeHandle::none())
}

/// [`run_campaign`] with an observability probe installed on every
/// node's endpoint. Probe emissions are read-only, so the result —
/// including the digest — is identical to an unprobed run of the same
/// seed; only the probe's recording differs. The latency ledger rides
/// along by default (it is itself a probe, so it cannot perturb the
/// run either).
pub fn run_campaign_with(seed: u64, cfg: &CampaignConfig, probe: ProbeHandle) -> CampaignResult {
    run_campaign_with_opts(seed, cfg, probe, true)
}

/// [`run_campaign_with`], with the latency-provenance ledger optional.
/// `ledger: false` runs the caller's probe alone — the determinism
/// tests pin that both settings produce byte-identical digests.
pub fn run_campaign_with_opts(
    seed: u64,
    cfg: &CampaignConfig,
    probe: ProbeHandle,
    ledger: bool,
) -> CampaignResult {
    let plan = FaultPlan::generate(seed, cfg.n, &cfg.plan);
    let mut sim = SimBuilder::new(seed)
        .net(NetConfig::lossy_lan(cfg.drop_probability))
        .sample_every(SAMPLE_EVERY)
        .build::<Wire<u64>>();
    // The tee folds every event into the ledger while forwarding to the
    // caller's probe (flight recorder, usually). Shared via `Rc` so the
    // sampler below can read live gauges — sound single-threaded.
    let tee: Option<Rc<RefCell<TeeProbe>>> = if ledger {
        Some(Rc::new(RefCell::new(TeeProbe::new(probe.clone()))))
    } else {
        None
    };
    let node_probe = match &tee {
        Some(t) => ProbeHandle::new(Rc::clone(t) as Rc<RefCell<dyn Probe>>),
        None => probe,
    };
    for me in 0..cfg.n {
        sim.add_process(ChaosNode::with_probe(me, cfg, node_probe.clone()));
    }
    plan.apply(&mut sim);
    // Live wait-graph analytics ride the sampling cadence: the hook sees
    // every process read-only at each tick, so the run's digest cannot
    // change (the determinism tests below pin this).
    let tracker = Rc::new(RefCell::new(StallTracker::new()));
    let wait_hist = Rc::new(RefCell::new(Histogram::new()));
    let timeline: Rc<RefCell<Vec<(SimTime, StallSnapshot)>>> = Rc::new(RefCell::new(Vec::new()));
    {
        let tracker = Rc::clone(&tracker);
        let wait_hist = Rc::clone(&wait_hist);
        let timeline = Rc::clone(&timeline);
        let tee = tee.clone();
        sim.set_group_sampler(Box::new(move |at, procs, metrics| {
            let snap = snapshot_stalls(
                at,
                procs,
                &mut tracker.borrow_mut(),
                Some(&mut wait_hist.borrow_mut()),
            );
            metrics.sample("ts.stall.count", at, snap.stalls.len() as f64);
            metrics.sample("ts.stall.max_age_ms", at, snap.max_age.as_millis_f64());
            metrics.sample("ts.stall.worst_scc", at, snap.worst_scc_size as f64);
            if let Some(t) = &tee {
                let l = &t.borrow().ledger;
                metrics.sample("ts.latency.mean_us", at, l.live_mean_us());
                metrics.sample("ts.latency.open", at, l.live_open() as f64);
                metrics.sample("ts.latency.delivered", at, l.live_delivered() as f64);
            }
            timeline.borrow_mut().push((at, snap));
        }));
    }
    let events_processed = sim.run_until(cfg.plan.horizon);

    let crashed = plan.crashed_at_horizon();
    let mut logs = Vec::with_capacity(cfg.n);
    let mut blocked_reports = Vec::new();
    let mut hold_hist = Histogram::new();
    for p in 0..cfg.n {
        let node: &ChaosNode = sim.process(ProcessId(p)).expect("chaos node present");
        hold_hist.merge(node.hold_histogram());
        // Wait-graphs are only meaningful for processes that were up at
        // the horizon: a crashed node's stale holdback is not "blocked".
        if !crashed.contains(&p) {
            let reports = node.endpoint.blocked_report();
            if !reports.is_empty() {
                blocked_reports.push((p, reports));
            }
        }
        logs.push(ProcessLog {
            who: p,
            alive_at_end: !crashed.contains(&p),
            events: node.events.clone(),
            final_clock: node.endpoint.clock().clone(),
            decode_errors: node.endpoint.stats().ts_decode_errors,
            parked: node.endpoint.parked_len() as u64,
            frozen: node.endpoint.is_frozen(),
        });
        if std::env::var("CHAOS_ENGINE_DEBUG").is_ok() {
            eprintln!(
                "p{p}: view={:?} proposal={:?} suspects={:?}",
                node.engine.view(),
                node.engine.proposal(),
                node.detector.suspects(),
            );
        }
    }

    let violations = check(&logs);
    let views_installed = logs
        .iter()
        .flat_map(|l| &l.events)
        .filter_map(|ev| match ev {
            NodeEvent::Install { id, .. } => Some(*id),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    let delivered_total = logs
        .iter()
        .flat_map(|l| &l.events)
        .filter(|ev| matches!(ev, NodeEvent::Deliver { .. }))
        .count() as u64;
    let final_members: Vec<usize> = logs
        .iter()
        .filter(|l| l.alive_at_end)
        .flat_map(|l| &l.events)
        .filter_map(|ev| match ev {
            NodeEvent::Install { id, members, .. } => Some((*id, members.clone())),
            _ => None,
        })
        .max_by_key(|(id, _)| *id)
        .map(|(_, m)| m)
        .unwrap_or_else(|| (0..cfg.n).collect());
    let survivors: Vec<usize> = final_members
        .iter()
        .copied()
        .filter(|p| !crashed.contains(p))
        .collect();
    let evicted_live: Vec<usize> = (0..cfg.n)
        .filter(|p| !crashed.contains(p) && !final_members.contains(p))
        .collect();
    let digest = digest_logs(&logs);
    let blocked = is_blocked(&logs);
    let stall_timeline = timeline.borrow().clone();
    let stalls = stall_timeline
        .last()
        .map(|(_, s)| s.clone())
        .unwrap_or_default();
    let wait_hist = wait_hist.borrow().clone();
    let latency = tee
        .map(|t| t.borrow().ledger.finalize(cfg.plan.horizon))
        .unwrap_or_default();

    CampaignResult {
        seed,
        plan,
        logs,
        violations,
        views_installed,
        delivered_total,
        evicted_live,
        survivors,
        blocked,
        digest,
        blocked_reports,
        hold_hist,
        events_processed,
        stalls,
        stall_timeline,
        wait_hist,
        latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vt(entries: &[u64]) -> VectorClock {
        VectorClock::from_entries(entries.to_vec())
    }

    fn id(sender: usize, seq: u64) -> MsgId {
        MsgId { sender, seq }
    }

    fn quiet_log(who: usize) -> ProcessLog {
        ProcessLog {
            who,
            alive_at_end: true,
            events: Vec::new(),
            final_clock: VectorClock::new(3),
            decode_errors: 0,
            parked: 0,
            frozen: false,
        }
    }

    #[test]
    fn empty_history_is_clean() {
        let logs: Vec<ProcessLog> = (0..3).map(quiet_log).collect();
        assert!(check(&logs).is_empty());
    }

    #[test]
    fn checker_flags_duplicate_delivery() {
        let mut logs: Vec<ProcessLog> = (0..3).map(quiet_log).collect();
        logs[0].events = vec![
            NodeEvent::Send {
                id: id(0, 1),
                vt: vt(&[1, 0, 0]),
            },
            NodeEvent::Deliver { id: id(0, 1) },
            NodeEvent::Deliver { id: id(0, 1) },
        ];
        logs[0].final_clock = vt(&[1, 0, 0]);
        let v = check(&logs);
        assert!(
            v.iter()
                .any(|x| matches!(x, Violation::DuplicateDelivery { who: 0, .. })),
            "{v:?}"
        );
    }

    #[test]
    fn checker_flags_causal_inversion() {
        // p1 delivers p0's second message before the first.
        let mut logs: Vec<ProcessLog> = (0..3).map(quiet_log).collect();
        logs[0].events = vec![
            NodeEvent::Send {
                id: id(0, 1),
                vt: vt(&[1, 0, 0]),
            },
            NodeEvent::Deliver { id: id(0, 1) },
            NodeEvent::Send {
                id: id(0, 2),
                vt: vt(&[2, 0, 0]),
            },
            NodeEvent::Deliver { id: id(0, 2) },
        ];
        logs[0].final_clock = vt(&[2, 0, 0]);
        logs[1].events = vec![
            NodeEvent::Deliver { id: id(0, 2) },
            NodeEvent::Deliver { id: id(0, 1) },
        ];
        logs[1].final_clock = vt(&[2, 0, 0]);
        logs[2].final_clock = vt(&[2, 0, 0]);
        logs[2].events = vec![
            NodeEvent::Deliver { id: id(0, 1) },
            NodeEvent::Deliver { id: id(0, 2) },
        ];
        let v = check(&logs);
        assert!(
            v.iter()
                .any(|x| matches!(x, Violation::FifoGap { who: 1, .. })),
            "{v:?}"
        );
    }

    #[test]
    fn checker_flags_beyond_cut_delivery() {
        // View 1 removes p2 with cut[2] = 1; p0 then delivers 2:2.
        let mut logs: Vec<ProcessLog> = (0..3).map(quiet_log).collect();
        let sends = vec![
            NodeEvent::Send {
                id: id(2, 1),
                vt: vt(&[0, 0, 1]),
            },
            NodeEvent::Send {
                id: id(2, 2),
                vt: vt(&[0, 0, 2]),
            },
        ];
        logs[2].events = sends;
        logs[2].alive_at_end = false;
        logs[0].events = vec![
            NodeEvent::Deliver { id: id(2, 1) },
            NodeEvent::Install {
                id: 1,
                members: vec![0, 1],
                cut: vt(&[0, 0, 1]),
            },
            NodeEvent::Deliver { id: id(2, 2) },
        ];
        logs[0].final_clock = vt(&[0, 0, 2]);
        logs[1].events = vec![
            NodeEvent::Deliver { id: id(2, 1) },
            NodeEvent::Install {
                id: 1,
                members: vec![0, 1],
                cut: vt(&[0, 0, 1]),
            },
        ];
        logs[1].final_clock = vt(&[0, 0, 1]);
        let v = check(&logs);
        assert!(
            v.iter()
                .any(|x| matches!(x, Violation::BeyondCutDelivery { who: 0, .. })),
            "{v:?}"
        );
        assert!(
            v.iter()
                .any(|x| matches!(x, Violation::ClockDivergence { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn checker_flags_view_disagreement() {
        let mut logs: Vec<ProcessLog> = (0..3).map(quiet_log).collect();
        logs[0].events = vec![NodeEvent::Install {
            id: 1,
            members: vec![0, 1],
            cut: vt(&[0, 0, 0]),
        }];
        logs[1].events = vec![NodeEvent::Install {
            id: 1,
            members: vec![0, 2],
            cut: vt(&[0, 0, 0]),
        }];
        let v = check(&logs);
        assert!(
            v.iter()
                .any(|x| matches!(x, Violation::ViewDisagreement { id: 1, .. })),
            "{v:?}"
        );
    }

    #[test]
    fn agreed_history_below_cut_is_not_flagged() {
        // Delivering a removed sender's message at-or-below the cut after
        // the install is the agreed-history repair path, not a violation.
        let mut logs: Vec<ProcessLog> = (0..3).map(quiet_log).collect();
        logs[2].events = vec![NodeEvent::Send {
            id: id(2, 1),
            vt: vt(&[0, 0, 1]),
        }];
        logs[2].alive_at_end = false;
        for log in logs.iter_mut().take(2) {
            log.events = vec![
                NodeEvent::Install {
                    id: 1,
                    members: vec![0, 1],
                    cut: vt(&[0, 0, 1]),
                },
                NodeEvent::Deliver { id: id(2, 1) },
            ];
            log.final_clock = vt(&[0, 0, 1]);
        }
        assert!(check(&logs).is_empty());
    }

    #[test]
    fn vanilla_campaign_upholds_invariants() {
        let cfg = CampaignConfig::default();
        for seed in [1, 7, 23] {
            let r = run_campaign(seed, &cfg);
            assert!(
                r.violations.is_empty(),
                "seed {seed}: {:?}\nplan: {}",
                r.violations,
                r.plan
            );
            assert!(r.delivered_total > 0, "seed {seed}: nothing delivered");
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let cfg = CampaignConfig::default();
        let a = run_campaign(11, &cfg);
        let b = run_campaign(11, &cfg);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.violations, b.violations);
        assert_eq!(format!("{}", a.plan), format!("{}", b.plan));
        // The wait-graph analytics replay byte-identically too.
        let render = |r: &CampaignResult| {
            r.stall_timeline
                .iter()
                .flat_map(|(at, s)| {
                    s.stalls
                        .iter()
                        .map(move |st| format!("{at:?} {} {}", st.summary(), st.render_path()))
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(render(&a), render(&b));
        assert_eq!(a.wait_hist.count(), b.wait_hist.count());
    }

    #[test]
    fn probed_campaign_matches_unprobed_digest() {
        // The whole observability layer rides on this: recording every
        // span and phase must not perturb the run.
        let cfg = CampaignConfig::default();
        let plain = run_campaign(11, &cfg);
        let (probe, rec) = ProbeHandle::recorder(256);
        let probed = run_campaign_with(11, &cfg, probe);
        assert_eq!(plain.digest, probed.digest);
        assert_eq!(plain.violations, probed.violations);
        assert_eq!(plain.delivered_total, probed.delivered_total);
        // And the recorder actually saw protocol activity.
        let rec = rec.borrow();
        assert!((0..cfg.n).any(|p| !rec.events(p).is_empty()));
    }

    #[test]
    fn ledger_rides_every_campaign_without_changing_the_digest() {
        // The latency ledger is on by default; a ledger-off run of the
        // same seed must produce a byte-identical digest, and the
        // ledger-on run must actually have attributed something.
        let cfg = CampaignConfig::default();
        let with = run_campaign(11, &cfg);
        let without = run_campaign_with_opts(11, &cfg, ProbeHandle::none(), false);
        assert_eq!(with.digest, without.digest);
        assert_eq!(with.violations, without.violations);
        assert_eq!(with.delivered_total, without.delivered_total);
        assert!(
            !with.latency.entries.is_empty(),
            "ledger-on run attributed nothing"
        );
        assert!(without.latency.entries.is_empty());
        assert!(with
            .latency
            .per_phase
            .contains_key(&crate::ledger::PhaseId::Wire));
        // Every closed entry tiles exactly: segment durations sum to the
        // end-to-end latency, no gaps, no double-counting.
        for e in &with.latency.entries {
            let total = e
                .segments
                .iter()
                .fold(SimDuration::ZERO, |acc, s| acc + s.dur());
            assert_eq!(
                total,
                e.latency(),
                "entry {} at p{} does not tile: {:?}",
                e.span,
                e.receiver,
                e.segments
            );
        }
    }

    #[test]
    fn wedged_flush_ledger_charges_the_flush_barrier() {
        // Seed 2 with flush retries disabled wedges the S2 view change;
        // the ledger must attribute the stuck messages' time to the
        // flush-barrier phase and name it as their critical path.
        let cfg = CampaignConfig {
            n: 7,
            group: GroupConfig {
                indexed_holdback: true,
                delta_timestamps: true,
                ..GroupConfig::default()
            },
            knobs: BugKnobs {
                no_flush_retry: true,
                ..BugKnobs::default()
            },
            ..CampaignConfig::default()
        };
        let r = run_campaign(2, &cfg);
        assert!(!r.violations.is_empty());
        let flush_share = |e: &crate::ledger::LedgerEntry| {
            let flush = e
                .phase_totals()
                .get(&crate::ledger::PhaseId::Flush)
                .copied()
                .unwrap_or(SimDuration::ZERO);
            flush.as_micros() as f64 / e.latency().as_micros().max(1) as f64
        };
        let wedged = r
            .latency
            .entries
            .iter()
            .filter(|e| e.open)
            .max_by(|a, b| flush_share(a).total_cmp(&flush_share(b)))
            .expect("wedged flush must leave open ledger entries");
        let totals = wedged.phase_totals();
        let flush = totals
            .get(&crate::ledger::PhaseId::Flush)
            .copied()
            .unwrap_or(SimDuration::ZERO);
        let share = flush.as_micros() as f64 / wedged.latency().as_micros().max(1) as f64;
        assert!(
            share >= 0.9,
            "flush-barrier share {share:.2} below 90% for {} at p{}: {:?}",
            wedged.span,
            wedged.receiver,
            wedged.segments
        );
        assert_eq!(
            wedged.critical_path(),
            Some(crate::ledger::PhaseId::Flush),
            "critical path must be the flush barrier"
        );
    }

    #[test]
    fn wedged_flush_produces_blocked_or_frozen_evidence() {
        // Seed 2 with flush retries disabled wedges the S2 view change;
        // the campaign result must carry post-mortem evidence (frozen
        // survivors and/or holdback wait-graphs) for the explainer.
        let cfg = CampaignConfig {
            n: 7,
            group: GroupConfig {
                indexed_holdback: true,
                delta_timestamps: true,
                ..GroupConfig::default()
            },
            knobs: BugKnobs {
                no_flush_retry: true,
                ..BugKnobs::default()
            },
            ..CampaignConfig::default()
        };
        let r = run_campaign(2, &cfg);
        assert!(
            !r.violations.is_empty(),
            "seed 2 + no_flush_retry must violate"
        );
        let has_evidence =
            !r.blocked_reports.is_empty() || r.logs.iter().any(|l| l.alive_at_end && l.frozen);
        assert!(has_evidence, "no explainable evidence in {r:?}");
        // The wait-graph must rank the wedged flush first: a persistent
        // stall whose representative path names the flush phase at the
        // suspected coordinator.
        let top = r
            .stalls
            .stalls
            .first()
            .expect("wedged flush must produce a ranked stall");
        assert!(
            top.is_persistent(),
            "wedge not persistent: {}",
            top.summary()
        );
        assert!(
            top.render_path().contains("flush@P"),
            "top stall does not name the flush coordinator: {} / {}",
            top.summary(),
            top.render_path()
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]
            /// On any seed-derived fault schedule, in every cell of
            /// {cbcast,pccast} × {scan,indexed} × {full,delta}, every
            /// ledger entry's phase segments tile the send→end interval
            /// exactly: contiguous, no gaps, no double-counting.
            #[test]
            fn ledger_phases_tile_exactly_on_random_fault_plans(
                seed in 0u64..10_000,
                n in 3usize..8,
                indexed in proptest::bool::ANY,
                delta in proptest::bool::ANY,
                pccast in proptest::bool::ANY,
            ) {
                let cfg = CampaignConfig {
                    n,
                    group: GroupConfig {
                        indexed_holdback: indexed,
                        delta_timestamps: delta,
                        discipline: if pccast {
                            crate::group::CausalDiscipline::Pccast
                        } else {
                            crate::group::CausalDiscipline::Cbcast
                        },
                        ..GroupConfig::default()
                    },
                    ..CampaignConfig::default()
                };
                let r = run_campaign(seed, &cfg);
                prop_assert!(!r.latency.entries.is_empty(), "seed {seed}: no ledger entries");
                for e in &r.latency.entries {
                    let mut cursor = e.send_at;
                    for s in &e.segments {
                        prop_assert_eq!(
                            s.from, cursor,
                            "seed {} {} at p{}: gap or overlap before {:?} (segments {:?})",
                            seed, e.span, e.receiver, s, e.segments
                        );
                        prop_assert!(s.to > s.from, "empty segment {s:?}");
                        cursor = s.to;
                    }
                    prop_assert_eq!(
                        cursor, e.end,
                        "seed {} {} at p{}: segments end short of the entry (segments {:?})",
                        seed, e.span, e.receiver, e.segments
                    );
                }
            }

            /// Any seed-derived fault schedule, group size and
            /// optimisation cell upholds the virtual-synchrony
            /// invariants, and every pair of survivors delivered
            /// identical per-sender prefixes: one's delivery sequence
            /// from each sender is a prefix of the other's.
            #[test]
            fn random_fault_plans_uphold_virtual_synchrony(
                seed in 0u64..10_000,
                n in 3usize..8,
                indexed in proptest::bool::ANY,
                delta in proptest::bool::ANY,
            ) {
                let cfg = CampaignConfig {
                    n,
                    group: GroupConfig {
                        indexed_holdback: indexed,
                        delta_timestamps: delta,
                        ..GroupConfig::default()
                    },
                    ..CampaignConfig::default()
                };
                let r = run_campaign(seed, &cfg);
                prop_assert!(
                    r.violations.is_empty(),
                    "seed {seed} n={n} indexed={indexed} delta={delta}: {:?}\n{}",
                    r.violations,
                    r.plan
                );
                // False-positive guard: a violation-free run must report
                // no persistent wait-graph cycle once the quiescent tail
                // is reached. (Blocked primary-partition runs wedge by
                // design, but into *chains* onto dead processes, never
                // persistent cycles.)
                prop_assert_eq!(
                    r.stalls.persistent_cycles(),
                    0,
                    "seed {} n={}: clean run ended with a persistent cycle: {:?}\n{}",
                    seed,
                    n,
                    r.stalls.stalls.iter().map(|s| s.summary()).collect::<Vec<_>>(),
                    r.plan
                );
                // Per-sender delivery sequences, derived independently of
                // the checker's replay.
                let mut per_proc: Vec<Vec<Vec<u64>>> = Vec::new();
                for log in r.logs.iter().filter(|l| r.survivors.contains(&l.who)) {
                    let mut seqs = vec![Vec::new(); n];
                    for ev in &log.events {
                        if let NodeEvent::Deliver { id } = ev {
                            seqs[id.sender].push(id.seq);
                        }
                    }
                    per_proc.push(seqs);
                }
                for a in 0..per_proc.len() {
                    for b in a + 1..per_proc.len() {
                        for (s, x) in per_proc[a].iter().enumerate() {
                            let y = &per_proc[b][s];
                            let k = x.len().min(y.len());
                            prop_assert_eq!(
                                &x[..k],
                                &y[..k],
                                "seed {} sender {}: survivors disagree on a prefix",
                                seed,
                                s
                            );
                        }
                    }
                }
            }
        }
    }
}
