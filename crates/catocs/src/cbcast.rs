//! Causal multicast (`cbcast`) — the centerpiece of CATOCS.
//!
//! This is the ISIS "lightweight causal multicast" design \[Birman,
//! Schiper, Stephenson '91\]:
//!
//! - every multicast carries the sender's vector time;
//! - a receiver delivers a message from member `s` with timestamp `vt`
//!   only when `vt[s] == local[s] + 1` and `vt[k] <= local[k]` for all
//!   `k != s`; otherwise the message waits in a *holdback queue*;
//! - every process buffers every message (its own and others') until the
//!   message is *stable* — known delivered everywhere — so that missing
//!   causal predecessors can be refetched from whoever references them
//!   (NACK-based recovery). This buffering is exactly the memory cost the
//!   paper's §5 predicts grows quadratically system-wide;
//! - stability information travels on the vector timestamps of data
//!   messages (piggyback mode) and/or periodic ack gossip.
//!
//! The endpoint is a pure state machine: the caller supplies the current
//! time and delivers wire messages; the endpoint returns deliveries and
//! outbound messages. This makes the protocol directly unit-testable and
//! lets the same code run under `simnet` or a real transport.

use crate::group::{GroupConfig, MsgId};
use crate::holdback::{HoldbackQueue, Pending};
use crate::stability::StabilityTracker;
use crate::wire::{DataMsg, Delivery, Dest, EndpointStats, Out, VtWire, Wire};
use clocks::vector::VectorClock;
use simnet::obs::{ObsEvent, PhaseEdge, PhaseKind, ProbeHandle, SpanId, Stage, WaitKind};
use simnet::time::SimTime;
use std::collections::{BTreeMap, BTreeSet};

/// The observability span for a message: its id, viewed group-wide.
fn span_of(id: MsgId) -> SpanId {
    SpanId {
        origin: id.sender,
        seq: id.seq,
    }
}

/// Why a causal predecessor of a held message has not delivered here —
/// one link of the blocked-on explanation chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitStatus {
    /// The predecessor itself sits in this holdback queue; its own
    /// missing predecessors are the real blockers — follow the chain.
    HeldHere,
    /// A delta-stamped copy arrived but cannot decode until the chain
    /// base is re-seeded (parked).
    Parked,
    /// Known missing and being chased via NACK; `referenced_by` is the
    /// member whose message first referenced it.
    Chased {
        /// Who we first learned of the missing message from.
        referenced_by: usize,
    },
    /// Its sender was removed by a view change and the id lies beyond
    /// the flush cut — no survivor may ever deliver it.
    NeverDeliverable {
        /// The agreed cut for the removed sender.
        cut: u64,
    },
    /// Nothing references it yet from this process's point of view.
    Unknown,
}

impl std::fmt::Display for WaitStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaitStatus::HeldHere => write!(f, "held here (waiting on its own predecessors)"),
            WaitStatus::Parked => write!(f, "parked (delta undecodable until chain re-seeds)"),
            WaitStatus::Chased { referenced_by } => {
                write!(
                    f,
                    "missing; chased via NACK (referenced by P{referenced_by})"
                )
            }
            WaitStatus::NeverDeliverable { cut } => {
                write!(f, "never deliverable (sender removed, beyond cut {cut})")
            }
            WaitStatus::Unknown => write!(f, "not yet observed"),
        }
    }
}

/// One undelivered causal predecessor of a blocked message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitCause {
    /// The predecessor's id.
    pub id: MsgId,
    /// Its status at this process.
    pub status: WaitStatus,
}

/// Why a pccast per-link reorder position has not been consumed — the
/// link-level analogue of [`WaitStatus`]. pccast copies carry constant
/// metadata, so an absent position has no known message id; the wait can
/// only name the link and slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkWaitStatus {
    /// Nothing has arrived at the position (ARQ gap — a retransmission
    /// is owed by the link sender).
    Gap,
    /// A skip marker occupies the position but has not been consumed
    /// yet; the copy will arrive by another route.
    SkipPending,
    /// The link's sender is dead or evicted: the position can never be
    /// filled on this link; only a view change clears it.
    Severed,
}

impl std::fmt::Display for LinkWaitStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkWaitStatus::Gap => write!(f, "nothing arrived (ARQ gap, awaiting retransmit)"),
            LinkWaitStatus::SkipPending => write!(f, "skip marker pending consumption"),
            LinkWaitStatus::Severed => write!(f, "link severed (sender dead or evicted)"),
        }
    }
}

/// A per-link reorder-cursor wait of a pccast blocked message: which
/// incoming link, which position, and why it is empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkWait {
    /// The peer whose incoming link the wait is on.
    pub from: usize,
    /// The link position the reorder cursor waits for.
    pub pos: u64,
    /// Why that position is unfilled.
    pub status: LinkWaitStatus,
}

/// A message stuck in the holdback queue (or, for pccast, a per-link
/// reorder buffer) and everything it waits on — produced by
/// [`CbcastEndpoint::blocked_report`] for the `experiments explain` CLI.
#[derive(Debug, Clone)]
pub struct BlockedReport {
    /// The blocked message.
    pub msg: MsgId,
    /// When it arrived here.
    pub arrived_at: SimTime,
    /// Every undelivered causal predecessor, in (sender, seq) order.
    pub waits: Vec<WaitCause>,
    /// pccast only: positional waits on per-link reorder cursors (empty
    /// for cbcast, whose holdback waits are always message-identified).
    pub link_waits: Vec<LinkWait>,
}

/// Static wait-edge reason for a predecessor's [`WaitStatus`] (the
/// specifics — cut values, referencing members — live in the nodes and
/// the full [`BlockedReport`]).
pub(crate) fn wait_reason(status: WaitStatus) -> &'static str {
    match status {
        WaitStatus::HeldHere => "predecessor held here too",
        WaitStatus::Parked => "predecessor parked (delta undecodable)",
        WaitStatus::Chased { .. } => "predecessor missing, chased via NACK",
        WaitStatus::NeverDeliverable { .. } => "predecessor never deliverable (beyond cut)",
        WaitStatus::Unknown => "predecessor not yet observed",
    }
}

/// Tracking for a message we know exists but have not received.
#[derive(Debug, Clone, Copy)]
struct Missing {
    /// Who referenced it (we NACK them first — the paper's §5: "the
    /// receiver of a new message assumes it can get copies of the causally
    /// referenced messages from the sender of the new message").
    referenced_by: usize,
    /// Last time we NACKed for it ([`SimTime::MAX`] = never).
    last_nack: SimTime,
}

/// The causal multicast endpoint for one group member.
///
/// # Examples
///
/// ```
/// use catocs::cbcast::CbcastEndpoint;
/// use catocs::group::GroupConfig;
/// use catocs::wire::{Dest, Wire};
/// use simnet::time::SimTime;
///
/// let cfg = GroupConfig::default();
/// let mut alice: CbcastEndpoint<&str> = CbcastEndpoint::new(0, 2, cfg.clone());
/// let mut bob: CbcastEndpoint<&str> = CbcastEndpoint::new(1, 2, cfg);
///
/// // Alice multicasts; the self-delivery is immediate.
/// let (self_delivery, out) = alice.multicast(SimTime::ZERO, "hello");
/// assert_eq!(self_delivery.payload, "hello");
///
/// // Bob receives the broadcast copy and delivers it causally.
/// let data = out
///     .into_iter()
///     .find_map(|(d, w)| (d == Dest::All).then_some(w))
///     .unwrap();
/// let (delivered, _out) = bob.on_wire(SimTime::from_millis(1), data);
/// assert_eq!(delivered[0].payload, "hello");
/// ```
#[derive(Debug)]
pub struct CbcastEndpoint<P> {
    me: usize,
    n: usize,
    cfg: GroupConfig,
    /// Delivered clock: `vt[k]` = number of messages from `k` delivered
    /// here (own sends count as delivered-at-send).
    vt: VectorClock,
    /// Messages received but not yet causally deliverable.
    holdback: HoldbackQueue<P>,
    /// Unstable messages retained for retransmission, by id.
    buffer: BTreeMap<MsgId, DataMsg<P>>,
    /// Group-wide delivery knowledge (matrix clock) and GC frontier.
    stability: StabilityTracker,
    /// Whether stability knowledge advanced since the last GC pass, and
    /// the frontier that pass used — so the per-event GC probe is O(1)
    /// instead of an O(buffer) retain on every wire event.
    stability_dirty: bool,
    gc_frontier: VectorClock,
    /// Known-missing messages awaiting NACK/recovery.
    missing: BTreeMap<MsgId, Missing>,
    /// Our previous data message's timestamp — the delta-encoding base.
    last_sent_vt: VectorClock,
    /// Per sender: seq of the latest message whose timestamp we decoded,
    /// and that timestamp — the base the next delta from that sender
    /// chains onto. The base is `None` right after a view install: every
    /// chain is invalidated then (the S3 fix — stale cross-view bases
    /// silently decoded wrong), and re-seeded by the full-encoded
    /// messages every member sends first in a new view.
    decode_chain: Vec<(u64, Option<VectorClock>)>,
    /// Per sender: delta-stamped messages that arrived ahead of their
    /// decode base, parked until the chain catches up (or dropped when a
    /// full retransmission jumps the chain past them).
    undecoded: Vec<BTreeMap<u64, DataMsg<P>>>,
    /// Which senders are members of the current view. Removed senders'
    /// messages are accepted only up to the flush cut.
    alive: Vec<bool>,
    /// Merged flush cut over all installed views: for a removed sender
    /// `s`, messages with `seq <= cut[s]` are part of the old view's
    /// agreed history and still deliverable; beyond it they are rejected.
    cut: VectorClock,
    /// Send the next multicast with a full-encoded timestamp regardless
    /// of config — set at view install so receivers can re-seed their
    /// invalidated decode chains.
    force_full_next: bool,
    /// Delivery blackout: while a flush is in progress (between sending
    /// our `FlushOk` clock and installing the view) nothing may be
    /// delivered, or this member could run past the clock it promised
    /// the coordinator and deliver a removed sender's message beyond the
    /// agreed cut. Incoming messages still accumulate in the holdback
    /// queue; [`CbcastEndpoint::on_view_install`] thaws and drains.
    frozen: bool,
    /// Campaign regression knob: when set, `on_view_install` skips the
    /// delta-chain reset (the S3 fix), reintroducing the stale-chain bug
    /// so fault campaigns can demonstrate the failing seed.
    skip_view_reset: bool,
    /// When the current freeze began (None when not frozen) — the
    /// latency ledger splits install-time holdback waits at this point
    /// into a classified wait and a flush-barrier wait.
    frozen_since: Option<SimTime>,
    /// Set for the duration of the install-time holdback drain: the
    /// freeze instant the just-ended flush began at.
    install_thaw: Option<SimTime>,
    /// Messages that arrived here after being chased via NACK — their
    /// dependents' holdback waits are attributed to repair, not to a
    /// plain causal dependency. Maintained unconditionally (cheap) so
    /// probed and unprobed runs execute identically.
    was_chased: BTreeSet<MsgId>,
    /// Observability sink. Disabled by default; emissions are read-only
    /// with respect to protocol state, so a probed run is byte-identical
    /// to an unprobed one.
    probe: ProbeHandle,
    stats: EndpointStats,
}

impl<P: Clone> CbcastEndpoint<P> {
    /// Creates the endpoint for member `me` of a group of `n`.
    pub fn new(me: usize, n: usize, cfg: GroupConfig) -> Self {
        assert!(me < n, "member index out of range");
        let holdback = HoldbackQueue::new(cfg.indexed_holdback, n);
        CbcastEndpoint {
            me,
            n,
            cfg,
            vt: VectorClock::new(n),
            holdback,
            buffer: BTreeMap::new(),
            stability: StabilityTracker::new(n),
            stability_dirty: false,
            gc_frontier: VectorClock::new(n),
            missing: BTreeMap::new(),
            last_sent_vt: VectorClock::new(n),
            // Zero-width initial bases: `decode_delta` resizes its base
            // clone to the delta's declared width (missing components
            // read as 0), so these decode identically to eager all-zero
            // width-`n` bases while keeping a fresh endpoint O(n) rather
            // than O(n²) — material for the N=4096 scaling runs.
            decode_chain: vec![(0, Some(VectorClock::new(0))); n],
            undecoded: vec![BTreeMap::new(); n],
            alive: vec![true; n],
            cut: VectorClock::new(n),
            force_full_next: false,
            frozen: false,
            skip_view_reset: false,
            frozen_since: None,
            install_thaw: None,
            was_chased: BTreeSet::new(),
            probe: ProbeHandle::none(),
            stats: EndpointStats::default(),
        }
    }

    /// Installs an observability probe. Span and phase events flow to it
    /// from every delivery-path method; with the default (disabled)
    /// handle nothing is even formatted.
    pub fn set_probe(&mut self, probe: ProbeHandle) {
        self.probe = probe;
    }

    /// Suspends all delivery until the next [`CbcastEndpoint::on_view_install`].
    /// Called when this member enters a flush: its `FlushOk` clock must
    /// stay an upper bound on what it has delivered until the cut is
    /// agreed. Receiving, buffering and NACK recovery continue.
    pub fn freeze(&mut self, now: SimTime) {
        if !self.frozen {
            self.frozen_since = Some(now);
            self.probe.emit(|| ObsEvent::Phase {
                at: now,
                who: self.me,
                kind: PhaseKind::Flush,
                edge: PhaseEdge::Begin,
                note: format!("{} unstable buffered", self.buffer.len()),
            });
        }
        self.frozen = true;
    }

    /// Whether delivery is currently frozen by a flush in progress.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Regression knob for the fault campaigns: reintroduces the S3 bug
    /// (stale delta decode chains surviving a view install). Never set
    /// outside tests and chaos experiments.
    pub fn debug_skip_view_reset(&mut self, on: bool) {
        self.skip_view_reset = on;
    }

    /// This member's index.
    pub fn me(&self) -> usize {
        self.me
    }

    /// Group size.
    pub fn group_size(&self) -> usize {
        self.n
    }

    /// The delivered vector clock.
    pub fn clock(&self) -> &VectorClock {
        &self.vt
    }

    /// Endpoint statistics.
    pub fn stats(&self) -> &EndpointStats {
        &self.stats
    }

    /// The stability tracker (for experiments that inspect frontiers).
    pub fn stability(&self) -> &StabilityTracker {
        &self.stability
    }

    /// Number of unstable messages currently buffered.
    pub fn buffered_len(&self) -> usize {
        self.buffer.len()
    }

    /// Current holdback-queue length.
    pub fn holdback_len(&self) -> usize {
        self.holdback.len()
    }

    /// Delta-stamped messages parked awaiting their decode base.
    pub fn parked_len(&self) -> usize {
        self.undecoded.iter().map(|m| m.len()).sum()
    }

    /// Retransmits every unstable buffered message to the whole group —
    /// the flush step of a view change (each survivor pushes what it has
    /// so the new view starts from a common message set).
    pub fn flush_unstable(&mut self) -> Vec<Out<P>> {
        let mut out = Vec::new();
        for m in self.buffer.values() {
            let mut copy = m.clone();
            copy.retransmit = true;
            copy.make_full();
            let w = Wire::Data(copy);
            self.stats.control_bytes += w.overhead_bytes() as u64;
            out.push((Dest::All, w));
        }
        out
    }

    /// The current group-wide stable frontier (for instrumentation).
    pub fn stable_frontier(&self) -> VectorClock {
        self.stability.stable_frontier()
    }

    /// How far this endpoint's delivered clock runs ahead of the
    /// group-wide stable frontier, in messages — the §5 stability-horizon
    /// lag. Every unit of lag is a message that must stay buffered for
    /// possible retransmission.
    ///
    /// Summed componentwise, not total-vs-total: after an eviction the
    /// surviving members' frontier can run *ahead* of an evicted-live
    /// node's clock in some components, and a saturating difference of
    /// totals would let that surplus cancel real lag in others, reporting
    /// zero while unstable messages still sit in the buffer.
    pub fn stability_lag(&self) -> u64 {
        let frontier = self.stability.stable_frontier();
        (0..self.n)
            .map(|s| self.vt.get(s).saturating_sub(frontier.get(s)))
            .sum()
    }

    /// Telemetry hook: instantaneous queue depths and buffering gauges,
    /// named for the time-series sampler (`simnet::process::Process::sample`).
    pub fn sample(&self, emit: &mut dyn FnMut(&str, f64)) {
        emit("cbcast.holdback", self.holdback.len() as f64);
        emit("cbcast.parked", self.parked_len() as f64);
        emit("cbcast.buffered", self.buffer.len() as f64);
        emit(
            "cbcast.buffered_bytes",
            self.stats.buffered_bytes_now as f64,
        );
        emit("cbcast.stability_lag", self.stability_lag() as f64);
    }

    /// Walks the holdback wait-graph and reports, for every blocked
    /// message, each undelivered causal predecessor and why it is absent
    /// (held here too, parked, chased via NACK, or never deliverable).
    /// Read-only and work-counter-neutral, so calling it cannot change a
    /// run's digests — the `experiments explain` CLI relies on that.
    pub fn blocked_report(&self) -> Vec<BlockedReport> {
        let mut reports: Vec<BlockedReport> = self
            .holdback
            .pending()
            .map(|p| {
                let mut waits = Vec::new();
                for k in 0..self.n {
                    let need = if k == p.msg.id.sender {
                        p.msg.id.seq.saturating_sub(1)
                    } else {
                        p.msg.vt.get(k)
                    };
                    for seq in (self.vt.get(k) + 1)..=need {
                        let id = MsgId { sender: k, seq };
                        waits.push(WaitCause {
                            id,
                            status: self.classify_wait(id),
                        });
                    }
                }
                BlockedReport {
                    msg: p.msg.id,
                    arrived_at: p.arrived_at,
                    waits,
                    link_waits: Vec::new(),
                }
            })
            .collect();
        // The indexed holdback iterates in hash order; sort for
        // deterministic output.
        reports.sort_by_key(|r| r.msg);
        reports
    }

    /// Contributes this endpoint's blocking edges to the live wait graph
    /// ([`crate::waitgraph`]): one `Msg -> Msg` edge per undelivered
    /// causal predecessor of every held message, plus `Msg -> Proc(me)`
    /// while delivery is frozen by a flush (the flush itself is linked
    /// onward by the membership layer). Read-only and
    /// work-counter-neutral, like [`CbcastEndpoint::blocked_report`].
    pub fn wait_edges(&self, out: &mut Vec<crate::waitgraph::WaitEdge>) {
        use crate::waitgraph::{WaitEdge, WaitNode};
        // Sorted for determinism: the indexed holdback iterates in hash
        // order. One edge per lagging sender — the *first* gap is the
        // FIFO blocker everything deeper queues behind; enumerating every
        // gap (as `blocked_report` does for the one-shot post-mortem)
        // would square the edge count on the sampling hot path.
        let mut pending: Vec<_> = self.holdback.pending().collect();
        pending.sort_unstable_by_key(|p| p.msg.id);
        for p in pending {
            let blocked = WaitNode::Msg(p.msg.id);
            for k in 0..self.n {
                let need = if k == p.msg.id.sender {
                    p.msg.id.seq.saturating_sub(1)
                } else {
                    p.msg.vt.get(k)
                };
                if need > self.vt.get(k) {
                    let gap = MsgId {
                        sender: k,
                        seq: self.vt.get(k) + 1,
                    };
                    out.push(WaitEdge {
                        from: blocked,
                        to: WaitNode::Msg(gap),
                        who: self.me,
                        since: p.arrived_at,
                        reason: wait_reason(self.classify_wait(gap)),
                    });
                }
            }
            if self.frozen {
                out.push(WaitEdge {
                    from: blocked,
                    to: WaitNode::Proc(self.me),
                    who: self.me,
                    since: p.arrived_at,
                    reason: "delivery frozen by flush",
                });
            }
        }
    }

    fn classify_wait(&self, id: MsgId) -> WaitStatus {
        if self.holdback.peek(id) {
            WaitStatus::HeldHere
        } else if self.undecoded[id.sender].contains_key(&id.seq) {
            WaitStatus::Parked
        } else if !self.alive[id.sender] && id.seq > self.cut.get(id.sender) {
            WaitStatus::NeverDeliverable {
                cut: self.cut.get(id.sender),
            }
        } else if let Some(m) = self.missing.get(&id) {
            WaitStatus::Chased {
                referenced_by: m.referenced_by,
            }
        } else {
            WaitStatus::Unknown
        }
    }

    /// Applies an installed view: `members` are the surviving member
    /// indices and `cut` is the flush cut agreed for the view.
    ///
    /// - Removed senders are marked dead: their parked deltas are
    ///   dropped, holdback entries beyond the cut purged, and anything
    ///   of theirs still missing at or below the cut is chased via NACK
    ///   (some survivor delivered it, so some survivor buffers it).
    /// - Every per-sender delta decode chain is invalidated (the S3 fix):
    ///   a delta crossing the view boundary must not decode against a
    ///   stale base. Senders re-seed receivers by sending their first
    ///   post-install message full-encoded (`force_full_next`).
    /// - Stability masks dead rows so the stable frontier (and GC) can
    ///   advance without the departed members' acks.
    /// - The delivery blackout ([`CbcastEndpoint::freeze`]) ends: the
    ///   holdback queue is drained and anything that became deliverable
    ///   during the flush is returned, in causal order.
    pub fn on_view_install(
        &mut self,
        now: SimTime,
        members: &[usize],
        cut: &VectorClock,
    ) -> Vec<Delivery<P>> {
        if self.frozen {
            self.probe.emit(|| ObsEvent::Phase {
                at: now,
                who: self.me,
                kind: PhaseKind::Flush,
                edge: PhaseEdge::End,
                note: String::new(),
            });
        }
        self.probe.emit(|| ObsEvent::Phase {
            at: now,
            who: self.me,
            kind: PhaseKind::Install,
            edge: PhaseEdge::Point,
            note: format!("members {members:?} cut {cut:?}"),
        });
        self.cut.merge(cut);
        for s in 0..self.n {
            if !members.contains(&s) && self.alive[s] {
                self.alive[s] = false;
                if !self.skip_view_reset {
                    self.undecoded[s].clear();
                }
                self.holdback.purge_sender(s, self.cut.get(s));
                for seq in (self.vt.get(s) + 1)..=self.cut.get(s) {
                    let id = MsgId { sender: s, seq };
                    if !self.holdback.contains(id) {
                        self.missing.entry(id).or_insert(Missing {
                            referenced_by: s,
                            last_nack: SimTime::MAX,
                        });
                    }
                }
            }
            if !self.skip_view_reset {
                self.decode_chain[s].1 = None;
            }
        }
        let cut_snapshot = self.cut.clone();
        let alive = &self.alive;
        self.missing
            .retain(|id, _| alive[id.sender] || id.seq <= cut_snapshot.get(id.sender));
        if !self.skip_view_reset {
            self.force_full_next = true;
        }
        self.stability.set_members(members);
        self.stability_dirty = true;
        self.stats.note_holdback(self.holdback.len() as u64);
        self.collect_garbage(now);
        // Thaw: deliver whatever queued up during the blackout. The
        // install-time drain attributes each held delivery's frozen tail
        // to the flush barrier, split at the freeze instant.
        self.frozen = false;
        self.install_thaw = self.frozen_since.take();
        let mut delivered = Vec::new();
        self.drain_holdback(now, &mut delivered);
        self.install_thaw = None;
        delivered
    }

    /// Multicasts `payload` to the group. Returns the local (immediate)
    /// self-delivery and the outbound wire messages.
    pub fn multicast(&mut self, now: SimTime, payload: P) -> (Delivery<P>, Vec<Out<P>>) {
        let seq = self.vt.tick(self.me);
        self.probe.emit(|| ObsEvent::Span {
            at: now,
            who: self.me,
            span: SpanId {
                origin: self.me,
                seq,
            },
            stage: Stage::Send,
            note: String::new(),
        });
        // Keep the ready-index consistent with the clock advance (no
        // held message can legitimately wait on our own future sends,
        // but the invariant costs nothing to maintain).
        self.holdback.note_delivered(self.me, seq);
        let id = MsgId {
            sender: self.me,
            seq,
        };
        let vt_wire = if self.cfg.delta_timestamps && !self.force_full_next {
            // Delta against our previous data message; fall back to full
            // when so many components changed that the delta is no
            // cheaper (dense all-to-all traffic — the paper's caveat).
            let delta = self.vt.encode_delta(&self.last_sent_vt);
            let full = self.vt.encode();
            if delta.len() < full.len() {
                self.stats.ts_delta_sent += 1;
                VtWire::Delta(delta)
            } else {
                self.stats.ts_full_sent += 1;
                VtWire::Full(full)
            }
        } else {
            self.stats.ts_full_sent += 1;
            VtWire::Full(self.vt.encode())
        };
        self.force_full_next = false;
        self.last_sent_vt = self.vt.clone();
        let mut msg = DataMsg {
            id,
            vt: self.vt.clone(),
            vt_wire,
            payload: payload.clone(),
            retransmit: false,
            appended: Vec::new(),
        };
        if self.cfg.append_predecessors {
            // §3.4 footnote 4: carry unstable causal predecessors along
            // so receivers need not hold this message waiting for them.
            // Most-recent-first, capped.
            msg.appended = self
                .buffer
                .values()
                .rev()
                .filter(|m| m.id != id)
                .take(self.cfg.max_append)
                .map(|m| {
                    let mut copy = m.clone();
                    copy.appended = Vec::new();
                    copy.retransmit = true;
                    copy.make_full();
                    copy
                })
                .collect();
        }
        self.stats.sent += 1;
        self.stats.delivered += 1;
        let wire = Wire::Data(msg.clone());
        self.stats.data_overhead_bytes += wire.overhead_bytes() as u64;
        self.stability_dirty |= self.stability.record_local_delivery(self.me, self.me, seq);
        self.buffer.insert(id, msg);
        self.note_buffer();
        let delivery = Delivery {
            id,
            payload,
            arrived_at: now,
            delivered_at: now,
            gseq: None,
            waited_for: Vec::new(),
        };
        (delivery, vec![(Dest::All, wire)])
    }

    /// Handles an incoming wire message. Returns app deliveries (in causal
    /// order) and any outbound messages (NACKs, retransmits, acks).
    pub fn on_wire(&mut self, now: SimTime, wire: Wire<P>) -> (Vec<Delivery<P>>, Vec<Out<P>>) {
        let mut out = Vec::new();
        let mut delivered = Vec::new();
        match wire {
            Wire::Data(mut msg) => {
                self.stats.data_received += 1;
                // Appended predecessors are processed first, so the
                // carrying message rarely needs holdback.
                for pre in std::mem::take(&mut msg.appended) {
                    self.stats.data_received += 1;
                    self.accept_data(now, pre, &mut out, &mut delivered);
                }
                self.accept_data(now, msg, &mut out, &mut delivered);
            }
            Wire::AckGossip { from, delivered: d } => {
                self.stability_dirty |= self.stability.update_row(from, &d);
                // Gossip also reveals messages we never received (e.g. the
                // final message from a sender, dropped with no successor
                // to reference it): anything the peer has delivered that
                // we have not is missing here. Removed senders' messages
                // beyond the flush cut will never deliver and are not
                // worth chasing.
                for k in 0..self.n {
                    let hi = if self.alive[k] {
                        d.get(k)
                    } else {
                        d.get(k).min(self.cut.get(k))
                    };
                    for seq in (self.vt.get(k) + 1)..=hi {
                        let id = MsgId { sender: k, seq };
                        if !self.holdback.contains(id) && !self.undecoded[k].contains_key(&seq) {
                            self.missing.entry(id).or_insert(Missing {
                                referenced_by: from,
                                last_nack: SimTime::MAX,
                            });
                        }
                    }
                }
                self.collect_garbage(now);
            }
            Wire::Nack { from, want } => {
                for id in want {
                    if let Some(m) = self.buffer.get(&id) {
                        let mut copy = m.clone();
                        copy.retransmit = true;
                        // NACK fallback: always serve the full timestamp
                        // encoding so the requester can decode without
                        // per-sender delta context.
                        copy.make_full();
                        self.stats.retransmits_served += 1;
                        let w = Wire::Data(copy);
                        self.stats.control_bytes += w.overhead_bytes() as u64;
                        out.push((Dest::One(from), w));
                    }
                }
            }
            // Order/Token/membership traffic is not cbcast's business;
            // the composing endpoint handles it.
            _ => {}
        }
        self.stats.holdback_work = self.holdback.work();
        (delivered, out)
    }

    /// Periodic maintenance: ack gossip, NACK retries, buffer sampling.
    pub fn on_tick(&mut self, now: SimTime) -> Vec<Out<P>> {
        let mut out = Vec::new();
        // Gossip our delivered clock so peers can advance stability.
        let gossip = Wire::AckGossip {
            from: self.me,
            delivered: self.vt.clone(),
        };
        self.stats.acks_sent += 1;
        self.stats.control_bytes += gossip.overhead_bytes() as u64;
        out.push((Dest::All, gossip));
        // Re-NACK overdue missing messages.
        let mut batch: Vec<MsgId> = Vec::new();
        let mut target = None;
        for (&id, info) in self.missing.iter_mut() {
            let overdue = info.last_nack == SimTime::MAX
                || now.saturating_since(info.last_nack) >= self.cfg.nack_timeout;
            if overdue && batch.len() < self.cfg.max_nack_batch {
                batch.push(id);
                info.last_nack = now;
                target.get_or_insert(info.referenced_by);
            }
        }
        if !batch.is_empty() {
            // Ask everyone: any member buffering the message can serve it
            // (atomic delivery's whole point).
            let w = Wire::Nack {
                from: self.me,
                want: batch,
            };
            self.stats.nacks_sent += 1;
            self.stats.control_bytes += w.overhead_bytes() as u64;
            out.push((Dest::All, w));
        }
        self.note_buffer();
        out
    }

    /// First stage of receiving a data message: reconstruct its vector
    /// timestamp from the wire encoding. Full encodings decode
    /// immediately; delta encodings chain onto the previous decoded
    /// timestamp from the same sender, so a message arriving ahead of its
    /// base is parked and the FIFO gap NACKed (the fallback-to-full
    /// path). Undecodable input is dropped and recovered via NACK.
    fn accept_data(
        &mut self,
        now: SimTime,
        mut msg: DataMsg<P>,
        out: &mut Vec<Out<P>>,
        delivered: &mut Vec<Delivery<P>>,
    ) {
        let sender = msg.id.sender;
        if sender >= self.n {
            self.stats.ts_decode_errors += 1;
            return;
        }
        self.probe.emit(|| ObsEvent::Span {
            at: now,
            who: self.me,
            span: span_of(msg.id),
            stage: Stage::Wire,
            note: if msg.retransmit {
                "retransmit".to_string()
            } else {
                String::new()
            },
        });
        if !self.alive[sender] && msg.id.seq > self.cut.get(sender) {
            // Virtual synchrony: the sender was removed by a view change
            // and this message is beyond the flush cut — no survivor may
            // deliver it.
            self.stats.rejected_removed += 1;
            self.probe.emit(|| ObsEvent::Span {
                at: now,
                who: self.me,
                span: span_of(msg.id),
                stage: Stage::Dropped,
                note: format!("removed sender beyond cut {}", self.cut.get(sender)),
            });
            return;
        }
        match &msg.vt_wire {
            VtWire::Full(bytes) => match VectorClock::decode(bytes) {
                Some(vt) if vt.len() == self.n => {
                    debug_assert_eq!(vt, msg.vt, "wire timestamp must match in-memory vt");
                    msg.vt = vt;
                    self.advance_chain(sender, msg.id.seq, msg.vt.clone());
                    self.on_data(now, msg, out, delivered);
                    self.drain_undecoded(now, sender, out, delivered);
                }
                _ => {
                    self.stats.ts_decode_errors += 1;
                    self.probe.emit(|| ObsEvent::Span {
                        at: now,
                        who: self.me,
                        span: span_of(msg.id),
                        stage: Stage::Dropped,
                        note: "timestamp decode error".to_string(),
                    });
                }
            },
            VtWire::Delta(bytes) => {
                let (chain_seq, chain_base) = &self.decode_chain[sender];
                let chain_seq = *chain_seq;
                if msg.id.seq == chain_seq + 1 && chain_base.is_some() {
                    let base = chain_base.as_ref().expect("checked is_some above");
                    match VectorClock::decode_delta(bytes, base) {
                        Some(vt) if vt.len() == self.n => {
                            debug_assert_eq!(vt, msg.vt, "wire timestamp must match in-memory vt");
                            msg.vt = vt;
                            self.advance_chain(sender, msg.id.seq, msg.vt.clone());
                            self.on_data(now, msg, out, delivered);
                            self.drain_undecoded(now, sender, out, delivered);
                        }
                        _ => {
                            self.stats.ts_decode_errors += 1;
                            self.probe.emit(|| ObsEvent::Span {
                                at: now,
                                who: self.me,
                                span: span_of(msg.id),
                                stage: Stage::Dropped,
                                note: "delta timestamp decode error".to_string(),
                            });
                        }
                    }
                } else if msg.id.seq <= chain_seq {
                    // The timestamp for this seq was decoded before, so
                    // this copy is a duplicate of a known message.
                    self.stats.duplicates += 1;
                    self.probe.emit(|| ObsEvent::Span {
                        at: now,
                        who: self.me,
                        span: span_of(msg.id),
                        stage: Stage::Dropped,
                        note: "duplicate (behind decode chain)".to_string(),
                    });
                } else {
                    // Ahead of the decode chain — or the chain base was
                    // invalidated by a view install: park until a full
                    // encoding re-seeds the chain, and NACK so the missing
                    // bases (or a full copy of this very message) arrive
                    // as full-encoded retransmissions.
                    self.stats.ts_delta_parked += 1;
                    let hi = if self.decode_chain[sender].1.is_some() {
                        msg.id.seq - 1
                    } else {
                        msg.id.seq
                    };
                    self.register_fifo_gap(now, sender, chain_seq + 1, hi, out);
                    self.probe.emit(|| ObsEvent::Span {
                        at: now,
                        who: self.me,
                        span: span_of(msg.id),
                        stage: Stage::Parked,
                        note: format!("delta ahead of decode chain (chain at seq {chain_seq})"),
                    });
                    self.undecoded[sender].insert(msg.id.seq, msg);
                }
            }
            VtWire::Pc { .. } => {
                // A pccast link copy reached a cbcast endpoint (mixed
                // disciplines in one group is a configuration error):
                // there is no vector to decode, so drop for NACK-driven
                // full retransmission like any undecodable timestamp.
                self.stats.ts_decode_errors += 1;
            }
        }
    }

    /// Advances the per-sender decode chain to (`seq`, `vt`) if that is
    /// newer. Parked deltas at or below the new point lost their exact
    /// base (a full retransmission jumped past them) and are dropped —
    /// their payloads come back through the missing/NACK machinery.
    fn advance_chain(&mut self, sender: usize, seq: u64, vt: VectorClock) {
        let chain = &mut self.decode_chain[sender];
        if seq > chain.0 || (seq == chain.0 && chain.1.is_none()) {
            *chain = (seq, Some(vt));
            self.undecoded[sender] = self.undecoded[sender].split_off(&(seq + 1));
        }
    }

    /// Decodes and processes any parked messages from `sender` that the
    /// advanced chain has now reached, in seq order.
    fn drain_undecoded(
        &mut self,
        now: SimTime,
        sender: usize,
        out: &mut Vec<Out<P>>,
        delivered: &mut Vec<Delivery<P>>,
    ) {
        // An invalidated chain (view install) stops immediately: parked
        // deltas cannot decode until a full encoding re-seeds it.
        while let (seq, Some(base)) = &self.decode_chain[sender] {
            let next = seq + 1;
            let base = base.clone();
            let Some(mut msg) = self.undecoded[sender].remove(&next) else {
                break;
            };
            let decoded = match &msg.vt_wire {
                VtWire::Delta(bytes) => VectorClock::decode_delta(bytes, &base),
                VtWire::Full(bytes) => VectorClock::decode(bytes),
                // Pc tags never park (they are not accepted by cbcast).
                VtWire::Pc { .. } => None,
            };
            match decoded {
                Some(vt) if vt.len() == self.n => {
                    debug_assert_eq!(vt, msg.vt, "wire timestamp must match in-memory vt");
                    msg.vt = vt;
                    self.advance_chain(sender, next, msg.vt.clone());
                    self.on_data(now, msg, out, delivered);
                }
                _ => self.stats.ts_decode_errors += 1,
            }
        }
    }

    /// Records (`sender`, `lo..=hi`) as missing-if-unseen and NACKs the
    /// sender — used when a delta-stamped message arrives ahead of its
    /// decode base, where only the FIFO gap is known (the deeper causal
    /// references surface once the timestamp decodes).
    fn register_fifo_gap(
        &mut self,
        now: SimTime,
        sender: usize,
        lo: u64,
        hi: u64,
        out: &mut Vec<Out<P>>,
    ) {
        let mut want = Vec::new();
        for seq in lo..=hi {
            if seq <= self.vt.get(sender) {
                continue;
            }
            let id = MsgId { sender, seq };
            if self.missing.contains_key(&id)
                || self.undecoded[sender].contains_key(&seq)
                || self.holdback.contains(id)
            {
                continue;
            }
            self.missing.insert(
                id,
                Missing {
                    referenced_by: sender,
                    last_nack: now,
                },
            );
            if want.len() < self.cfg.max_nack_batch {
                want.push(id);
            }
        }
        if !want.is_empty() {
            let w = Wire::Nack {
                from: self.me,
                want,
            };
            self.stats.nacks_sent += 1;
            self.stats.control_bytes += w.overhead_bytes() as u64;
            out.push((Dest::One(sender), w));
        }
    }

    fn on_data(
        &mut self,
        now: SimTime,
        msg: DataMsg<P>,
        out: &mut Vec<Out<P>>,
        delivered: &mut Vec<Delivery<P>>,
    ) {
        let sender = msg.id.sender;
        self.stats.holdback_events += 1;
        // The data's timestamp doubles as the sender's delivered clock —
        // piggybacked stability information.
        if self.cfg.piggyback_acks {
            self.stability_dirty |= self.stability.update_row(sender, &msg.vt);
        }
        // Duplicate (already delivered) or already held?
        if msg.id.seq <= self.vt.get(sender) || self.holdback.contains(msg.id) {
            self.stats.duplicates += 1;
            self.probe.emit(|| ObsEvent::Span {
                at: now,
                who: self.me,
                span: span_of(msg.id),
                stage: Stage::Dropped,
                note: "duplicate".to_string(),
            });
            self.collect_garbage(now);
            return;
        }
        if self.missing.remove(&msg.id).is_some() {
            self.was_chased.insert(msg.id);
        }
        // Note any causal predecessors we have never seen.
        self.register_missing(now, &msg, out);
        self.probe.emit(|| {
            let mut waits = Vec::new();
            for k in 0..self.n {
                let need = if k == msg.id.sender {
                    msg.id.seq.saturating_sub(1)
                } else {
                    msg.vt.get(k)
                };
                if self.vt.get(k) < need {
                    waits.push(format!("m{k}.{need}"));
                }
            }
            ObsEvent::Span {
                at: now,
                who: self.me,
                span: span_of(msg.id),
                stage: Stage::HoldbackEnter,
                note: if waits.is_empty() {
                    "deliverable on arrival".to_string()
                } else {
                    format!("waiting on {}", waits.join(", "))
                },
            }
        });
        self.holdback.insert(
            Pending {
                msg,
                arrived_at: now,
            },
            &self.vt,
        );
        self.drain_holdback(now, delivered);
        self.stats.note_holdback(self.holdback.len() as u64);
        self.collect_garbage(now);
    }

    /// Scans `msg`'s timestamp for messages we have neither delivered nor
    /// held, recording them as missing and emitting an immediate NACK to
    /// the referencing sender.
    fn register_missing(&mut self, now: SimTime, msg: &DataMsg<P>, out: &mut Vec<Out<P>>) {
        let mut want = Vec::new();
        for k in 0..self.n {
            let known = self.vt.get(k);
            let referenced = if k == msg.id.sender {
                msg.id.seq.saturating_sub(1)
            } else {
                msg.vt.get(k)
            };
            // A removed sender's messages beyond the flush cut will never
            // deliver anywhere; do not chase them.
            let referenced = if self.alive[k] {
                referenced
            } else {
                referenced.min(self.cut.get(k))
            };
            for seq in (known + 1)..=referenced {
                let id = MsgId { sender: k, seq };
                // Cheapest tests first: most referenced-but-undelivered
                // messages are already registered missing, and probing
                // the holdback costs O(H) in the scan implementation.
                if !self.missing.contains_key(&id)
                    && !self.undecoded[k].contains_key(&seq)
                    && !self.holdback.contains(id)
                {
                    self.missing.insert(
                        id,
                        Missing {
                            referenced_by: msg.id.sender,
                            last_nack: now,
                        },
                    );
                    if want.len() < self.cfg.max_nack_batch {
                        want.push(id);
                    }
                }
            }
        }
        if !want.is_empty() {
            let w = Wire::Nack {
                from: self.me,
                want,
            };
            self.stats.nacks_sent += 1;
            self.stats.control_bytes += w.overhead_bytes() as u64;
            out.push((Dest::One(msg.id.sender), w));
        }
    }

    /// Delivers every holdback message that has become deliverable, in
    /// causal order, until a fixed point. A no-op while frozen (flush in
    /// progress): messages keep queueing and drain at view install.
    fn drain_holdback(&mut self, now: SimTime, delivered: &mut Vec<Delivery<P>>) {
        if self.frozen {
            self.stats.note_holdback(self.holdback.len() as u64);
            return;
        }
        // The delivery that released each subsequent pop in this drain:
        // the previous pop advanced the clock past the last obstacle, so
        // it is the held message's blocking predecessor.
        let mut last_popped: Option<MsgId> = None;
        while let Some(pending) = self.holdback.pop_ready(&self.vt) {
            let msg = pending.msg;
            let sender = msg.id.sender;
            let seq = msg.id.seq;
            self.vt.set(sender, seq);
            self.holdback.note_delivered(sender, seq);
            // Everything else in the timestamp is already delivered here,
            // so a full merge is a no-op; set() is the precise update.
            self.stability_dirty |= self.stability.record_local_delivery(self.me, sender, seq);
            self.missing.remove(&msg.id);
            let was_held = pending.arrived_at < now;
            let waited_for = if was_held {
                // What did we wait on? The causal predecessors that were
                // undelivered at arrival. Reconstruct cheaply: anything in
                // msg.vt above our clock at arrival is unknowable now, so
                // we report the direct predecessor gap from each sender.
                self.reconstruct_waits(&msg)
            } else {
                Vec::new()
            };
            self.stats.delivered += 1;
            if was_held {
                self.stats.delivered_after_hold += 1;
                self.stats.hold_time_total += now.saturating_since(pending.arrived_at);
                self.probe.emit(|| ObsEvent::Span {
                    at: now,
                    who: self.me,
                    span: span_of(msg.id),
                    stage: Stage::Deliverable,
                    note: format!(
                        "all predecessors in after {}us",
                        now.saturating_since(pending.arrived_at).as_micros()
                    ),
                });
                // Ledger attribution: why was it held, and on whom? The
                // install-time drain splits the interval at the freeze
                // instant — before it, the classified wait; after it,
                // the flush barrier.
                let kind = match last_popped {
                    Some(b) if self.was_chased.contains(&b) => WaitKind::NackRepair,
                    Some(b) if b.sender == sender => WaitKind::FifoGap,
                    _ => WaitKind::CausalDep,
                };
                let blocker = last_popped.map(span_of);
                let split = self
                    .install_thaw
                    .filter(|fs| *fs < now && *fs > pending.arrived_at);
                if let Some(fs) = split {
                    self.probe.emit(|| ObsEvent::Wait {
                        at: fs,
                        who: self.me,
                        span: span_of(msg.id),
                        kind,
                        since: pending.arrived_at,
                        blocker,
                        note: String::new(),
                    });
                }
                let frozen_tail = self.install_thaw.is_some();
                self.probe.emit(|| ObsEvent::Wait {
                    at: now,
                    who: self.me,
                    span: span_of(msg.id),
                    kind: if frozen_tail {
                        WaitKind::FlushBarrier
                    } else {
                        kind
                    },
                    since: split.unwrap_or(pending.arrived_at),
                    blocker: if frozen_tail { None } else { blocker },
                    note: if frozen_tail {
                        "delivery frozen until the view installed".to_string()
                    } else {
                        String::new()
                    },
                });
            }
            self.probe.emit(|| ObsEvent::Span {
                at: now,
                who: self.me,
                span: span_of(msg.id),
                stage: Stage::Delivered,
                note: waited_for
                    .iter()
                    .map(|w| format!("m{}.{}", w.sender, w.seq))
                    .collect::<Vec<_>>()
                    .join(", "),
            });
            self.buffer.insert(msg.id, msg.clone());
            delivered.push(Delivery {
                id: msg.id,
                payload: msg.payload,
                arrived_at: pending.arrived_at,
                delivered_at: now,
                gseq: None,
                waited_for,
            });
            last_popped = Some(msg.id);
        }
        self.stats.note_holdback(self.holdback.len() as u64);
        self.note_buffer();
    }

    fn reconstruct_waits(&self, msg: &DataMsg<P>) -> Vec<MsgId> {
        // The immediate causal predecessors of msg: the latest message
        // from each member visible in its timestamp (other than itself).
        let mut v = Vec::new();
        for k in 0..self.n {
            let seq = if k == msg.id.sender {
                msg.id.seq.saturating_sub(1)
            } else {
                msg.vt.get(k)
            };
            if seq > 0 {
                v.push(MsgId { sender: k, seq });
            }
        }
        v
    }

    fn collect_garbage(&mut self, now: SimTime) {
        // O(1) unless stability knowledge advanced since the last pass,
        // and no buffer walk unless the frontier itself moved — this runs
        // on every wire event, so the common case must stay off the
        // O(buffer) retain path.
        if !self.stability_dirty {
            return;
        }
        self.stability_dirty = false;
        let frontier = self.stability.stable_frontier();
        if frontier == self.gc_frontier {
            return;
        }
        let before = self.buffer.len();
        self.buffer.retain(|id, _| id.seq > frontier.get(id.sender));
        let reclaimed = before - self.buffer.len();
        self.probe.emit(|| ObsEvent::Phase {
            at: now,
            who: self.me,
            kind: PhaseKind::StabilityRound,
            edge: PhaseEdge::Point,
            note: format!("stable frontier {frontier:?}, {reclaimed} reclaimed"),
        });
        self.gc_frontier = frontier;
        self.stats.stabilized += reclaimed as u64;
        self.note_buffer();
    }

    fn note_buffer(&mut self) {
        let msgs = self.buffer.len() as u64;
        let per_msg = (self.cfg.payload_bytes + 12 + 4 + 8 * self.n) as u64;
        self.stats.note_buffer(msgs, msgs * per_msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn trio() -> (
        CbcastEndpoint<&'static str>,
        CbcastEndpoint<&'static str>,
        CbcastEndpoint<&'static str>,
    ) {
        let cfg = GroupConfig::default();
        (
            CbcastEndpoint::new(0, 3, cfg.clone()),
            CbcastEndpoint::new(1, 3, cfg.clone()),
            CbcastEndpoint::new(2, 3, cfg),
        )
    }

    fn data_of<P: Clone>(out: &[Out<P>]) -> Wire<P> {
        out.iter()
            .find_map(|(d, w)| match (d, w) {
                (Dest::All, Wire::Data(_)) => Some(w.clone()),
                _ => None,
            })
            .expect("a broadcast data message")
    }

    #[test]
    fn self_delivery_is_immediate() {
        let (mut a, _, _) = trio();
        let (d, out) = a.multicast(t(0), "hello");
        assert_eq!(d.id, MsgId { sender: 0, seq: 1 });
        assert!(!d.was_held());
        assert_eq!(out.len(), 1);
        assert_eq!(a.stats().sent, 1);
        assert_eq!(a.clock().get(0), 1);
    }

    /// Quiescent-sender stability: after the last data message, the
    /// tick-driven AckGossip path alone must advance the stability
    /// horizon to the delivered clock everywhere and let GC reclaim the
    /// buffered copies — a sender going quiet must not freeze the
    /// horizon (or buffer growth) for the rest of the group.
    #[test]
    fn quiescent_group_reaches_stability_via_tick_gossip() {
        let (mut a, mut b, mut c) = trio();
        let (_, out) = a.multicast(t(0), "last words");
        let data = data_of(&out);
        b.on_wire(t(1), data.clone());
        c.on_wire(t(1), data);
        // No further data traffic. Before any gossip nobody can know the
        // others delivered, so the message is unstable everywhere.
        assert!(a.stability_lag() > 0);
        assert_eq!(a.stats().buffered_now, 1);
        // Quiescent tick rounds: every endpoint gossips its delivered
        // clock; that alone must carry the horizon to the clocks.
        for round in 0..2u64 {
            let now = t(10 + round);
            let ga = a.on_tick(now);
            let gb = b.on_tick(now);
            let gc_out = c.on_tick(now);
            for (src, outs) in [(0usize, &ga), (1, &gb), (2, &gc_out)] {
                for (_, w) in outs {
                    if matches!(w, Wire::AckGossip { .. }) {
                        if src != 0 {
                            a.on_wire(now, w.clone());
                        }
                        if src != 1 {
                            b.on_wire(now, w.clone());
                        }
                        if src != 2 {
                            c.on_wire(now, w.clone());
                        }
                    }
                }
            }
        }
        for (who, ep) in [(0, &a), (1, &b), (2, &c)] {
            assert_eq!(
                ep.stability_lag(),
                0,
                "P{who}: horizon stuck at {:?} with clock {:?}",
                ep.stable_frontier(),
                ep.clock()
            );
        }
        // The buffered copy was reclaimed by stability GC.
        assert_eq!(a.stats().buffered_now, 0);
        assert_eq!(a.stats().stabilized, 1);
    }

    /// Regression: the stability-horizon lag must not under-report when
    /// the survivors' frontier runs ahead of an evicted-live node's clock
    /// in some component. Compared total-vs-total (with a saturating
    /// difference), the survivor's surplus cancelled the evicted node's
    /// real lag and the sampler reported zero while an unstable message
    /// still sat in its buffer.
    #[test]
    fn stability_lag_is_componentwise_after_eviction() {
        let cfg = GroupConfig::default();
        let mut b: CbcastEndpoint<&str> = CbcastEndpoint::new(1, 2, cfg);
        // b delivers three messages from a, then multicasts one of its
        // own: clock [3, 1].
        for seq in 1..=3u64 {
            let mut vt = VectorClock::new(2);
            vt.set(0, seq);
            let msg = DataMsg {
                id: MsgId { sender: 0, seq },
                vt_wire: VtWire::Full(vt.encode()),
                vt,
                payload: "m",
                retransmit: false,
                appended: Vec::new(),
            };
            b.on_wire(t(seq), Wire::Data(msg));
        }
        let _ = b.multicast(t(4), "mine");
        // a raced ahead to five own deliveries nobody else has seen...
        b.on_wire(
            t(5),
            Wire::AckGossip {
                from: 0,
                delivered: VectorClock::from_entries(vec![5, 0]),
            },
        );
        // ...and a view change evicts b while it is still running: the
        // frontier over the survivor's row is [5, 0] against b's [3, 1].
        let cut = VectorClock::from_entries(vec![5, 1]);
        b.on_view_install(t(6), &[0], &cut);
        // b's own message is unstable and still buffered; the lag metric
        // must say so instead of letting a's surplus cancel it to zero.
        assert_eq!(b.stats().buffered_now, 1);
        assert_eq!(b.stability_lag(), 1);
    }

    #[test]
    fn in_order_arrival_delivers_immediately() {
        let (mut a, mut b, _) = trio();
        let (_, out) = a.multicast(t(0), "m1");
        let (dels, _) = b.on_wire(t(1), data_of(&out));
        assert_eq!(dels.len(), 1);
        assert_eq!(dels[0].payload, "m1");
        assert!(!dels[0].was_held());
    }

    #[test]
    fn causal_order_enforced_across_senders() {
        // a sends m1; b receives it then sends m2 (so m1 → m2);
        // c receives m2 FIRST — must hold it until m1 arrives.
        let (mut a, mut b, mut c) = trio();
        let (_, out1) = a.multicast(t(0), "m1");
        let m1 = data_of(&out1);
        b.on_wire(t(1), m1.clone());
        let (_, out2) = b.multicast(t(2), "m2");
        let m2 = data_of(&out2);

        let (dels, nacks) = c.on_wire(t(3), m2);
        assert!(dels.is_empty(), "m2 must be held until m1 delivered");
        assert_eq!(c.holdback_len(), 1);
        // c noticed m1 is missing and NACKed the referencing sender (b).
        assert!(nacks
            .iter()
            .any(|(d, w)| matches!(w, Wire::Nack { .. }) && *d == Dest::One(1)));

        let (dels, _) = c.on_wire(t(4), m1);
        let order: Vec<&str> = dels.iter().map(|d| d.payload).collect();
        assert_eq!(order, vec!["m1", "m2"], "causal order restored");
        assert!(dels[1].was_held());
        assert_eq!(dels[1].hold_time(), SimDuration::from_millis(1));
        assert_eq!(c.holdback_len(), 0);
    }

    #[test]
    fn concurrent_messages_deliver_in_arrival_order() {
        // a and b multicast concurrently; c may deliver in either arrival
        // order — neither is held.
        let (mut a, mut b, mut c) = trio();
        let (_, oa) = a.multicast(t(0), "ma");
        let (_, ob) = b.multicast(t(0), "mb");
        let (d1, _) = c.on_wire(t(1), data_of(&ob));
        let (d2, _) = c.on_wire(t(2), data_of(&oa));
        assert_eq!(d1.len(), 1);
        assert_eq!(d2.len(), 1);
        assert!(!d1[0].was_held() && !d2[0].was_held());
    }

    #[test]
    fn fifo_gap_from_same_sender_is_held() {
        let (mut a, mut b, _) = trio();
        let (_, o1) = a.multicast(t(0), "m1");
        let (_, o2) = a.multicast(t(1), "m2");
        // m2 overtakes m1.
        let (dels, _) = b.on_wire(t(2), data_of(&o2));
        assert!(dels.is_empty());
        let (dels, _) = b.on_wire(t(3), data_of(&o1));
        let order: Vec<&str> = dels.iter().map(|d| d.payload).collect();
        assert_eq!(order, vec!["m1", "m2"]);
    }

    #[test]
    fn duplicates_are_discarded() {
        let (mut a, mut b, _) = trio();
        let (_, out) = a.multicast(t(0), "m1");
        let m = data_of(&out);
        b.on_wire(t(1), m.clone());
        let (dels, _) = b.on_wire(t(2), m);
        assert!(dels.is_empty());
        assert_eq!(b.stats().duplicates, 1);
    }

    #[test]
    fn nack_recovery_roundtrip() {
        let (mut a, mut b, mut c) = trio();
        let (_, o1) = a.multicast(t(0), "m1");
        let m1 = data_of(&o1);
        b.on_wire(t(1), m1);
        let (_, o2) = b.multicast(t(2), "m2");
        // c gets m2 only; its immediate NACK goes to b.
        let (_, nacks) = c.on_wire(t(3), data_of(&o2));
        let nack = nacks
            .into_iter()
            .find(|(_, w)| matches!(w, Wire::Nack { .. }))
            .expect("nack emitted");
        // b serves the retransmission from its buffer (atomic delivery:
        // b buffered a's message).
        let (_, served) = b.on_wire(t(4), nack.1);
        let retrans = served
            .into_iter()
            .find(|(_, w)| matches!(w, Wire::Data(d) if d.retransmit))
            .expect("retransmit served");
        assert_eq!(b.stats().retransmits_served, 1);
        let (dels, _) = c.on_wire(t(5), retrans.1);
        assert_eq!(
            dels.iter().map(|d| d.payload).collect::<Vec<_>>(),
            vec!["m1", "m2"]
        );
    }

    #[test]
    fn tick_renacks_overdue_missing() {
        let (mut a, mut b, mut c) = trio();
        let (_, o1) = a.multicast(t(0), "m1");
        b.on_wire(t(1), data_of(&o1));
        let (_, o2) = b.multicast(t(2), "m2");
        c.on_wire(t(3), data_of(&o2));
        // Before the timeout no re-NACK; after, one goes to everyone.
        let out = c.on_tick(t(3) + SimDuration::from_micros(1));
        assert!(
            !out.iter().any(|(_, w)| matches!(w, Wire::Nack { .. })),
            "too early to re-NACK"
        );
        let out = c.on_tick(t(3) + GroupConfig::default().nack_timeout);
        let renack = out
            .iter()
            .find(|(_, w)| matches!(w, Wire::Nack { .. }))
            .expect("re-NACK after timeout");
        assert_eq!(renack.0, Dest::All);
    }

    #[test]
    fn stability_garbage_collects_buffers() {
        let (mut a, mut b, mut c) = trio();
        let (_, out) = a.multicast(t(0), "m1");
        let m = data_of(&out);
        b.on_wire(t(1), m.clone());
        c.on_wire(t(1), m);
        assert_eq!(a.buffered_len(), 1);
        // Everyone gossips; a learns the message is stable and drops it.
        let gb = Wire::AckGossip {
            from: 1,
            delivered: b.clock().clone(),
        };
        let gc = Wire::AckGossip {
            from: 2,
            delivered: c.clock().clone(),
        };
        a.on_wire(t(2), gb);
        assert_eq!(a.buffered_len(), 1, "not yet known stable");
        a.on_wire(t(3), gc);
        assert_eq!(a.buffered_len(), 0, "stable message GC'd");
        assert_eq!(a.stats().stabilized, 1);
    }

    #[test]
    fn receivers_buffer_messages_for_peers() {
        // Atomic delivery: b buffers a's message and can serve c.
        let (mut a, mut b, _) = trio();
        let (_, out) = a.multicast(t(0), "m1");
        b.on_wire(t(1), data_of(&out));
        assert_eq!(b.buffered_len(), 1);
        let _ = a;
    }

    #[test]
    fn transitive_causality_three_hops() {
        // m1 at a → m2 at b → m3 at c; a fresh observer receiving only m3
        // must wait for both predecessors.
        let cfg = GroupConfig::default();
        let mut a = CbcastEndpoint::new(0, 4, cfg.clone());
        let mut b = CbcastEndpoint::new(1, 4, cfg.clone());
        let mut c = CbcastEndpoint::new(2, 4, cfg.clone());
        let mut d = CbcastEndpoint::new(3, 4, cfg);

        let (_, o1) = a.multicast(t(0), "m1");
        b.on_wire(t(1), data_of(&o1));
        let (_, o2) = b.multicast(t(2), "m2");
        c.on_wire(t(3), data_of(&o1));
        c.on_wire(t(3), data_of(&o2));
        let (_, o3) = c.multicast(t(4), "m3");

        let (dels, _) = d.on_wire(t(5), data_of(&o3));
        assert!(dels.is_empty());
        let (dels, _) = d.on_wire(t(6), data_of(&o2));
        assert!(dels.is_empty());
        let (dels, _) = d.on_wire(t(7), data_of(&o1));
        assert_eq!(
            dels.iter().map(|x| x.payload).collect::<Vec<_>>(),
            vec!["m1", "m2", "m3"]
        );
        // The waited_for metadata names the direct predecessors.
        assert!(dels[2].waited_for.contains(&MsgId { sender: 1, seq: 1 }));
    }

    #[test]
    fn appended_predecessors_avoid_holdback() {
        // §3.4 footnote 4: with predecessors appended, a receiver that
        // missed m1 can still deliver m2 immediately.
        let cfg = GroupConfig {
            append_predecessors: true,
            ..GroupConfig::default()
        };
        let mut a = CbcastEndpoint::new(0, 3, cfg.clone());
        let mut b = CbcastEndpoint::new(1, 3, cfg.clone());
        let mut c = CbcastEndpoint::new(2, 3, cfg);
        let (_, o1) = a.multicast(t(0), "m1");
        b.on_wire(t(1), data_of(&o1));
        let (_, o2) = b.multicast(t(2), "m2");
        // c never saw m1; m2 carries it along.
        let (dels, _) = c.on_wire(t(3), data_of(&o2));
        assert_eq!(
            dels.iter().map(|d| d.payload).collect::<Vec<_>>(),
            vec!["m1", "m2"],
            "both deliver at once — no holdback, no NACK round trip"
        );
        assert!(!dels[1].was_held());
        // The cost: the wire message was bigger.
        let plain = Wire::Data(DataMsg::new(
            MsgId { sender: 1, seq: 1 },
            VectorClock::new(3),
            "x",
        ));
        assert!(data_of(&o2).overhead_bytes() > plain.overhead_bytes());
    }

    #[test]
    #[should_panic(expected = "member index out of range")]
    fn rejects_bad_member_index() {
        let _ = CbcastEndpoint::<()>::new(3, 3, GroupConfig::default());
    }

    #[test]
    fn nacked_predecessor_dependent_delivers_exactly_once() {
        // m1 → m2; the observer gets m2 first, recovers m1 via NACK
        // retransmission, and then the ORIGINAL m1 arrives late. m1 must
        // be deduplicated and m2 must not be re-delivered.
        let (mut a, mut b, mut c) = trio();
        let (_, o1) = a.multicast(t(0), "m1");
        let m1 = data_of(&o1);
        b.on_wire(t(1), m1.clone());
        let (_, o2) = b.multicast(t(2), "m2");

        let (dels, nacks) = c.on_wire(t(3), data_of(&o2));
        assert!(dels.is_empty());
        let nack = nacks
            .into_iter()
            .find(|(_, w)| matches!(w, Wire::Nack { .. }))
            .expect("nack emitted");
        let (_, served) = b.on_wire(t(4), nack.1);
        let retrans = served
            .into_iter()
            .find(|(_, w)| matches!(w, Wire::Data(d) if d.retransmit))
            .expect("retransmit served");
        let (dels, _) = c.on_wire(t(5), retrans.1);
        assert_eq!(
            dels.iter().map(|d| d.payload).collect::<Vec<_>>(),
            vec!["m1", "m2"]
        );
        // The slow original finally shows up: a pure duplicate.
        let (dels, _) = c.on_wire(t(6), m1);
        assert!(dels.is_empty(), "late original must not re-deliver");
        assert_eq!(c.stats().duplicates, 1);
        assert_eq!(c.stats().delivered, 2);
        assert_eq!(c.holdback_len(), 0);
    }

    #[test]
    fn parked_delta_dependent_delivers_exactly_once() {
        // Same exactly-once property through the delta-timestamp path: a
        // delta-stamped message arriving ahead of its decode base parks,
        // the FIFO-gap NACK brings a full-encoded retransmission, and the
        // late original is recognized as a duplicate.
        let cfg = GroupConfig {
            delta_timestamps: true,
            ..GroupConfig::default()
        };
        let mut a = CbcastEndpoint::new(0, 3, cfg.clone());
        let mut c = CbcastEndpoint::new(2, 3, cfg);
        let (_, o1) = a.multicast(t(0), "m1");
        let (_, o2) = a.multicast(t(1), "m2");
        let m1 = data_of(&o1);
        let m2 = data_of(&o2);
        assert!(
            matches!(&m2, Wire::Data(d) if d.vt_wire.is_delta()),
            "second message should ride a delta timestamp"
        );

        // m2 overtakes m1: undecodable, parked, FIFO gap NACKed.
        let (dels, nacks) = c.on_wire(t(2), m2);
        assert!(dels.is_empty());
        assert_eq!(c.parked_len(), 1);
        let nack = nacks
            .into_iter()
            .find(|(_, w)| matches!(w, Wire::Nack { .. }))
            .expect("fifo gap nacked");
        let (_, served) = a.on_wire(t(3), nack.1);
        let retrans = served
            .into_iter()
            .find(|(_, w)| matches!(w, Wire::Data(d) if d.retransmit))
            .expect("retransmit served");
        assert!(
            matches!(&retrans.1, Wire::Data(d) if !d.vt_wire.is_delta()),
            "retransmissions fall back to full encoding"
        );

        // The retransmitted base advances the decode chain and the parked
        // delta drains behind it.
        let (dels, _) = c.on_wire(t(4), retrans.1);
        assert_eq!(
            dels.iter().map(|d| d.payload).collect::<Vec<_>>(),
            vec!["m1", "m2"]
        );
        assert_eq!(c.parked_len(), 0);

        // Late original m1: its seq is behind the decode chain.
        let (dels, _) = c.on_wire(t(5), m1);
        assert!(dels.is_empty(), "late original must not re-deliver");
        assert_eq!(c.stats().duplicates, 1);
        assert_eq!(c.stats().delivered, 2);
    }

    #[test]
    fn view_install_reseeds_delta_chains() {
        // S3 regression: the decode chain was seeded once at creation and
        // never reset at view installs. Installing a view must invalidate
        // every chain; the first post-install send travels full-encoded to
        // re-seed receivers, after which deltas chain on correctly.
        let cfg = GroupConfig {
            delta_timestamps: true,
            ..GroupConfig::default()
        };
        let mut a = CbcastEndpoint::new(0, 3, cfg.clone());
        let mut c = CbcastEndpoint::new(2, 3, cfg);
        let (_, o1) = a.multicast(t(0), "m1");
        c.on_wire(t(1), data_of(&o1));
        let cut = c.clock().clone();
        a.on_view_install(t(1), &[0, 2], &cut);
        c.on_view_install(t(1), &[0, 2], &cut);
        // First post-install send re-seeds: full encoding even though
        // delta timestamps are on.
        let (_, o2) = a.multicast(t(2), "m2");
        assert!(
            matches!(&data_of(&o2), Wire::Data(d) if !d.vt_wire.is_delta()),
            "first post-install message must be full-encoded"
        );
        let (dels, _) = c.on_wire(t(3), data_of(&o2));
        assert_eq!(dels.iter().map(|d| d.payload).collect::<Vec<_>>(), ["m2"]);
        // Back to deltas, decoding against the re-seeded base.
        let (_, o3) = a.multicast(t(4), "m3");
        assert!(matches!(&data_of(&o3), Wire::Data(d) if d.vt_wire.is_delta()));
        let (dels, _) = c.on_wire(t(5), data_of(&o3));
        assert_eq!(dels.iter().map(|d| d.payload).collect::<Vec<_>>(), ["m3"]);
        assert_eq!(c.stats().ts_decode_errors, 0);
    }

    #[test]
    fn post_view_delta_against_stale_base_is_parked_and_recovered() {
        // S3 regression, receiver side: a delta that crosses the view
        // boundary (its sender has not re-seeded yet) must not decode
        // against the stale base — it parks and comes back full via NACK.
        let cfg = GroupConfig {
            delta_timestamps: true,
            ..GroupConfig::default()
        };
        let mut a = CbcastEndpoint::new(0, 3, cfg.clone());
        let mut c = CbcastEndpoint::new(2, 3, cfg);
        let (_, o1) = a.multicast(t(0), "m1");
        c.on_wire(t(1), data_of(&o1));
        let cut = c.clock().clone();
        c.on_view_install(t(1), &[0, 2], &cut); // only the receiver installed
        let (_, o2) = a.multicast(t(2), "m2"); // delta against m1's vt
        assert!(matches!(&data_of(&o2), Wire::Data(d) if d.vt_wire.is_delta()));
        let (dels, nacks) = c.on_wire(t(3), data_of(&o2));
        assert!(dels.is_empty(), "stale-base delta must not decode");
        assert_eq!(c.parked_len(), 1);
        assert_eq!(c.stats().ts_decode_errors, 0, "parked, not mis-decoded");
        let nack = nacks
            .into_iter()
            .find(|(_, w)| matches!(w, Wire::Nack { .. }))
            .expect("chain gap nacked");
        let (_, served) = a.on_wire(t(4), nack.1);
        let retrans = served
            .into_iter()
            .find(|(_, w)| matches!(w, Wire::Data(d) if d.retransmit))
            .expect("retransmit served");
        let (dels, _) = c.on_wire(t(5), retrans.1);
        assert_eq!(dels.iter().map(|d| d.payload).collect::<Vec<_>>(), ["m2"]);
        assert_eq!(c.parked_len(), 0);
    }

    #[test]
    fn freeze_defers_delivery_until_install() {
        let (mut a, mut b, _) = trio();
        let (_, o1) = a.multicast(t(0), "m1");
        b.freeze(t(0));
        let (dels, _) = b.on_wire(t(1), data_of(&o1));
        assert!(dels.is_empty(), "nothing delivers during the blackout");
        assert!(b.is_frozen());
        assert_eq!(b.holdback_len(), 1);
        assert_eq!(b.clock().get(0), 0, "flush clock unchanged while frozen");
        // The install (same membership) thaws and drains in causal order.
        let cut = a.clock().clone();
        let dels = b.on_view_install(t(2), &[0, 1, 2], &cut);
        assert_eq!(dels.iter().map(|d| d.payload).collect::<Vec<_>>(), ["m1"]);
        assert!(!b.is_frozen());
        assert_eq!(b.clock().get(0), 1);
    }

    #[test]
    fn freeze_protects_the_cut_across_removal() {
        // Without the blackout, b would deliver m2 after promising the
        // coordinator a clock of 1 — running past the agreed cut, the
        // exact virtual-synchrony violation the campaigns check for.
        let (mut a, mut b, _) = trio();
        let (_, o1) = a.multicast(t(0), "m1");
        let (_, o2) = a.multicast(t(1), "m2");
        b.on_wire(t(2), data_of(&o1));
        b.freeze(t(2)); // flush begins; b's FlushOk carries clock[0] = 1
        let (dels, _) = b.on_wire(t(3), data_of(&o2));
        assert!(dels.is_empty(), "m2 must not deliver during the blackout");
        let cut = b.clock().clone();
        let dels = b.on_view_install(t(4), &[1, 2], &cut);
        assert!(dels.is_empty(), "beyond-cut m2 was purged, not delivered");
        assert_eq!(b.clock().get(0), 1);
        assert_eq!(b.holdback_len(), 0);
    }

    #[test]
    fn removed_sender_beyond_cut_is_rejected() {
        let (mut a, _, mut c) = trio();
        let (_, o1) = a.multicast(t(0), "m1");
        let (_, o2) = a.multicast(t(1), "m2");
        c.on_wire(t(2), data_of(&o1));
        // A view change removes member 0 with cut = c's clock: m1 is part
        // of the old view's history, m2 is not.
        let cut = c.clock().clone();
        c.on_view_install(t(2), &[1, 2], &cut);
        let (dels, _) = c.on_wire(t(3), data_of(&o2));
        assert!(dels.is_empty(), "beyond-cut message from removed sender");
        assert_eq!(c.stats().rejected_removed, 1);
        assert_eq!(c.holdback_len(), 0);
    }

    #[test]
    fn removed_sender_below_cut_is_chased_and_delivered() {
        // The cut promises m1 was delivered somewhere; a survivor that
        // missed it must chase and deliver it even though its sender is
        // gone — that is what makes the cut an agreed history.
        let (mut a, mut b, mut c) = trio();
        let (_, o1) = a.multicast(t(0), "m1");
        b.on_wire(t(1), data_of(&o1));
        let cut = b.clock().clone();
        b.on_view_install(t(1), &[1, 2], &cut);
        c.on_view_install(t(1), &[1, 2], &cut);
        let out = c.on_tick(t(2));
        let nack = out
            .into_iter()
            .find(|(_, w)| matches!(w, Wire::Nack { .. }))
            .expect("install registered the below-cut gap as missing");
        let (_, served) = b.on_wire(t(3), nack.1);
        let retrans = served
            .into_iter()
            .find(|(_, w)| matches!(w, Wire::Data(d) if d.retransmit))
            .expect("survivor serves from its buffer");
        let (dels, _) = c.on_wire(t(4), retrans.1);
        assert_eq!(dels.iter().map(|d| d.payload).collect::<Vec<_>>(), ["m1"]);
    }

    #[test]
    fn probe_records_full_span_lifecycle() {
        use simnet::obs::Stage;
        // m1 → m2; c gets m2 first, so m2's span passes through every
        // stage: wire, holdback-enter, deliverable, delivered.
        let (mut a, mut b, mut c) = trio();
        let (probe, rec) = simnet::obs::ProbeHandle::recorder(64);
        c.set_probe(probe);
        let (_, o1) = a.multicast(t(0), "m1");
        b.on_wire(t(1), data_of(&o1));
        let (_, o2) = b.multicast(t(2), "m2");
        c.on_wire(t(3), data_of(&o2));
        c.on_wire(t(4), data_of(&o1));
        let rec = rec.borrow();
        let stages: Vec<(String, Stage)> = rec
            .events(2)
            .iter()
            .filter_map(|e| match e {
                simnet::obs::ObsEvent::Span { span, stage, .. } => Some((span.to_string(), *stage)),
                _ => None,
            })
            .collect();
        let m2 = MsgId { sender: 1, seq: 1 };
        let m2_stages: Vec<Stage> = stages
            .iter()
            .filter(|(s, _)| *s == span_of(m2).to_string())
            .map(|(_, st)| *st)
            .collect();
        assert_eq!(
            m2_stages,
            vec![
                Stage::Wire,
                Stage::HoldbackEnter,
                Stage::Deliverable,
                Stage::Delivered
            ]
        );
        // The holdback-enter note names the exact missing predecessor.
        let enter_note = rec
            .events(2)
            .iter()
            .find_map(|e| match e {
                simnet::obs::ObsEvent::Span {
                    stage: Stage::HoldbackEnter,
                    note,
                    ..
                } => Some(note.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(enter_note, "waiting on m0.1");
    }

    #[test]
    fn blocked_report_names_missing_predecessor() {
        for indexed in [false, true] {
            let cfg = GroupConfig {
                indexed_holdback: indexed,
                ..GroupConfig::default()
            };
            let mut a = CbcastEndpoint::new(0, 3, cfg.clone());
            let mut b = CbcastEndpoint::new(1, 3, cfg.clone());
            let mut c = CbcastEndpoint::new(2, 3, cfg);
            let (_, o1) = a.multicast(t(0), "m1");
            b.on_wire(t(1), data_of(&o1));
            let (_, o2) = b.multicast(t(2), "m2");
            c.on_wire(t(3), data_of(&o2));
            let reports = c.blocked_report();
            assert_eq!(reports.len(), 1, "indexed={indexed}");
            let r = &reports[0];
            assert_eq!(r.msg, MsgId { sender: 1, seq: 1 });
            assert_eq!(r.arrived_at, t(3));
            assert_eq!(r.waits.len(), 1);
            assert_eq!(r.waits[0].id, MsgId { sender: 0, seq: 1 });
            assert_eq!(
                r.waits[0].status,
                WaitStatus::Chased { referenced_by: 1 },
                "m0.1 is being chased via NACK from b, who referenced it"
            );
        }
    }

    #[test]
    fn probed_run_observes_identical_protocol_state() {
        // Determinism guarantee: attaching a recorder must not change
        // stats, clocks, or holdback work — only observe them.
        let run = |probed: bool| {
            let (mut a, mut b, mut c) = trio();
            if probed {
                let (probe, _rec) = simnet::obs::ProbeHandle::recorder(128);
                c.set_probe(probe);
            }
            let (_, o1) = a.multicast(t(0), "m1");
            b.on_wire(t(1), data_of(&o1));
            let (_, o2) = b.multicast(t(2), "m2");
            c.on_wire(t(3), data_of(&o2));
            let _ = c.blocked_report();
            c.on_wire(t(4), data_of(&o1));
            (
                c.clock().clone(),
                c.stats().delivered,
                c.stats().holdback_work,
                c.stats().nacks_sent,
            )
        };
        assert_eq!(run(false), run(true));
    }

    /// Deterministic Fisher-Yates driven by a 64-bit LCG, so the proptest
    /// permutation reproduces from its generated seed.
    fn shuffle_with_seed<T>(v: &mut [T], mut s: u64) {
        for i in (1..v.len()).rev() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = ((s >> 33) as usize) % (i + 1);
            v.swap(i, j);
        }
    }

    mod equivalence {
        use super::*;
        use proptest::prelude::*;
        use std::collections::{HashMap, VecDeque};

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            /// The indexed holdback is a pure data-structure swap: for any
            /// causal workload and any arrival permutation, scan and
            /// indexed observers deliver the same messages in the same
            /// order — and deliver all of them.
            #[test]
            fn scan_and_indexed_holdback_agree(
                script in collection::vec((0usize..3, bool::ANY), 1..32),
                seed in 0u64..u64::MAX,
                delta in bool::ANY,
            ) {
                let sender_cfg = GroupConfig {
                    delta_timestamps: delta,
                    ..GroupConfig::default()
                };
                let mut senders: Vec<CbcastEndpoint<usize>> = (0..3)
                    .map(|i| CbcastEndpoint::new(i, 4, sender_cfg.clone()))
                    .collect();
                // `relay == false` steps withhold the message from the
                // other senders, making later messages concurrent with it.
                let mut wires = Vec::new();
                for (step, &(s, relay)) in script.iter().enumerate() {
                    let (_, out) = senders[s].multicast(t(step as u64), step);
                    let w = data_of(&out);
                    if relay {
                        for (r, other) in senders.iter_mut().enumerate() {
                            if r != s {
                                other.on_wire(t(step as u64), w.clone());
                            }
                        }
                    }
                    wires.push(w);
                }
                // Retransmission store: delta mode leans on NACK recovery
                // (a full encoding that jumps the decode chain drops the
                // parked deltas behind it), so an observer is only
                // complete with a served NACK channel.
                let mut store = HashMap::new();
                for w in &wires {
                    if let Wire::Data(d) = w {
                        store.insert(d.id, d.clone());
                    }
                }
                shuffle_with_seed(&mut wires, seed);

                let run = |indexed: bool| {
                    let mut obs = CbcastEndpoint::<usize>::new(3, 4, GroupConfig {
                        indexed_holdback: indexed,
                        delta_timestamps: delta,
                        ..GroupConfig::default()
                    });
                    let mut delivered = Vec::new();
                    let mut inbox: VecDeque<Wire<usize>> = wires.iter().cloned().collect();
                    let mut at = 100u64;
                    while let Some(w) = inbox.pop_front() {
                        let (ds, outs) = obs.on_wire(t(at), w);
                        at += 1;
                        delivered.extend(ds.into_iter().map(|d| d.id));
                        for (_, ow) in outs {
                            if let Wire::Nack { want, .. } = ow {
                                for id in want {
                                    let mut copy = store[&id].clone();
                                    copy.retransmit = true;
                                    copy.make_full();
                                    inbox.push_back(Wire::Data(copy));
                                }
                            }
                        }
                    }
                    delivered
                };
                let by_scan = run(false);
                let by_indexed = run(true);
                prop_assert_eq!(&by_scan, &by_indexed, "identical delivery order");
                prop_assert_eq!(
                    by_scan.len(),
                    script.len(),
                    "observer received every message, so all must deliver"
                );
            }
        }
    }
}
