//! Causal multicast (`cbcast`) — the centerpiece of CATOCS.
//!
//! This is the ISIS "lightweight causal multicast" design \[Birman,
//! Schiper, Stephenson '91\]:
//!
//! - every multicast carries the sender's vector time;
//! - a receiver delivers a message from member `s` with timestamp `vt`
//!   only when `vt[s] == local[s] + 1` and `vt[k] <= local[k]` for all
//!   `k != s`; otherwise the message waits in a *holdback queue*;
//! - every process buffers every message (its own and others') until the
//!   message is *stable* — known delivered everywhere — so that missing
//!   causal predecessors can be refetched from whoever references them
//!   (NACK-based recovery). This buffering is exactly the memory cost the
//!   paper's §5 predicts grows quadratically system-wide;
//! - stability information travels on the vector timestamps of data
//!   messages (piggyback mode) and/or periodic ack gossip.
//!
//! The endpoint is a pure state machine: the caller supplies the current
//! time and delivers wire messages; the endpoint returns deliveries and
//! outbound messages. This makes the protocol directly unit-testable and
//! lets the same code run under `simnet` or a real transport.

use crate::group::{GroupConfig, MsgId};
use crate::stability::StabilityTracker;
use crate::wire::{DataMsg, Delivery, Dest, EndpointStats, Out, Wire};
use clocks::vector::VectorClock;
use simnet::time::SimTime;
use std::collections::BTreeMap;

/// A message sitting in the holdback queue.
#[derive(Debug)]
struct Pending<P> {
    msg: DataMsg<P>,
    arrived_at: SimTime,
}

/// Tracking for a message we know exists but have not received.
#[derive(Debug, Clone, Copy)]
struct Missing {
    /// Who referenced it (we NACK them first — the paper's §5: "the
    /// receiver of a new message assumes it can get copies of the causally
    /// referenced messages from the sender of the new message").
    referenced_by: usize,
    /// Last time we NACKed for it ([`SimTime::MAX`] = never).
    last_nack: SimTime,
}

/// The causal multicast endpoint for one group member.
///
/// # Examples
///
/// ```
/// use catocs::cbcast::CbcastEndpoint;
/// use catocs::group::GroupConfig;
/// use catocs::wire::{Dest, Wire};
/// use simnet::time::SimTime;
///
/// let cfg = GroupConfig::default();
/// let mut alice: CbcastEndpoint<&str> = CbcastEndpoint::new(0, 2, cfg.clone());
/// let mut bob: CbcastEndpoint<&str> = CbcastEndpoint::new(1, 2, cfg);
///
/// // Alice multicasts; the self-delivery is immediate.
/// let (self_delivery, out) = alice.multicast(SimTime::ZERO, "hello");
/// assert_eq!(self_delivery.payload, "hello");
///
/// // Bob receives the broadcast copy and delivers it causally.
/// let data = out
///     .into_iter()
///     .find_map(|(d, w)| (d == Dest::All).then_some(w))
///     .unwrap();
/// let (delivered, _out) = bob.on_wire(SimTime::from_millis(1), data);
/// assert_eq!(delivered[0].payload, "hello");
/// ```
#[derive(Debug)]
pub struct CbcastEndpoint<P> {
    me: usize,
    n: usize,
    cfg: GroupConfig,
    /// Delivered clock: `vt[k]` = number of messages from `k` delivered
    /// here (own sends count as delivered-at-send).
    vt: VectorClock,
    /// Messages received but not yet causally deliverable.
    holdback: Vec<Pending<P>>,
    /// Unstable messages retained for retransmission, by id.
    buffer: BTreeMap<MsgId, DataMsg<P>>,
    /// Group-wide delivery knowledge (matrix clock) and GC frontier.
    stability: StabilityTracker,
    /// Known-missing messages awaiting NACK/recovery.
    missing: BTreeMap<MsgId, Missing>,
    stats: EndpointStats,
}

impl<P: Clone> CbcastEndpoint<P> {
    /// Creates the endpoint for member `me` of a group of `n`.
    pub fn new(me: usize, n: usize, cfg: GroupConfig) -> Self {
        assert!(me < n, "member index out of range");
        CbcastEndpoint {
            me,
            n,
            cfg,
            vt: VectorClock::new(n),
            holdback: Vec::new(),
            buffer: BTreeMap::new(),
            stability: StabilityTracker::new(n),
            missing: BTreeMap::new(),
            stats: EndpointStats::default(),
        }
    }

    /// This member's index.
    pub fn me(&self) -> usize {
        self.me
    }

    /// Group size.
    pub fn group_size(&self) -> usize {
        self.n
    }

    /// The delivered vector clock.
    pub fn clock(&self) -> &VectorClock {
        &self.vt
    }

    /// Endpoint statistics.
    pub fn stats(&self) -> &EndpointStats {
        &self.stats
    }

    /// The stability tracker (for experiments that inspect frontiers).
    pub fn stability(&self) -> &StabilityTracker {
        &self.stability
    }

    /// Number of unstable messages currently buffered.
    pub fn buffered_len(&self) -> usize {
        self.buffer.len()
    }

    /// Current holdback-queue length.
    pub fn holdback_len(&self) -> usize {
        self.holdback.len()
    }

    /// Retransmits every unstable buffered message to the whole group —
    /// the flush step of a view change (each survivor pushes what it has
    /// so the new view starts from a common message set).
    pub fn flush_unstable(&mut self) -> Vec<Out<P>> {
        let mut out = Vec::new();
        for m in self.buffer.values() {
            let mut copy = m.clone();
            copy.retransmit = true;
            let w = Wire::Data(copy);
            self.stats.control_bytes += w.overhead_bytes() as u64;
            out.push((Dest::All, w));
        }
        out
    }

    /// The current group-wide stable frontier (for instrumentation).
    pub fn stable_frontier(&self) -> VectorClock {
        self.stability.stable_frontier()
    }

    /// Multicasts `payload` to the group. Returns the local (immediate)
    /// self-delivery and the outbound wire messages.
    pub fn multicast(&mut self, now: SimTime, payload: P) -> (Delivery<P>, Vec<Out<P>>) {
        let seq = self.vt.tick(self.me);
        let id = MsgId {
            sender: self.me,
            seq,
        };
        let mut msg = DataMsg {
            id,
            vt: self.vt.clone(),
            payload: payload.clone(),
            retransmit: false,
            appended: Vec::new(),
        };
        if self.cfg.append_predecessors {
            // §3.4 footnote 4: carry unstable causal predecessors along
            // so receivers need not hold this message waiting for them.
            // Most-recent-first, capped.
            msg.appended = self
                .buffer
                .values()
                .rev()
                .filter(|m| m.id != id)
                .take(self.cfg.max_append)
                .map(|m| {
                    let mut copy = m.clone();
                    copy.appended = Vec::new();
                    copy.retransmit = true;
                    copy
                })
                .collect();
        }
        self.stats.sent += 1;
        self.stats.delivered += 1;
        let wire = Wire::Data(msg.clone());
        self.stats.data_overhead_bytes += wire.overhead_bytes() as u64;
        self.stability.record_local_delivery(self.me, self.me, seq);
        self.buffer.insert(id, msg);
        self.note_buffer();
        let delivery = Delivery {
            id,
            payload,
            arrived_at: now,
            delivered_at: now,
            gseq: None,
            waited_for: Vec::new(),
        };
        (delivery, vec![(Dest::All, wire)])
    }

    /// Handles an incoming wire message. Returns app deliveries (in causal
    /// order) and any outbound messages (NACKs, retransmits, acks).
    pub fn on_wire(&mut self, now: SimTime, wire: Wire<P>) -> (Vec<Delivery<P>>, Vec<Out<P>>) {
        let mut out = Vec::new();
        let mut delivered = Vec::new();
        match wire {
            Wire::Data(mut msg) => {
                self.stats.data_received += 1;
                // Appended predecessors are processed first, so the
                // carrying message rarely needs holdback.
                for pre in std::mem::take(&mut msg.appended) {
                    self.stats.data_received += 1;
                    self.on_data(now, pre, &mut out, &mut delivered);
                }
                self.on_data(now, msg, &mut out, &mut delivered);
            }
            Wire::AckGossip { from, delivered: d } => {
                self.stability.update_row(from, &d);
                // Gossip also reveals messages we never received (e.g. the
                // final message from a sender, dropped with no successor
                // to reference it): anything the peer has delivered that
                // we have not is missing here.
                for k in 0..self.n {
                    for seq in (self.vt.get(k) + 1)..=d.get(k) {
                        let id = MsgId { sender: k, seq };
                        let in_holdback = self.holdback.iter().any(|p| p.msg.id == id);
                        if !in_holdback {
                            self.missing.entry(id).or_insert(Missing {
                                referenced_by: from,
                                last_nack: SimTime::MAX,
                            });
                        }
                    }
                }
                self.collect_garbage();
            }
            Wire::Nack { from, want } => {
                for id in want {
                    if let Some(m) = self.buffer.get(&id) {
                        let mut copy = m.clone();
                        copy.retransmit = true;
                        self.stats.retransmits_served += 1;
                        let w = Wire::Data(copy);
                        self.stats.control_bytes += w.overhead_bytes() as u64;
                        out.push((Dest::One(from), w));
                    }
                }
            }
            // Order/Token/membership traffic is not cbcast's business;
            // the composing endpoint handles it.
            _ => {}
        }
        (delivered, out)
    }

    /// Periodic maintenance: ack gossip, NACK retries, buffer sampling.
    pub fn on_tick(&mut self, now: SimTime) -> Vec<Out<P>> {
        let mut out = Vec::new();
        // Gossip our delivered clock so peers can advance stability.
        let gossip = Wire::AckGossip {
            from: self.me,
            delivered: self.vt.clone(),
        };
        self.stats.acks_sent += 1;
        self.stats.control_bytes += gossip.overhead_bytes() as u64;
        out.push((Dest::All, gossip));
        // Re-NACK overdue missing messages.
        let mut batch: Vec<MsgId> = Vec::new();
        let mut target = None;
        for (&id, info) in self.missing.iter_mut() {
            let overdue = info.last_nack == SimTime::MAX
                || now.saturating_since(info.last_nack) >= self.cfg.nack_timeout;
            if overdue && batch.len() < self.cfg.max_nack_batch {
                batch.push(id);
                info.last_nack = now;
                target.get_or_insert(info.referenced_by);
            }
        }
        if !batch.is_empty() {
            // Ask everyone: any member buffering the message can serve it
            // (atomic delivery's whole point).
            let w = Wire::Nack {
                from: self.me,
                want: batch,
            };
            self.stats.nacks_sent += 1;
            self.stats.control_bytes += w.overhead_bytes() as u64;
            out.push((Dest::All, w));
        }
        self.note_buffer();
        out
    }

    fn on_data(
        &mut self,
        now: SimTime,
        msg: DataMsg<P>,
        out: &mut Vec<Out<P>>,
        delivered: &mut Vec<Delivery<P>>,
    ) {
        let sender = msg.id.sender;
        // The data's timestamp doubles as the sender's delivered clock —
        // piggybacked stability information.
        if self.cfg.piggyback_acks {
            self.stability.update_row(sender, &msg.vt);
        }
        // Duplicate (already delivered) or already held?
        if msg.id.seq <= self.vt.get(sender)
            || self.holdback.iter().any(|p| p.msg.id == msg.id)
        {
            self.stats.duplicates += 1;
            self.collect_garbage();
            return;
        }
        self.missing.remove(&msg.id);
        // Note any causal predecessors we have never seen.
        self.register_missing(now, &msg, out);
        self.holdback.push(Pending {
            msg,
            arrived_at: now,
        });
        self.drain_holdback(now, delivered);
        self.stats
            .note_holdback(self.holdback.len() as u64);
        self.collect_garbage();
    }

    /// Scans `msg`'s timestamp for messages we have neither delivered nor
    /// held, recording them as missing and emitting an immediate NACK to
    /// the referencing sender.
    fn register_missing(&mut self, now: SimTime, msg: &DataMsg<P>, out: &mut Vec<Out<P>>) {
        let mut want = Vec::new();
        for k in 0..self.n {
            let known = self.vt.get(k);
            let referenced = if k == msg.id.sender {
                msg.id.seq.saturating_sub(1)
            } else {
                msg.vt.get(k)
            };
            for seq in (known + 1)..=referenced {
                let id = MsgId { sender: k, seq };
                let in_holdback = self.holdback.iter().any(|p| p.msg.id == id);
                if !in_holdback && !self.missing.contains_key(&id) {
                    self.missing.insert(
                        id,
                        Missing {
                            referenced_by: msg.id.sender,
                            last_nack: now,
                        },
                    );
                    if want.len() < self.cfg.max_nack_batch {
                        want.push(id);
                    }
                }
            }
        }
        if !want.is_empty() {
            let w = Wire::Nack {
                from: self.me,
                want,
            };
            self.stats.nacks_sent += 1;
            self.stats.control_bytes += w.overhead_bytes() as u64;
            out.push((Dest::One(msg.id.sender), w));
        }
    }

    /// Delivers every holdback message that has become deliverable, in
    /// causal order, until a fixed point.
    fn drain_holdback(&mut self, now: SimTime, delivered: &mut Vec<Delivery<P>>) {
        loop {
            let idx = self
                .holdback
                .iter()
                .position(|p| self.vt.deliverable(&p.msg.vt, p.msg.id.sender));
            let Some(idx) = idx else { break };
            let pending = self.holdback.swap_remove(idx);
            let msg = pending.msg;
            let sender = msg.id.sender;
            let seq = msg.id.seq;
            self.vt.set(sender, seq);
            // Everything else in the timestamp is already delivered here,
            // so a full merge is a no-op; set() is the precise update.
            self.stability.record_local_delivery(self.me, sender, seq);
            self.missing.remove(&msg.id);
            let was_held = pending.arrived_at < now;
            let waited_for = if was_held {
                // What did we wait on? The causal predecessors that were
                // undelivered at arrival. Reconstruct cheaply: anything in
                // msg.vt above our clock at arrival is unknowable now, so
                // we report the direct predecessor gap from each sender.
                self.reconstruct_waits(&msg)
            } else {
                Vec::new()
            };
            self.stats.delivered += 1;
            if was_held {
                self.stats.delivered_after_hold += 1;
                self.stats.hold_time_total += now.saturating_since(pending.arrived_at);
            }
            self.buffer.insert(msg.id, msg.clone());
            delivered.push(Delivery {
                id: msg.id,
                payload: msg.payload,
                arrived_at: pending.arrived_at,
                delivered_at: now,
                gseq: None,
                waited_for,
            });
        }
        self.stats.note_holdback(self.holdback.len() as u64);
        self.note_buffer();
    }

    fn reconstruct_waits(&self, msg: &DataMsg<P>) -> Vec<MsgId> {
        // The immediate causal predecessors of msg: the latest message
        // from each member visible in its timestamp (other than itself).
        let mut v = Vec::new();
        for k in 0..self.n {
            let seq = if k == msg.id.sender {
                msg.id.seq.saturating_sub(1)
            } else {
                msg.vt.get(k)
            };
            if seq > 0 {
                v.push(MsgId { sender: k, seq });
            }
        }
        v
    }

    fn collect_garbage(&mut self) {
        let frontier = self.stability.stable_frontier();
        let before = self.buffer.len();
        self.buffer
            .retain(|id, _| id.seq > frontier.get(id.sender));
        self.stats.stabilized += (before - self.buffer.len()) as u64;
        self.note_buffer();
    }

    fn note_buffer(&mut self) {
        let msgs = self.buffer.len() as u64;
        let per_msg = (self.cfg.payload_bytes + 12 + 4 + 8 * self.n) as u64;
        self.stats.note_buffer(msgs, msgs * per_msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn trio() -> (
        CbcastEndpoint<&'static str>,
        CbcastEndpoint<&'static str>,
        CbcastEndpoint<&'static str>,
    ) {
        let cfg = GroupConfig::default();
        (
            CbcastEndpoint::new(0, 3, cfg.clone()),
            CbcastEndpoint::new(1, 3, cfg.clone()),
            CbcastEndpoint::new(2, 3, cfg),
        )
    }

    fn data_of(out: &[Out<&'static str>]) -> Wire<&'static str> {
        out.iter()
            .find_map(|(d, w)| match (d, w) {
                (Dest::All, Wire::Data(_)) => Some(w.clone()),
                _ => None,
            })
            .expect("a broadcast data message")
    }

    #[test]
    fn self_delivery_is_immediate() {
        let (mut a, _, _) = trio();
        let (d, out) = a.multicast(t(0), "hello");
        assert_eq!(d.id, MsgId { sender: 0, seq: 1 });
        assert!(!d.was_held());
        assert_eq!(out.len(), 1);
        assert_eq!(a.stats().sent, 1);
        assert_eq!(a.clock().get(0), 1);
    }

    #[test]
    fn in_order_arrival_delivers_immediately() {
        let (mut a, mut b, _) = trio();
        let (_, out) = a.multicast(t(0), "m1");
        let (dels, _) = b.on_wire(t(1), data_of(&out));
        assert_eq!(dels.len(), 1);
        assert_eq!(dels[0].payload, "m1");
        assert!(!dels[0].was_held());
    }

    #[test]
    fn causal_order_enforced_across_senders() {
        // a sends m1; b receives it then sends m2 (so m1 → m2);
        // c receives m2 FIRST — must hold it until m1 arrives.
        let (mut a, mut b, mut c) = trio();
        let (_, out1) = a.multicast(t(0), "m1");
        let m1 = data_of(&out1);
        b.on_wire(t(1), m1.clone());
        let (_, out2) = b.multicast(t(2), "m2");
        let m2 = data_of(&out2);

        let (dels, nacks) = c.on_wire(t(3), m2);
        assert!(dels.is_empty(), "m2 must be held until m1 delivered");
        assert_eq!(c.holdback_len(), 1);
        // c noticed m1 is missing and NACKed the referencing sender (b).
        assert!(nacks
            .iter()
            .any(|(d, w)| matches!(w, Wire::Nack { .. }) && *d == Dest::One(1)));

        let (dels, _) = c.on_wire(t(4), m1);
        let order: Vec<&str> = dels.iter().map(|d| d.payload).collect();
        assert_eq!(order, vec!["m1", "m2"], "causal order restored");
        assert!(dels[1].was_held());
        assert_eq!(dels[1].hold_time(), SimDuration::from_millis(1));
        assert_eq!(c.holdback_len(), 0);
    }

    #[test]
    fn concurrent_messages_deliver_in_arrival_order() {
        // a and b multicast concurrently; c may deliver in either arrival
        // order — neither is held.
        let (mut a, mut b, mut c) = trio();
        let (_, oa) = a.multicast(t(0), "ma");
        let (_, ob) = b.multicast(t(0), "mb");
        let (d1, _) = c.on_wire(t(1), data_of(&ob));
        let (d2, _) = c.on_wire(t(2), data_of(&oa));
        assert_eq!(d1.len(), 1);
        assert_eq!(d2.len(), 1);
        assert!(!d1[0].was_held() && !d2[0].was_held());
    }

    #[test]
    fn fifo_gap_from_same_sender_is_held() {
        let (mut a, mut b, _) = trio();
        let (_, o1) = a.multicast(t(0), "m1");
        let (_, o2) = a.multicast(t(1), "m2");
        // m2 overtakes m1.
        let (dels, _) = b.on_wire(t(2), data_of(&o2));
        assert!(dels.is_empty());
        let (dels, _) = b.on_wire(t(3), data_of(&o1));
        let order: Vec<&str> = dels.iter().map(|d| d.payload).collect();
        assert_eq!(order, vec!["m1", "m2"]);
    }

    #[test]
    fn duplicates_are_discarded() {
        let (mut a, mut b, _) = trio();
        let (_, out) = a.multicast(t(0), "m1");
        let m = data_of(&out);
        b.on_wire(t(1), m.clone());
        let (dels, _) = b.on_wire(t(2), m);
        assert!(dels.is_empty());
        assert_eq!(b.stats().duplicates, 1);
    }

    #[test]
    fn nack_recovery_roundtrip() {
        let (mut a, mut b, mut c) = trio();
        let (_, o1) = a.multicast(t(0), "m1");
        let m1 = data_of(&o1);
        b.on_wire(t(1), m1);
        let (_, o2) = b.multicast(t(2), "m2");
        // c gets m2 only; its immediate NACK goes to b.
        let (_, nacks) = c.on_wire(t(3), data_of(&o2));
        let nack = nacks
            .into_iter()
            .find(|(_, w)| matches!(w, Wire::Nack { .. }))
            .expect("nack emitted");
        // b serves the retransmission from its buffer (atomic delivery:
        // b buffered a's message).
        let (_, served) = b.on_wire(t(4), nack.1);
        let retrans = served
            .into_iter()
            .find(|(_, w)| matches!(w, Wire::Data(d) if d.retransmit))
            .expect("retransmit served");
        assert_eq!(b.stats().retransmits_served, 1);
        let (dels, _) = c.on_wire(t(5), retrans.1);
        assert_eq!(
            dels.iter().map(|d| d.payload).collect::<Vec<_>>(),
            vec!["m1", "m2"]
        );
    }

    #[test]
    fn tick_renacks_overdue_missing() {
        let (mut a, mut b, mut c) = trio();
        let (_, o1) = a.multicast(t(0), "m1");
        b.on_wire(t(1), data_of(&o1));
        let (_, o2) = b.multicast(t(2), "m2");
        c.on_wire(t(3), data_of(&o2));
        // Before the timeout no re-NACK; after, one goes to everyone.
        let out = c.on_tick(t(3) + SimDuration::from_micros(1));
        assert!(
            !out.iter()
                .any(|(_, w)| matches!(w, Wire::Nack { .. })),
            "too early to re-NACK"
        );
        let out = c.on_tick(t(3) + GroupConfig::default().nack_timeout);
        let renack = out
            .iter()
            .find(|(_, w)| matches!(w, Wire::Nack { .. }))
            .expect("re-NACK after timeout");
        assert_eq!(renack.0, Dest::All);
    }

    #[test]
    fn stability_garbage_collects_buffers() {
        let (mut a, mut b, mut c) = trio();
        let (_, out) = a.multicast(t(0), "m1");
        let m = data_of(&out);
        b.on_wire(t(1), m.clone());
        c.on_wire(t(1), m);
        assert_eq!(a.buffered_len(), 1);
        // Everyone gossips; a learns the message is stable and drops it.
        let gb = Wire::AckGossip {
            from: 1,
            delivered: b.clock().clone(),
        };
        let gc = Wire::AckGossip {
            from: 2,
            delivered: c.clock().clone(),
        };
        a.on_wire(t(2), gb);
        assert_eq!(a.buffered_len(), 1, "not yet known stable");
        a.on_wire(t(3), gc);
        assert_eq!(a.buffered_len(), 0, "stable message GC'd");
        assert_eq!(a.stats().stabilized, 1);
    }

    #[test]
    fn receivers_buffer_messages_for_peers() {
        // Atomic delivery: b buffers a's message and can serve c.
        let (mut a, mut b, _) = trio();
        let (_, out) = a.multicast(t(0), "m1");
        b.on_wire(t(1), data_of(&out));
        assert_eq!(b.buffered_len(), 1);
        let _ = a;
    }

    #[test]
    fn transitive_causality_three_hops() {
        // m1 at a → m2 at b → m3 at c; a fresh observer receiving only m3
        // must wait for both predecessors.
        let cfg = GroupConfig::default();
        let mut a = CbcastEndpoint::new(0, 4, cfg.clone());
        let mut b = CbcastEndpoint::new(1, 4, cfg.clone());
        let mut c = CbcastEndpoint::new(2, 4, cfg.clone());
        let mut d = CbcastEndpoint::new(3, 4, cfg);

        let (_, o1) = a.multicast(t(0), "m1");
        b.on_wire(t(1), data_of(&o1));
        let (_, o2) = b.multicast(t(2), "m2");
        c.on_wire(t(3), data_of(&o1));
        c.on_wire(t(3), data_of(&o2));
        let (_, o3) = c.multicast(t(4), "m3");

        let (dels, _) = d.on_wire(t(5), data_of(&o3));
        assert!(dels.is_empty());
        let (dels, _) = d.on_wire(t(6), data_of(&o2));
        assert!(dels.is_empty());
        let (dels, _) = d.on_wire(t(7), data_of(&o1));
        assert_eq!(
            dels.iter().map(|x| x.payload).collect::<Vec<_>>(),
            vec!["m1", "m2", "m3"]
        );
        // The waited_for metadata names the direct predecessors.
        assert!(dels[2].waited_for.contains(&MsgId { sender: 1, seq: 1 }));
    }

    #[test]
    fn appended_predecessors_avoid_holdback() {
        // §3.4 footnote 4: with predecessors appended, a receiver that
        // missed m1 can still deliver m2 immediately.
        let cfg = GroupConfig {
            append_predecessors: true,
            ..GroupConfig::default()
        };
        let mut a = CbcastEndpoint::new(0, 3, cfg.clone());
        let mut b = CbcastEndpoint::new(1, 3, cfg.clone());
        let mut c = CbcastEndpoint::new(2, 3, cfg);
        let (_, o1) = a.multicast(t(0), "m1");
        b.on_wire(t(1), data_of(&o1));
        let (_, o2) = b.multicast(t(2), "m2");
        // c never saw m1; m2 carries it along.
        let (dels, _) = c.on_wire(t(3), data_of(&o2));
        assert_eq!(
            dels.iter().map(|d| d.payload).collect::<Vec<_>>(),
            vec!["m1", "m2"],
            "both deliver at once — no holdback, no NACK round trip"
        );
        assert!(!dels[1].was_held());
        // The cost: the wire message was bigger.
        let plain = Wire::Data(DataMsg {
            id: MsgId { sender: 1, seq: 1 },
            vt: VectorClock::new(3),
            payload: "x",
            retransmit: false,
            appended: Vec::new(),
        });
        assert!(data_of(&o2).overhead_bytes() > plain.overhead_bytes());
    }

    #[test]
    #[should_panic(expected = "member index out of range")]
    fn rejects_bad_member_index() {
        let _ = CbcastEndpoint::<()>::new(3, 3, GroupConfig::default());
    }
}
