//! Token-ring totally ordered multicast — the ablation partner of the
//! fixed-sequencer [`crate::abcast`] design.
//!
//! A single token circulates around the members in index order. A member
//! may only multicast while holding the token; it stamps each message with
//! the token's global sequence counter directly, so the total order is
//! established at the sender with no separate Order message. Submissions
//! made without the token queue locally until the token arrives.
//!
//! Trade-offs versus the sequencer (measured by the `ablate` experiment):
//! sending latency depends on the token rotation time (bad at low load,
//! scales with N), but ordering adds no extra hop and the sequencer
//! hotspot disappears.

use crate::group::{GroupConfig, MsgId};
use crate::wire::{DataMsg, Delivery, Dest, EndpointStats, Out, Wire};
use clocks::vector::VectorClock;
use simnet::obs::{ObsEvent, PhaseEdge, PhaseKind, ProbeHandle, SpanId, Stage, WaitKind};
use simnet::time::SimTime;
use std::collections::{BTreeMap, VecDeque};

/// The token-ring total-order endpoint for one member.
#[derive(Debug)]
pub struct TokenAbcastEndpoint<P> {
    me: usize,
    n: usize,
    cfg: GroupConfig,
    /// Whether we currently hold the token.
    holding: bool,
    /// The token's global sequence counter while held.
    token_gseq: u64,
    token_hops: u64,
    /// Payloads submitted while not holding the token.
    pending_submit: VecDeque<(P, SimTime)>,
    /// Received (or self-sent) data by global sequence.
    by_gseq: BTreeMap<u64, (DataMsg<P>, SimTime)>,
    /// Next global sequence to deliver.
    next_deliver: u64,
    /// Per-sender send counter (message identity).
    next_seq: u64,
    /// Last NACK time for a delivery gap.
    last_nack: Option<SimTime>,
    /// Highest token hop count seen (dedupes retransmitted tokens).
    last_token_hops: u64,
    /// A token pass awaiting acknowledgement: (receiver, gseq, hops,
    /// last send time). Retransmitted until `TokenAck` arrives — a lost
    /// token halts the entire total order.
    unacked_pass: Option<(usize, u64, u64, SimTime)>,
    /// Observability sink (token rotations). Disabled by default.
    probe: ProbeHandle,
    stats: EndpointStats,
    /// Buffer of own sent messages for retransmission, keyed by gseq.
    sent: BTreeMap<u64, DataMsg<P>>,
}

impl<P: Clone> TokenAbcastEndpoint<P> {
    /// Creates the endpoint; member 0 starts holding the token with the
    /// counter at 0.
    pub fn new(me: usize, n: usize, cfg: GroupConfig) -> Self {
        assert!(me < n, "member index out of range");
        TokenAbcastEndpoint {
            me,
            n,
            cfg,
            holding: me == 0,
            token_gseq: 0,
            token_hops: 0,
            pending_submit: VecDeque::new(),
            by_gseq: BTreeMap::new(),
            next_deliver: 0,
            next_seq: 0,
            last_nack: None,
            last_token_hops: 0,
            unacked_pass: None,
            probe: ProbeHandle::none(),
            stats: EndpointStats::default(),
            sent: BTreeMap::new(),
        }
    }

    /// Installs an observability probe; token arrivals are recorded as
    /// token-rotation phase events.
    pub fn set_probe(&mut self, probe: ProbeHandle) {
        self.probe = probe;
    }

    /// This member's index.
    pub fn me(&self) -> usize {
        self.me
    }

    /// Whether this member currently holds the token.
    pub fn holding_token(&self) -> bool {
        self.holding
    }

    /// Endpoint statistics.
    pub fn stats(&self) -> &EndpointStats {
        &self.stats
    }

    /// Submissions waiting for the token.
    pub fn queued_len(&self) -> usize {
        self.pending_submit.len()
    }

    /// Telemetry hook: instantaneous gauges for the time-series sampler.
    pub fn sample(&self, emit: &mut dyn FnMut(&str, f64)) {
        emit("token.queued", self.pending_submit.len() as f64);
        emit(
            "token.undelivered",
            self.by_gseq.range(self.next_deliver..).count() as f64,
        );
        emit("token.sent_buffer", self.sent.len() as f64);
    }

    /// Contributes this endpoint's live blocking edges to a wait-graph
    /// snapshot (read-only; see [`crate::waitgraph`]): submissions
    /// queued without the token block the process on its token-rotation
    /// phase, an unacknowledged token pass blocks that phase on the
    /// receiver (a lost token halts the whole order), and buffered data
    /// beyond a delivery gap blocks on the rotation that fills it.
    /// `now` stands in for a pass that has not been (re)sent yet.
    pub fn wait_edges(&self, now: SimTime, out: &mut Vec<crate::waitgraph::WaitEdge>) {
        use crate::waitgraph::{PhaseTag, WaitEdge, WaitNode};
        let rotation = WaitNode::Phase {
            kind: PhaseTag::TokenRotation,
            at: self.me,
        };
        if !self.holding {
            if let Some((_, submitted)) = self.pending_submit.front() {
                out.push(WaitEdge {
                    from: WaitNode::Proc(self.me),
                    to: rotation,
                    who: self.me,
                    since: *submitted,
                    reason: "submits queued awaiting token",
                });
            }
        }
        if let Some((receiver, _, _, last_send)) = self.unacked_pass {
            out.push(WaitEdge {
                from: rotation,
                to: WaitNode::Proc(receiver),
                who: self.me,
                since: if last_send == SimTime::ZERO {
                    now
                } else {
                    last_send
                },
                reason: "token pass unacknowledged",
            });
        }
        for (&gseq, (msg, arrived)) in self.by_gseq.range(self.next_deliver + 1..) {
            if gseq == self.next_deliver + 1 {
                continue; // deliverable on the next event, not blocked
            }
            out.push(WaitEdge {
                from: WaitNode::Msg(msg.id),
                to: rotation,
                who: self.me,
                since: *arrived,
                reason: "total-order gap before this slot",
            });
        }
    }

    /// Snapshot of buffered data stuck behind a total-order gap, with
    /// the slot each waits on — the token-ring counterpart of
    /// [`crate::abcast::AbcastEndpoint::order_blocked`]. Here every
    /// stamped message knows its own slot; what is missing is the data
    /// for the next deliverable one, which a future token rotation (or
    /// NACK repair) fills.
    pub fn order_blocked(&self) -> Vec<crate::abcast::OrderBlocked> {
        let missing_slot = self.next_deliver + 1;
        let slot_msg = self.by_gseq.get(&missing_slot).map(|(m, _)| m.id);
        self.by_gseq
            .range(self.next_deliver + 2..)
            .map(|(&gseq, (m, arrived))| crate::abcast::OrderBlocked {
                msg: m.id,
                arrived_at: *arrived,
                gseq: Some(gseq),
                missing_slot,
                slot_msg,
            })
            .collect()
    }

    /// When the oldest queued submission (made without the token) has
    /// been waiting, if any — the explainer's "how long has this member
    /// wanted the token?".
    pub fn oldest_queued_since(&self) -> Option<SimTime> {
        self.pending_submit.front().map(|(_, t)| *t)
    }

    /// Submits `payload` for totally ordered multicast. If the token is
    /// held, the message goes out (and may deliver) immediately;
    /// otherwise it queues until the token arrives.
    pub fn submit(&mut self, now: SimTime, payload: P) -> (Vec<Delivery<P>>, Vec<Out<P>>) {
        self.pending_submit.push_back((payload, now));
        if self.holding {
            self.drain_submissions(now)
        } else {
            (Vec::new(), Vec::new())
        }
    }

    /// Passes the token to the next member in ring order. Call after
    /// draining submissions (typically from the tick handler). The pass
    /// is retransmitted from [`Self::on_tick`] until acknowledged.
    pub fn pass_token(&mut self) -> Option<Out<P>> {
        if !self.holding {
            return None;
        }
        self.holding = false;
        let next = (self.me + 1) % self.n;
        let hops = self.token_hops + 1;
        let w = Wire::Token {
            next_gseq: self.token_gseq,
            hops,
        };
        self.stats.control_bytes += w.overhead_bytes() as u64;
        self.unacked_pass = Some((next, self.token_gseq, hops, SimTime::ZERO));
        Some((Dest::One(next), w))
    }

    /// Handles an incoming wire message.
    pub fn on_wire(&mut self, now: SimTime, wire: Wire<P>) -> (Vec<Delivery<P>>, Vec<Out<P>>) {
        match wire {
            Wire::Token { next_gseq, hops } => {
                // Always acknowledge — the passer retransmits until then.
                let ack = (
                    Dest::One((self.me + self.n - 1) % self.n),
                    Wire::TokenAck { hops },
                );
                if hops <= self.last_token_hops {
                    // A duplicate of a token we already consumed.
                    self.stats.duplicates += 1;
                    return (Vec::new(), vec![ack]);
                }
                self.last_token_hops = hops;
                self.holding = true;
                self.token_gseq = next_gseq;
                self.token_hops = hops;
                self.probe.emit(|| ObsEvent::Phase {
                    at: now,
                    who: self.me,
                    kind: PhaseKind::TokenRotation,
                    edge: PhaseEdge::Point,
                    note: format!(
                        "token arrived (hop {hops}, gseq {next_gseq}, {} queued)",
                        self.pending_submit.len()
                    ),
                });
                let (dels, mut out) = self.drain_submissions(now);
                out.push(ack);
                (dels, out)
            }
            Wire::TokenAck { hops } => {
                if let Some((_, _, h, _)) = self.unacked_pass {
                    if hops == h {
                        self.unacked_pass = None;
                    }
                }
                (Vec::new(), Vec::new())
            }
            Wire::Data(msg) => {
                self.stats.data_received += 1;
                let wire_id = msg.id;
                let retransmit = msg.retransmit;
                self.probe.emit(|| ObsEvent::Span {
                    at: now,
                    who: self.me,
                    span: SpanId {
                        origin: wire_id.sender,
                        seq: wire_id.seq,
                    },
                    stage: Stage::Wire,
                    note: if retransmit {
                        "retransmit".to_string()
                    } else {
                        String::new()
                    },
                });
                // The vt slot carries the global sequence in component 0
                // (by construction in drain_submissions).
                let gseq = msg.vt.get(0);
                if gseq < self.next_deliver + 1 && self.by_gseq.contains_key(&gseq)
                    || gseq <= self.next_deliver
                {
                    self.stats.duplicates += 1;
                    return (Vec::new(), Vec::new());
                }
                self.by_gseq.entry(gseq).or_insert((msg, now));
                let dels = self.release(now);
                (dels, Vec::new())
            }
            Wire::Nack { from, want } => {
                let mut out = Vec::new();
                for id in want {
                    // `seq` in the NACK names the global sequence here.
                    if let Some(m) = self.sent.get(&id.seq) {
                        let mut copy = m.clone();
                        copy.retransmit = true;
                        self.stats.retransmits_served += 1;
                        out.push((Dest::One(from), Wire::Data(copy)));
                    }
                }
                (Vec::new(), out)
            }
            _ => (Vec::new(), Vec::new()),
        }
    }

    /// Periodic maintenance: NACK delivery gaps (to everyone — any member
    /// may have the missing message buffered).
    pub fn on_tick(&mut self, now: SimTime) -> Vec<Out<P>> {
        let mut out = Vec::new();
        // Retransmit an unacknowledged token pass.
        if let Some((next, gseq, hops, last_sent)) = self.unacked_pass {
            if now.saturating_since(last_sent) >= self.cfg.nack_timeout {
                let w = Wire::Token {
                    next_gseq: gseq,
                    hops,
                };
                self.stats.control_bytes += w.overhead_bytes() as u64;
                self.stats.retransmits_served += 1;
                self.unacked_pass = Some((next, gseq, hops, now));
                out.push((Dest::One(next), w));
            }
        }
        if let Some((&max_known, _)) = self.by_gseq.iter().next_back() {
            let overdue = match self.last_nack {
                None => true,
                Some(t) => now.saturating_since(t) >= self.cfg.nack_timeout,
            };
            let want: Vec<MsgId> = ((self.next_deliver + 1)..max_known)
                .filter(|g| !self.by_gseq.contains_key(g))
                .take(self.cfg.max_nack_batch)
                .map(|g| MsgId { sender: 0, seq: g })
                .collect();
            if overdue && !want.is_empty() {
                self.last_nack = Some(now);
                let w = Wire::Nack {
                    from: self.me,
                    want,
                };
                self.stats.nacks_sent += 1;
                self.stats.control_bytes += w.overhead_bytes() as u64;
                out.push((Dest::All, w));
            }
        }
        out
    }

    fn drain_submissions(&mut self, now: SimTime) -> (Vec<Delivery<P>>, Vec<Out<P>>) {
        let mut out = Vec::new();
        while let Some((payload, submitted)) = self.pending_submit.pop_front() {
            self.token_gseq += 1;
            self.next_seq += 1;
            let gseq = self.token_gseq;
            let mut vt = VectorClock::new(self.n.max(1));
            vt.set(0, gseq);
            let msg = DataMsg::new(
                MsgId {
                    sender: self.me,
                    seq: self.next_seq,
                },
                vt,
                payload,
            );
            self.sent.insert(gseq, msg.clone());
            // Own messages are timed from submission, so the release hold
            // time includes the wait for the token rotation.
            self.by_gseq.insert(gseq, (msg.clone(), submitted));
            let span = SpanId {
                origin: msg.id.sender,
                seq: msg.id.seq,
            };
            self.probe.emit(|| ObsEvent::Span {
                at: submitted,
                who: self.me,
                span,
                stage: Stage::Send,
                note: format!("gseq {gseq}"),
            });
            if submitted < now {
                // The submission sat in the local queue until the token
                // arrived: charge that window to the token hold phase.
                self.probe.emit(|| ObsEvent::Wait {
                    at: now,
                    who: self.me,
                    span,
                    kind: WaitKind::TokenHold,
                    since: submitted,
                    blocker: None,
                    note: "queued awaiting the token".to_string(),
                });
            }
            self.stats.sent += 1;
            let w = Wire::Data(msg);
            self.stats.data_overhead_bytes += w.overhead_bytes() as u64;
            out.push((Dest::All, w));
        }
        let dels = self.release(now);
        (dels, out)
    }

    fn release(&mut self, now: SimTime) -> Vec<Delivery<P>> {
        let mut dels = Vec::new();
        while let Some((msg, arrived)) = self.by_gseq.remove(&(self.next_deliver + 1)) {
            self.next_deliver += 1;
            let held = arrived < now;
            self.stats.delivered += 1;
            if held {
                self.stats.delivered_after_hold += 1;
                self.stats.hold_time_total += now.saturating_since(arrived);
            }
            let span = SpanId {
                origin: msg.id.sender,
                seq: msg.id.seq,
            };
            let gseq = self.next_deliver;
            self.probe.emit(|| ObsEvent::Span {
                at: now,
                who: self.me,
                span,
                stage: Stage::Delivered,
                note: format!("gseq {gseq}"),
            });
            if held {
                self.probe.emit(|| ObsEvent::Wait {
                    at: now,
                    who: self.me,
                    span,
                    kind: WaitKind::TokenRotation,
                    since: arrived,
                    blocker: None,
                    note: String::new(),
                });
            }
            dels.push(Delivery {
                id: msg.id,
                payload: msg.payload,
                arrived_at: arrived,
                delivered_at: now,
                gseq: Some(self.next_deliver),
                waited_for: Vec::new(),
            });
        }
        self.stats.note_holdback(self.by_gseq.len() as u64);
        dels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn holder_sends_and_delivers_immediately() {
        let mut a = TokenAbcastEndpoint::new(0, 3, GroupConfig::default());
        assert!(a.holding_token());
        let (dels, out) = a.submit(t(0), "x");
        assert_eq!(dels.len(), 1);
        assert_eq!(dels[0].gseq, Some(1));
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn non_holder_queues_until_token() {
        let mut b = TokenAbcastEndpoint::new(1, 3, GroupConfig::default());
        let (dels, out) = b.submit(t(0), "y");
        assert!(dels.is_empty() && out.is_empty());
        assert_eq!(b.queued_len(), 1);
        let (dels, out) = b.on_wire(
            t(5),
            Wire::Token {
                next_gseq: 0,
                hops: 1,
            },
        );
        assert_eq!(dels.len(), 1);
        assert!(!out.is_empty());
        assert_eq!(b.queued_len(), 0);
    }

    #[test]
    fn global_order_consistent_across_members() {
        let cfg = GroupConfig::default();
        let mut a = TokenAbcastEndpoint::new(0, 2, cfg.clone());
        let mut b = TokenAbcastEndpoint::new(1, 2, cfg);
        let (_, oa) = a.submit(t(0), "a1");
        let tok = a.pass_token().unwrap();
        let (_, ob_pre) = b.submit(t(1), "b1");
        assert!(ob_pre.is_empty());
        let (_, ob) = b.on_wire(t(2), tok.1);
        // Deliver cross traffic.
        fn deliver<'p>(
            ep: &mut TokenAbcastEndpoint<&'p str>,
            outs: &[Out<&'p str>],
            at: SimTime,
        ) -> Vec<Delivery<&'p str>> {
            let mut got = Vec::new();
            for (_, w) in outs {
                if matches!(w, Wire::Data(_)) {
                    let (d, _) = ep.on_wire(at, w.clone());
                    got.extend(d);
                }
            }
            got
        }
        let db = deliver(&mut b, &oa, t(3));
        let da = deliver(&mut a, &ob, t(3));
        assert_eq!(db[0].gseq, Some(1));
        assert_eq!(da[0].gseq, Some(2));
        assert_eq!(db[0].payload, "a1");
        assert_eq!(da[0].payload, "b1");
    }

    #[test]
    fn gap_nack_and_retransmit() {
        let cfg = GroupConfig::default();
        let mut a = TokenAbcastEndpoint::new(0, 2, cfg.clone());
        let mut b = TokenAbcastEndpoint::new(1, 2, cfg.clone());
        let (_, o1) = a.submit(t(0), "m1");
        let (_, o2) = a.submit(t(1), "m2");
        // b misses m1.
        let (dels, _) = b.on_wire(t(2), o2[0].1.clone());
        assert!(dels.is_empty());
        let nacks = b.on_tick(t(2) + cfg.nack_timeout);
        let nack = nacks
            .into_iter()
            .find(|(_, w)| matches!(w, Wire::Nack { .. }))
            .expect("gap nack");
        let (_, served) = a.on_wire(t(3), nack.1);
        assert_eq!(served.len(), 1);
        let (dels, _) = b.on_wire(t(4), served[0].1.clone());
        assert_eq!(
            dels.iter().map(|d| d.payload).collect::<Vec<_>>(),
            vec!["m1", "m2"]
        );
        let _ = o1;
    }

    #[test]
    fn lost_token_is_retransmitted() {
        let cfg = GroupConfig::default();
        let mut a = TokenAbcastEndpoint::<u32>::new(0, 2, cfg.clone());
        let pass = a.pass_token().expect("pass");
        // The pass is lost; a tick after the timeout retransmits it.
        let out = a.on_tick(SimTime::ZERO + cfg.nack_timeout);
        assert!(
            out.iter().any(|(_, w)| matches!(w, Wire::Token { .. })),
            "token retransmitted"
        );
        // The receiver finally gets it and acks; the ack clears the
        // retransmission state.
        let mut b = TokenAbcastEndpoint::<u32>::new(1, 2, cfg.clone());
        let (_, outs) = b.on_wire(SimTime::from_millis(50), pass.1);
        let ack = outs
            .into_iter()
            .find(|(_, w)| matches!(w, Wire::TokenAck { .. }))
            .expect("ack sent");
        a.on_wire(SimTime::from_millis(51), ack.1);
        let out = a.on_tick(SimTime::from_millis(51) + cfg.nack_timeout);
        assert!(
            !out.iter().any(|(_, w)| matches!(w, Wire::Token { .. })),
            "no retransmission after ack"
        );
    }

    #[test]
    fn duplicate_token_is_ignored_but_acked() {
        let cfg = GroupConfig::default();
        let mut b = TokenAbcastEndpoint::<u32>::new(1, 2, cfg);
        let tok = Wire::Token {
            next_gseq: 0,
            hops: 1,
        };
        let (_, o1) = b.on_wire(SimTime::from_millis(1), tok.clone());
        assert!(o1.iter().any(|(_, w)| matches!(w, Wire::TokenAck { .. })));
        assert!(b.holding_token());
        // Retransmitted duplicate: acked again, not re-consumed.
        let _ = b.pass_token();
        let (_, o2) = b.on_wire(SimTime::from_millis(2), tok);
        assert!(o2.iter().any(|(_, w)| matches!(w, Wire::TokenAck { .. })));
        assert!(!b.holding_token(), "duplicate must not re-grant the token");
    }

    #[test]
    fn token_hops_count() {
        let mut a = TokenAbcastEndpoint::<u32>::new(0, 2, GroupConfig::default());
        let tok = a.pass_token().unwrap();
        match tok.1 {
            Wire::Token { hops, .. } => assert_eq!(hops, 1),
            _ => panic!("expected token"),
        }
        assert!(a.pass_token().is_none(), "cannot pass twice");
    }
}
